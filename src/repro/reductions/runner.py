"""Run and compare the Listing 1 reductions on a simulated GPU."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cuda.interpreter import Cuda, LaunchResult
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig
from repro.reductions.kernels import INT_MIN, REDUCTION_NAMES, make_reduction


@dataclass(frozen=True)
class ReductionOutcome:
    """Result of running one reduction implementation.

    Attributes:
        name: Which reduction ran.
        value: The computed maximum.
        correct: Whether it matches numpy's ``max`` of the input.
        elapsed_cycles: Modeled kernel runtime.
        launch: Grid/block configuration used.
        stats: Operation counts from the interpreter.
    """

    name: str
    value: int
    correct: bool
    elapsed_cycles: float
    launch: LaunchConfig
    stats: object

    @property
    def elapsed_ns(self) -> float:
        return self.elapsed_cycles  # populated via from_launch with device

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name}: max={self.value} "
                f"({'ok' if self.correct else 'WRONG'}), "
                f"{self.elapsed_cycles:.0f} cycles")


def _launch_for(name: str, device: GpuDevice, size: int,
                block_threads: int) -> LaunchConfig:
    """Grid sizing: one thread per element for Reductions 1-4; a persistent
    grid (two blocks per SM, capped by the data) for Reduction 5."""
    if name == "reduction5":
        persistent = 2 * device.spec.sm_count
        needed = -(-size // block_threads)
        return LaunchConfig(max(1, min(persistent, needed)), block_threads)
    return LaunchConfig(-(-size // block_threads), block_threads)


def run_reduction(name: str, device: GpuDevice, data: np.ndarray,
                  block_threads: int = 256) -> ReductionOutcome:
    """Execute one reduction over ``data`` and model its runtime.

    Args:
        name: "reduction1" .. "reduction5".
        device: Simulated GPU.
        data: 1-D int32 array to reduce.
        block_threads: Threads per block.

    Raises:
        ConfigurationError: empty data or a non-integer array.
    """
    if data.size == 0:
        raise ConfigurationError("cannot reduce an empty array")
    if data.dtype != np.int32:
        raise ConfigurationError(
            f"Listing 1 reduces int data; got {data.dtype}")
    size = int(data.size)
    launch = _launch_for(name, device, size, block_threads)
    kernel = make_reduction(name, size)
    result = np.full(1, INT_MIN, dtype=np.int32)
    cuda = Cuda(device)
    out: LaunchResult = cuda.launch(
        kernel, launch,
        globals_={"data": data, "result": result},
        shared_decls={"block_result": (1, np.dtype(np.int32))},
    )
    value = int(result[0])
    return ReductionOutcome(
        name=name,
        value=value,
        correct=value == int(data.max()),
        elapsed_cycles=out.elapsed_cycles,
        launch=launch,
        stats=out.stats,
    )


def compare_reductions(device: GpuDevice, data: np.ndarray,
                       block_threads: int = 256,
                       names: tuple[str, ...] = REDUCTION_NAMES
                       ) -> dict[str, ReductionOutcome]:
    """Run every requested reduction on the same input.

    Returns:
        name -> outcome, in the order requested.
    """
    return {name: run_reduction(name, device, data, block_threads)
            for name in names}
