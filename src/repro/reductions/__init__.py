"""The five max-reduction implementations of Listing 1.

Section II-C's motivating example: five correct CUDA reductions whose
performance ordering is non-intuitive.  Of Reductions 1-4, Reduction 3
(block-scoped atomics) is fastest, then Reduction 4 (hardware warp
reduction), then Reduction 1 (naive global atomics, saved by warp
aggregation), and Reduction 2 (shuffle tree) is slowest; the
persistent-threads Reduction 5 beats them all, by about 2.5x over
Reduction 2 on the paper's input and GPU.
"""

from repro.reductions.kernels import (
    INT_MIN,
    REDUCTION_NAMES,
    make_reduction,
)
from repro.reductions.runner import (
    ReductionOutcome,
    run_reduction,
    compare_reductions,
)

__all__ = [
    "INT_MIN",
    "REDUCTION_NAMES",
    "make_reduction",
    "ReductionOutcome",
    "run_reduction",
    "compare_reductions",
]
