"""Kernel bodies for the five reductions of Listing 1.

Each ``make_reduction_N(size)`` returns a kernel (generator function over a
:class:`repro.cuda.KernelThread`) that reduces ``data[0:size]`` into
``result[0]`` with ``max``, exactly mirroring the CUDA source in the paper:
same primitives, same scopes, same guard conditions.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.common.errors import ConfigurationError
from repro.cuda.interpreter import KernelThread

#: C's INT_MIN, the reductions' identity element.
INT_MIN = -(2 ** 31)

REDUCTION_NAMES = ("reduction1", "reduction2", "reduction3", "reduction4",
                   "reduction5")


def make_reduction1(size: int) -> Callable[[KernelThread], Generator]:
    """Reduction 1 (CC >= 1.3): one global ``atomicMax()`` per thread."""

    def kernel(t: KernelThread):
        i = t.global_id
        if i < size:
            value = yield t.global_read("data", i)
            yield t.atomic_max("result", 0, value)

    return kernel


def make_reduction2(size: int) -> Callable[[KernelThread], Generator]:
    """Reduction 2 (CC >= 3.0): shuffle-tree warp reduction, then one
    global atomic per warp."""

    def kernel(t: KernelThread):
        i = t.global_id
        active = yield t.any_sync(i < size)
        if active:
            if i < size:
                value = yield t.global_read("data", i)
            else:
                value = INT_MIN
            j = 16  # warpSize / 2
            while j > 0:
                other = yield t.shfl_xor_sync(value, j)
                value = max(value, other)
                j //= 2
            if t.lane == 0:
                yield t.atomic_max("result", 0, value)

    return kernel


def make_reduction3(size: int) -> Callable[[KernelThread], Generator]:
    """Reduction 3 (CC >= 6.0): block-scoped atomics into ``__shared__``
    memory, then one global atomic per block."""

    def kernel(t: KernelThread):
        if t.threadIdx == 0:
            yield t.shared_write("block_result", 0, INT_MIN)
        yield t.syncthreads()
        i = t.global_id
        if i < size:
            value = yield t.global_read("data", i)
            yield t.atomic_max("block_result", 0, value)
        yield t.syncthreads()
        if t.threadIdx == 0:
            block_result = yield t.shared_read("block_result", 0)
            yield t.atomic_max("result", 0, block_result)

    return kernel


def make_reduction4(size: int) -> Callable[[KernelThread], Generator]:
    """Reduction 4 (CC >= 8.0): hardware ``__reduce_max_sync()`` per warp,
    block atomic per warp leader, global atomic per block."""

    def kernel(t: KernelThread):
        if t.threadIdx == 0:
            yield t.shared_write("block_result", 0, INT_MIN)
        yield t.syncthreads()
        i = t.global_id
        active = yield t.any_sync(i < size)
        if active:
            if i < size:
                value = yield t.global_read("data", i)
            else:
                value = INT_MIN
            value = yield t.reduce_max_sync(value)
            if t.lane == 0:
                yield t.atomic_max("block_result", 0, value)
        yield t.syncthreads()
        if t.threadIdx == 0:
            block_result = yield t.shared_read("block_result", 0)
            yield t.atomic_max("result", 0, block_result)

    return kernel


def make_reduction5(size: int) -> Callable[[KernelThread], Generator]:
    """Reduction 5: persistent threads — each thread strides over many
    elements, then the Reduction-3 combine."""

    def kernel(t: KernelThread):
        thread_result = INT_MIN
        if t.threadIdx == 0:
            yield t.shared_write("block_result", 0, INT_MIN)
        yield t.syncthreads()
        j = t.global_id
        while j < size:
            value = yield t.global_read("data", j)
            if value > thread_result:
                thread_result = value
            yield t.alu(2)  # compare + stride increment
            j += t.total_threads
        yield t.atomic_max("block_result", 0, thread_result)
        yield t.syncthreads()
        if t.threadIdx == 0:
            block_result = yield t.shared_read("block_result", 0)
            yield t.atomic_max("result", 0, block_result)

    return kernel


_FACTORIES = {
    "reduction1": make_reduction1,
    "reduction2": make_reduction2,
    "reduction3": make_reduction3,
    "reduction4": make_reduction4,
    "reduction5": make_reduction5,
}


def make_reduction(name: str, size: int
                   ) -> Callable[[KernelThread], Generator]:
    """Kernel factory by name ("reduction1" .. "reduction5").

    Raises:
        ConfigurationError: for unknown names.
    """
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown reduction {name!r}; expected one of "
            f"{list(_FACTORIES)}")
    return _FACTORIES[name](size)
