"""Level-synchronized BFS: the irregular-workload pattern.

Breadth-first search is the archetype of the irregular GPU codes the
paper's related work characterizes (O'Neil & Burtscher): per-level
parallelism with atomics building the next frontier and a new kernel
launch per level as the grid-wide barrier.  Each level's kernel scans the
current frontier, claims unvisited neighbours with ``atomicCAS`` (so two
threads discovering the same vertex cannot both append it), and grows the
next frontier with ``atomicAdd`` on its size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.compiler.ops import Scope
from repro.cuda.interpreter import Cuda
from repro.cuda.multigpu import MultiCuda
from repro.gpu.device import GpuDevice
from repro.gpu.multi import MultiGpu
from repro.gpu.spec import LaunchConfig


@dataclass(frozen=True)
class BfsOutcome:
    """Result of one BFS run.

    Attributes:
        distances: Per-vertex BFS level (-1 for unreachable).
        correct: Matches a sequential BFS.
        elapsed: Total modeled cycles across all level kernels.
        levels: Number of kernel launches (frontier levels).
    """

    distances: np.ndarray
    correct: bool
    elapsed: float
    levels: int


def _reference_bfs(n: int, row_ptr: np.ndarray, cols: np.ndarray,
                   source: int) -> np.ndarray:
    dist = np.full(n, -1, np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for e in range(row_ptr[u], row_ptr[u + 1]):
                v = cols[e]
                if dist[v] == -1:
                    dist[v] = level
                    nxt.append(int(v))
        frontier = nxt
    return dist


def gpu_bfs(device: GpuDevice, row_ptr: np.ndarray, cols: np.ndarray,
            source: int = 0, block_threads: int = 32,
            max_levels: int = 64) -> BfsOutcome:
    """BFS over a CSR graph, one kernel launch per level.

    Args:
        row_ptr: CSR row pointers (length n+1).
        cols: CSR column indices.
        source: Start vertex.
        block_threads: Threads per block per level kernel.
        max_levels: Safety bound on level count.

    Raises:
        ConfigurationError: for malformed CSR input.
    """
    n = int(row_ptr.size) - 1
    if n < 1:
        raise ConfigurationError("graph needs at least one vertex")
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} outside 0..{n - 1}")
    if row_ptr[-1] != cols.size:
        raise ConfigurationError("row_ptr[-1] must equal len(cols)")

    mem = {
        "row_ptr": row_ptr.astype(np.int64),
        "cols": cols.astype(np.int64),
        "dist": np.full(n, -1, np.int64),
        "frontier": np.zeros(n, np.int64),
        "next_frontier": np.zeros(n, np.int64),
        "sizes": np.zeros(2, np.int64),  # [current size, next size]
    }
    mem["dist"][source] = 0
    mem["frontier"][0] = source
    mem["sizes"][0] = 1

    cuda = Cuda(device)
    elapsed = 0.0
    levels = 0

    def level_kernel(level: int, frontier_size: int):
        def kernel(t):
            i = t.global_id
            if i >= frontier_size:
                return
            u = yield t.global_read("frontier", i)
            start = yield t.global_read("row_ptr", u)
            stop = yield t.global_read("row_ptr", u + 1)
            for e in range(start, stop):
                v = yield t.global_read("cols", e)
                # Claim the vertex: only the CAS winner appends it.
                old = yield t.atomic_cas("dist", v, -1, level)
                if old == -1:
                    slot = yield t.atomic_add("sizes", 1, 1)
                    yield t.global_write("next_frontier", slot, v)

        return kernel

    while mem["sizes"][0] > 0:
        levels += 1
        if levels > max_levels:
            raise ConfigurationError(
                f"BFS exceeded {max_levels} levels; cyclic row_ptr?")
        frontier_size = int(mem["sizes"][0])
        grid = max(1, -(-frontier_size // block_threads))
        result = cuda.launch(level_kernel(levels, frontier_size),
                             LaunchConfig(grid, block_threads),
                             globals_=mem)
        elapsed += result.elapsed_cycles
        # Host-side swap (the grid-wide barrier between levels).
        mem["frontier"], mem["next_frontier"] = \
            mem["next_frontier"], mem["frontier"]
        mem["sizes"][0] = mem["sizes"][1]
        mem["sizes"][1] = 0

    expected = _reference_bfs(n, mem["row_ptr"], mem["cols"], source)
    return BfsOutcome(
        distances=mem["dist"],
        correct=bool((mem["dist"] == expected).all()),
        elapsed=elapsed,
        levels=levels,
    )


def multi_gpu_bfs(multi: MultiGpu, row_ptr: np.ndarray,
                  cols: np.ndarray, source: int = 0, n_devices: int = 2,
                  grid_blocks: int = 2, block_threads: int = 32,
                  max_levels: int = 64) -> BfsOutcome:
    """Level-synchronized BFS as ONE cooperative multi-device launch.

    Where :func:`gpu_bfs` relaunches a kernel per level (the host as the
    grid-wide barrier), the multi-GPU version keeps every device
    resident and separates levels with ``multi_grid.sync()``.  The graph
    and all BFS state live in system (host/peer-visible) memory —
    the zero-copy design of multi-GPU BFS codes; vertex claims and
    frontier-slot reservations use *system-scope* atomics so no two
    devices can both claim a vertex, and the buffered frontier writes
    are published by the inter-level barrier before any peer reads them.

    Frontiers ping-pong by level parity and per-level sizes land in
    their own ``sizes`` slot, so no thread ever resets shared state.

    Raises:
        ConfigurationError: for malformed CSR input or level overflow.
    """
    n = int(row_ptr.size) - 1
    if n < 1:
        raise ConfigurationError("graph needs at least one vertex")
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} outside 0..{n - 1}")
    if row_ptr[-1] != cols.size:
        raise ConfigurationError("row_ptr[-1] must equal len(cols)")

    system = {
        "row_ptr": row_ptr.astype(np.int64),
        "cols": cols.astype(np.int64),
        "dist": np.full(n, -1, np.int64),
        "frontier0": np.zeros(n, np.int64),
        "frontier1": np.zeros(n, np.int64),
        "sizes": np.zeros(max_levels + 1, np.int64),
    }
    system["dist"][source] = 0
    system["frontier0"][0] = source
    system["sizes"][0] = 1

    def kernel(t):
        for level in range(1, max_levels + 1):
            size = yield t.system_read("sizes", level - 1)
            if size == 0:
                return
            src = "frontier0" if (level - 1) % 2 == 0 else "frontier1"
            dst = "frontier1" if (level - 1) % 2 == 0 else "frontier0"
            i = t.system_id
            while i < size:
                u = yield t.system_read(src, i)
                start = yield t.system_read("row_ptr", u)
                stop = yield t.system_read("row_ptr", u + 1)
                for e in range(start, stop):
                    v = yield t.system_read("cols", e)
                    # System-scope claim: immediately peer-visible, so
                    # no two devices can both append the vertex.
                    old = yield t.atomic_cas("dist", v, -1, level,
                                             scope=Scope.SYSTEM)
                    if old == -1:
                        slot = yield t.atomic_add("sizes", level, 1,
                                                  scope=Scope.SYSTEM)
                        yield t.system_write(dst, slot, v)
                i += t.system_threads
            # Publishes the buffered frontier writes before any peer
            # reads them at the next level.
            yield t.multi_grid_sync()

    runtime = MultiCuda(multi, n_devices=n_devices)
    result = runtime.launch(kernel,
                            LaunchConfig(grid_blocks, block_threads),
                            system=system)
    if system["sizes"][max_levels] != 0:
        raise ConfigurationError(
            f"BFS exceeded {max_levels} levels; cyclic row_ptr?")

    expected = _reference_bfs(n, system["row_ptr"], system["cols"],
                              source)
    return BfsOutcome(
        distances=system["dist"],
        correct=bool((system["dist"] == expected).all()),
        elapsed=result.elapsed_cycles,
        levels=int(np.count_nonzero(system["sizes"])),
    )


def random_graph(n: int, avg_degree: int = 4,
                 seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A random connected-ish CSR graph for tests and examples."""
    rng = np.random.default_rng(seed)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    # A ring keeps everything reachable; random chords add irregularity.
    for u in range(n):
        adjacency[u].append((u + 1) % n)
    for _ in range(n * max(avg_degree - 1, 0)):
        u, v = rng.integers(0, n, 2)
        if u != v:
            adjacency[int(u)].append(int(v))
    row_ptr = np.zeros(n + 1, np.int64)
    cols = []
    for u in range(n):
        row_ptr[u + 1] = row_ptr[u] + len(adjacency[u])
        cols.extend(adjacency[u])
    return row_ptr, np.asarray(cols, np.int64)
