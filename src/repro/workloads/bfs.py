"""Level-synchronized BFS: the irregular-workload pattern.

Breadth-first search is the archetype of the irregular GPU codes the
paper's related work characterizes (O'Neil & Burtscher): per-level
parallelism with atomics building the next frontier and a new kernel
launch per level as the grid-wide barrier.  Each level's kernel scans the
current frontier, claims unvisited neighbours with ``atomicCAS`` (so two
threads discovering the same vertex cannot both append it), and grows the
next frontier with ``atomicAdd`` on its size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig


@dataclass(frozen=True)
class BfsOutcome:
    """Result of one BFS run.

    Attributes:
        distances: Per-vertex BFS level (-1 for unreachable).
        correct: Matches a sequential BFS.
        elapsed: Total modeled cycles across all level kernels.
        levels: Number of kernel launches (frontier levels).
    """

    distances: np.ndarray
    correct: bool
    elapsed: float
    levels: int


def _reference_bfs(n: int, row_ptr: np.ndarray, cols: np.ndarray,
                   source: int) -> np.ndarray:
    dist = np.full(n, -1, np.int64)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for e in range(row_ptr[u], row_ptr[u + 1]):
                v = cols[e]
                if dist[v] == -1:
                    dist[v] = level
                    nxt.append(int(v))
        frontier = nxt
    return dist


def gpu_bfs(device: GpuDevice, row_ptr: np.ndarray, cols: np.ndarray,
            source: int = 0, block_threads: int = 32,
            max_levels: int = 64) -> BfsOutcome:
    """BFS over a CSR graph, one kernel launch per level.

    Args:
        row_ptr: CSR row pointers (length n+1).
        cols: CSR column indices.
        source: Start vertex.
        block_threads: Threads per block per level kernel.
        max_levels: Safety bound on level count.

    Raises:
        ConfigurationError: for malformed CSR input.
    """
    n = int(row_ptr.size) - 1
    if n < 1:
        raise ConfigurationError("graph needs at least one vertex")
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} outside 0..{n - 1}")
    if row_ptr[-1] != cols.size:
        raise ConfigurationError("row_ptr[-1] must equal len(cols)")

    mem = {
        "row_ptr": row_ptr.astype(np.int64),
        "cols": cols.astype(np.int64),
        "dist": np.full(n, -1, np.int64),
        "frontier": np.zeros(n, np.int64),
        "next_frontier": np.zeros(n, np.int64),
        "sizes": np.zeros(2, np.int64),  # [current size, next size]
    }
    mem["dist"][source] = 0
    mem["frontier"][0] = source
    mem["sizes"][0] = 1

    cuda = Cuda(device)
    elapsed = 0.0
    levels = 0

    def level_kernel(level: int, frontier_size: int):
        def kernel(t):
            i = t.global_id
            if i >= frontier_size:
                return
            u = yield t.global_read("frontier", i)
            start = yield t.global_read("row_ptr", u)
            stop = yield t.global_read("row_ptr", u + 1)
            for e in range(start, stop):
                v = yield t.global_read("cols", e)
                # Claim the vertex: only the CAS winner appends it.
                old = yield t.atomic_cas("dist", v, -1, level)
                if old == -1:
                    slot = yield t.atomic_add("sizes", 1, 1)
                    yield t.global_write("next_frontier", slot, v)

        return kernel

    while mem["sizes"][0] > 0:
        levels += 1
        if levels > max_levels:
            raise ConfigurationError(
                f"BFS exceeded {max_levels} levels; cyclic row_ptr?")
        frontier_size = int(mem["sizes"][0])
        grid = max(1, -(-frontier_size // block_threads))
        result = cuda.launch(level_kernel(levels, frontier_size),
                             LaunchConfig(grid, block_threads),
                             globals_=mem)
        elapsed += result.elapsed_cycles
        # Host-side swap (the grid-wide barrier between levels).
        mem["frontier"], mem["next_frontier"] = \
            mem["next_frontier"], mem["frontier"]
        mem["sizes"][0] = mem["sizes"][1]
        mem["sizes"][1] = 0

    expected = _reference_bfs(n, mem["row_ptr"], mem["cols"], source)
    return BfsOutcome(
        distances=mem["dist"],
        correct=bool((mem["dist"] == expected).all()),
        elapsed=elapsed,
        levels=levels,
    )


def random_graph(n: int, avg_degree: int = 4,
                 seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A random connected-ish CSR graph for tests and examples."""
    rng = np.random.default_rng(seed)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    # A ring keeps everything reachable; random chords add irregularity.
    for u in range(n):
        adjacency[u].append((u + 1) % n)
    for _ in range(n * max(avg_degree - 1, 0)):
        u, v = rng.integers(0, n, 2)
        if u != v:
            adjacency[int(u)].append(int(v))
    row_ptr = np.zeros(n + 1, np.int64)
    cols = []
    for u in range(n):
        row_ptr[u + 1] = row_ptr[u] + len(adjacency[u])
        cols.extend(adjacency[u])
    return row_ptr, np.asarray(cols, np.int64)
