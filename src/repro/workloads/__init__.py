"""Workload gallery: realistic parallel programs over the API layers.

The paper's introduction motivates its study with the parallel codes
developers actually write — codes whose correctness needs data-race
prevention and whose performance hinges on choosing the right primitive.
Each module here is such a program, implemented against the OpenMP or
CUDA layer, with multiple synchronization strategies where the choice
matters:

* :mod:`repro.workloads.histogram` — binning with atomic vs privatized
  counters (CPU) and global vs shared-memory atomics (GPU).
* :mod:`repro.workloads.prefix_sum` — a barrier-phased Hillis-Steele
  scan on a GPU block, and a two-level CPU scan.
* :mod:`repro.workloads.stencil` — Jacobi iterations with double
  buffering; the barrier is what makes the buffer swap safe.
* :mod:`repro.workloads.pipeline` — a bounded producer/consumer queue
  built from locks.
* :mod:`repro.workloads.bfs` — level-synchronized BFS with one kernel
  launch per frontier, atomics building the next frontier.
* :mod:`repro.workloads.sort` — block-level bitonic sort, the
  barrier-heavy kernel behind recommendation V-B5 (1).
* :mod:`repro.workloads.custom_barrier` — a sense-reversing barrier
  built from atomics, testing Fig. 2's inference constructively.

Every workload validates its result against a sequential reference.
"""

from repro.workloads.histogram import (
    cpu_histogram,
    gpu_histogram,
)
from repro.workloads.prefix_sum import (
    cpu_prefix_sum,
    gpu_block_prefix_sum,
)
from repro.workloads.stencil import cpu_jacobi
from repro.workloads.pipeline import cpu_pipeline
from repro.workloads.bfs import gpu_bfs
from repro.workloads.sort import gpu_bitonic_sort
from repro.workloads.custom_barrier import compare_barriers

__all__ = [
    "cpu_histogram",
    "gpu_histogram",
    "cpu_prefix_sum",
    "gpu_block_prefix_sum",
    "cpu_jacobi",
    "cpu_pipeline",
    "gpu_bfs",
    "gpu_bitonic_sort",
    "compare_barriers",
]
