"""Histograms: the canonical contended-atomics workload.

CPU strategies:

* ``atomic`` — every thread atomically bumps the shared bins; correct
  but contended when bins are few (the V-A5 (2) anti-pattern).
* ``privatized`` — per-thread bins padded to separate cache lines,
  merged after a barrier (the V-A5 (3) layout).

GPU strategies:

* ``global`` — ``atomicAdd`` straight into device memory.
* ``shared`` — per-block shared-memory bins (block-scoped atomics),
  flushed to global bins once per block; the standard CUDA optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cpu.machine import CpuMachine
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig
from repro.openmp.interpreter import OpenMP

#: Padding so each thread's private bin row gets its own 64 B line.
_LINE_INTS = 16


@dataclass(frozen=True)
class HistogramOutcome:
    """Result of one histogram run.

    Attributes:
        bins: The computed histogram.
        correct: Matches ``numpy.bincount``.
        elapsed: Modeled runtime (ns on CPU, cycles on GPU).
        strategy: Which strategy ran.
    """

    bins: np.ndarray
    correct: bool
    elapsed: float
    strategy: str


def _reference(data: np.ndarray, n_bins: int) -> np.ndarray:
    return np.bincount(data, minlength=n_bins).astype(np.int64)


def cpu_histogram(machine: CpuMachine, data: np.ndarray, n_bins: int,
                  n_threads: int = 8,
                  strategy: str = "privatized",
                  detect_races: bool = True) -> HistogramOutcome:
    """Histogram ``data`` (ints in [0, n_bins)) on the OpenMP layer.

    Args:
        detect_races: Run the race detector (the default).  Turning it
            off lets the interpreter use its batched fast scheduler —
            the benchmark suite does this to time the workload.
    """
    if strategy not in ("atomic", "privatized"):
        raise ConfigurationError(f"unknown CPU strategy {strategy!r}")
    if data.size and (data.min() < 0 or data.max() >= n_bins):
        raise ConfigurationError("data out of bin range")
    omp = OpenMP(machine, n_threads=n_threads, detect_races=detect_races)
    shared = {"bins": np.zeros(n_bins, np.int64)}
    if strategy == "privatized":
        row = max(n_bins, _LINE_INTS)
        shared["private"] = np.zeros(n_threads * row, np.int64)

    per_thread = -(-data.size // n_threads)

    def chunk(tid: int) -> np.ndarray:
        return data[tid * per_thread:(tid + 1) * per_thread]

    def atomic_body(tc):
        for value in chunk(tc.tid):
            yield tc.atomic_update("bins", int(value), lambda v: v + 1)

    def privatized_body(tc):
        row = max(n_bins, _LINE_INTS)
        base = tc.tid * row
        for value in chunk(tc.tid):
            idx = base + int(value)
            count = yield tc.read("private", idx)
            yield tc.write("private", idx, count + 1)
        yield tc.barrier()
        # Bins are merged bin-major: thread b owns bin b, b+T, ...
        for bin_ in range(tc.tid, n_bins, tc.n_threads):
            total = 0
            for t in range(tc.n_threads):
                total += yield tc.read("private", t * row + bin_)
            yield tc.atomic_write("bins", bin_, total)

    body = atomic_body if strategy == "atomic" else privatized_body
    result = omp.parallel(body, shared=shared)
    bins = result.memory["bins"]
    return HistogramOutcome(
        bins=bins,
        correct=bool((bins == _reference(data, n_bins)).all()),
        elapsed=result.elapsed_ns,
        strategy=strategy,
    )


def gpu_histogram(device: GpuDevice, data: np.ndarray, n_bins: int,
                  block_threads: int = 64,
                  strategy: str = "shared") -> HistogramOutcome:
    """Histogram ``data`` on the CUDA layer (one element per thread)."""
    if strategy not in ("global", "shared"):
        raise ConfigurationError(f"unknown GPU strategy {strategy!r}")
    size = int(data.size)
    grid = max(1, -(-size // block_threads))

    def global_kernel(t):
        i = t.global_id
        if i < size:
            value = yield t.global_read("data", i)
            yield t.atomic_add("bins", int(value), 1)

    def shared_kernel(t):
        # Zero the block's shared bins cooperatively.
        for bin_ in range(t.threadIdx, n_bins, t.blockDim):
            yield t.shared_write("block_bins", bin_, 0)
        yield t.syncthreads()
        i = t.global_id
        if i < size:
            value = yield t.global_read("data", i)
            yield t.atomic_add("block_bins", int(value), 1)
        yield t.syncthreads()
        for bin_ in range(t.threadIdx, n_bins, t.blockDim):
            count = yield t.shared_read("block_bins", bin_)
            if count:
                yield t.atomic_add("bins", bin_, int(count))

    bins = np.zeros(n_bins, np.int64)
    cuda = Cuda(device)
    kernel = global_kernel if strategy == "global" else shared_kernel
    out = cuda.launch(kernel, LaunchConfig(grid, block_threads),
                      globals_={"data": data.astype(np.int32),
                                "bins": bins},
                      shared_decls={"block_bins":
                                    (n_bins, np.dtype(np.int64))})
    return HistogramOutcome(
        bins=bins,
        correct=bool((bins == _reference(data, n_bins)).all()),
        elapsed=out.elapsed_cycles,
        strategy=strategy,
    )
