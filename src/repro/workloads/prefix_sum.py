"""Prefix sums: barrier-phased data-parallel algorithms.

The GPU version is a block-level Hillis-Steele inclusive scan over
shared memory: log2(n) phases, each separated by ``__syncthreads()`` —
drop one barrier and the result is garbage, which is exactly why barrier
cost matters (Fig. 7).

The CPU version is the classic two-level scan: per-thread local scans,
a barrier, a scan of the per-thread totals, a barrier, then a local
offset fix-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cpu.machine import CpuMachine
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig
from repro.openmp.interpreter import OpenMP


@dataclass(frozen=True)
class ScanOutcome:
    """Result of one prefix-sum run."""

    values: np.ndarray
    correct: bool
    elapsed: float


def gpu_block_prefix_sum(device: GpuDevice,
                         data: np.ndarray) -> ScanOutcome:
    """Inclusive Hillis-Steele scan of one block's worth of data.

    Raises:
        ConfigurationError: if the input exceeds one block (1024).
    """
    n = int(data.size)
    if not 1 <= n <= 1024:
        raise ConfigurationError(
            f"block scan handles 1..1024 elements, got {n}")

    def kernel(t):
        i = t.threadIdx
        if i < n:
            value = yield t.global_read("data", i)
            yield t.shared_write("buf", i, value)
        offset = 1
        while offset < n:
            yield t.syncthreads()
            addend = 0
            if offset <= i < n:
                addend = yield t.shared_read("buf", i - offset)
            yield t.syncthreads()
            if offset <= i < n:
                mine = yield t.shared_read("buf", i)
                yield t.shared_write("buf", i, mine + addend)
            offset *= 2
        yield t.syncthreads()
        if i < n:
            value = yield t.shared_read("buf", i)
            yield t.global_write("out", i, value)

    out = np.zeros(n, np.int64)
    cuda = Cuda(device)
    result = cuda.launch(
        kernel, LaunchConfig(1, n),
        globals_={"data": data.astype(np.int64), "out": out},
        shared_decls={"buf": (n, np.dtype(np.int64))})
    expected = np.cumsum(data.astype(np.int64))
    return ScanOutcome(values=out,
                       correct=bool((out == expected).all()),
                       elapsed=result.elapsed_cycles)


def cpu_prefix_sum(machine: CpuMachine, data: np.ndarray,
                   n_threads: int = 4) -> ScanOutcome:
    """Two-level inclusive scan on the OpenMP layer."""
    n = int(data.size)
    per_thread = -(-n // n_threads) if n else 1

    def body(tc):
        start = tc.tid * per_thread
        stop = min(start + per_thread, n)
        # Phase 1: local inclusive scan.
        running = 0
        for i in range(start, stop):
            value = yield tc.read("data", i)
            running += value
            yield tc.write("out", i, running)
        yield tc.atomic_write("totals", tc.tid, running)
        yield tc.barrier()
        # Phase 2: thread 0 scans the totals into offsets.
        if tc.tid == 0:
            acc = 0
            for t in range(tc.n_threads):
                total = yield tc.atomic_read("totals", t)
                yield tc.atomic_write("offsets", t, acc)
                acc += total
        yield tc.barrier()
        # Phase 3: add this thread's offset to its chunk.
        offset = yield tc.atomic_read("offsets", tc.tid)
        if offset:
            for i in range(start, stop):
                value = yield tc.read("out", i)
                yield tc.write("out", i, value + offset)

    omp = OpenMP(machine, n_threads=n_threads)
    shared = {
        "data": data.astype(np.int64),
        "out": np.zeros(max(n, 1), np.int64),
        "totals": np.zeros(n_threads, np.int64),
        "offsets": np.zeros(n_threads, np.int64),
    }
    result = omp.parallel(body, shared=shared)
    out = result.memory["out"][:n]
    expected = np.cumsum(data.astype(np.int64))
    return ScanOutcome(values=out,
                       correct=bool((out == expected).all()),
                       elapsed=result.elapsed_ns)
