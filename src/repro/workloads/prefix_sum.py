"""Prefix sums: barrier-phased data-parallel algorithms.

The GPU version is a block-level Hillis-Steele inclusive scan over
shared memory: log2(n) phases, each separated by ``__syncthreads()`` —
drop one barrier and the result is garbage, which is exactly why barrier
cost matters (Fig. 7).

The CPU version is the classic two-level scan: per-thread local scans,
a barrier, a scan of the per-thread totals, a barrier, then a local
offset fix-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cpu.machine import CpuMachine
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig
from repro.openmp.interpreter import OpenMP


@dataclass(frozen=True)
class ScanOutcome:
    """Result of one prefix-sum run."""

    values: np.ndarray
    correct: bool
    elapsed: float


def gpu_block_prefix_sum(device: GpuDevice,
                         data: np.ndarray) -> ScanOutcome:
    """Inclusive Hillis-Steele scan of one block's worth of data.

    Raises:
        ConfigurationError: if the input exceeds one block (1024).
    """
    n = int(data.size)
    if not 1 <= n <= 1024:
        raise ConfigurationError(
            f"block scan handles 1..1024 elements, got {n}")

    def kernel(t):
        i = t.threadIdx
        if i < n:
            value = yield t.global_read("data", i)
            yield t.shared_write("buf", i, value)
        offset = 1
        while offset < n:
            yield t.syncthreads()
            addend = 0
            if offset <= i < n:
                addend = yield t.shared_read("buf", i - offset)
            yield t.syncthreads()
            if offset <= i < n:
                mine = yield t.shared_read("buf", i)
                yield t.shared_write("buf", i, mine + addend)
            offset *= 2
        yield t.syncthreads()
        if i < n:
            value = yield t.shared_read("buf", i)
            yield t.global_write("out", i, value)

    out = np.zeros(n, np.int64)
    cuda = Cuda(device)
    result = cuda.launch(
        kernel, LaunchConfig(1, n),
        globals_={"data": data.astype(np.int64), "out": out},
        shared_decls={"buf": (n, np.dtype(np.int64))})
    expected = np.cumsum(data.astype(np.int64))
    return ScanOutcome(values=out,
                       correct=bool((out == expected).all()),
                       elapsed=result.elapsed_cycles)


def gpu_segmented_prefix_sum(device: GpuDevice, data: np.ndarray,
                             block_threads: int = 64,
                             block_jobs: int = 1) -> ScanOutcome:
    """Per-block inclusive scans over disjoint segments of ``data``.

    Each block scans its own ``block_threads``-sized segment — the first
    phase of a grid-wide scan.  Blocks touch global memory only through
    disjoint index ranges, so the launch is eligible for the parallel
    block executor: pass ``block_jobs > 1`` to fan blocks out over
    workers (the result is byte-identical to the serial schedule either
    way).

    Raises:
        ConfigurationError: for empty input or a bad block size.
    """
    n = int(data.size)
    if n < 1:
        raise ConfigurationError("segmented scan needs at least 1 element")
    if not 1 <= block_threads <= 1024:
        raise ConfigurationError(
            f"block_threads must be in 1..1024, got {block_threads}")
    grid = -(-n // block_threads)

    def kernel(t):
        base = t.blockIdx * t.blockDim
        i = t.threadIdx
        gi = base + i
        active = gi < n
        if active:
            value = yield t.global_read("data", gi)
            yield t.shared_write("buf", i, value)
        seg = min(t.blockDim, n - base)
        offset = 1
        while offset < seg:
            yield t.syncthreads()
            addend = 0
            if active and offset <= i:
                addend = yield t.shared_read("buf", i - offset)
            yield t.syncthreads()
            if active and offset <= i:
                mine = yield t.shared_read("buf", i)
                yield t.shared_write("buf", i, mine + addend)
            offset *= 2
        if active:
            value = yield t.shared_read("buf", i)
            yield t.global_write("out", gi, value)

    out = np.zeros(n, np.int64)
    cuda = Cuda(device)
    result = cuda.launch(
        kernel, LaunchConfig(grid, block_threads),
        globals_={"data": data.astype(np.int64), "out": out},
        shared_decls={"buf": (block_threads, np.dtype(np.int64))},
        block_jobs=block_jobs)
    expected = np.concatenate([
        np.cumsum(data.astype(np.int64)[s:s + block_threads])
        for s in range(0, n, block_threads)])
    return ScanOutcome(values=out,
                       correct=bool((out == expected).all()),
                       elapsed=result.elapsed_cycles)


def cpu_prefix_sum(machine: CpuMachine, data: np.ndarray,
                   n_threads: int = 4,
                   detect_races: bool = True) -> ScanOutcome:
    """Two-level inclusive scan on the OpenMP layer.

    Args:
        detect_races: Run the race detector (the default).  Turning it
            off lets the interpreter use its batched fast scheduler —
            the benchmark suite does this to time the workload.
    """
    n = int(data.size)
    per_thread = -(-n // n_threads) if n else 1

    def body(tc):
        start = tc.tid * per_thread
        stop = min(start + per_thread, n)
        # Phase 1: local inclusive scan.
        running = 0
        for i in range(start, stop):
            value = yield tc.read("data", i)
            running += value
            yield tc.write("out", i, running)
        yield tc.atomic_write("totals", tc.tid, running)
        yield tc.barrier()
        # Phase 2: thread 0 scans the totals into offsets.
        if tc.tid == 0:
            acc = 0
            for t in range(tc.n_threads):
                total = yield tc.atomic_read("totals", t)
                yield tc.atomic_write("offsets", t, acc)
                acc += total
        yield tc.barrier()
        # Phase 3: add this thread's offset to its chunk.
        offset = yield tc.atomic_read("offsets", tc.tid)
        if offset:
            for i in range(start, stop):
                value = yield tc.read("out", i)
                yield tc.write("out", i, value + offset)

    omp = OpenMP(machine, n_threads=n_threads,
                 detect_races=detect_races)
    shared = {
        "data": data.astype(np.int64),
        "out": np.zeros(max(n, 1), np.int64),
        "totals": np.zeros(n_threads, np.int64),
        "offsets": np.zeros(n_threads, np.int64),
    }
    result = omp.parallel(body, shared=shared)
    out = result.memory["out"][:n]
    expected = np.cumsum(data.astype(np.int64))
    return ScanOutcome(values=out,
                       correct=bool((out == expected).all()),
                       elapsed=result.elapsed_ns)
