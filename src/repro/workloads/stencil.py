"""Jacobi stencil: barriers as phase separators.

Each iteration averages every interior cell with its neighbours into a
second buffer, then swaps — the barrier between compute and swap is what
keeps iteration *k*'s reads from seeing iteration *k+1*'s writes.  The
race detector verifies the point: remove the barrier (``unsafe=True``)
and the program is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.machine import CpuMachine
from repro.openmp.interpreter import OpenMP


@dataclass(frozen=True)
class StencilOutcome:
    """Result of a Jacobi run."""

    values: np.ndarray
    correct: bool
    elapsed: float
    iterations: int


def _reference(data: np.ndarray, iterations: int) -> np.ndarray:
    cur = data.astype(np.float64).copy()
    for _ in range(iterations):
        nxt = cur.copy()
        nxt[1:-1] = (cur[:-2] + cur[1:-1] + cur[2:]) / 3.0
        cur = nxt
    return cur


def cpu_jacobi(machine: CpuMachine, data: np.ndarray, iterations: int = 4,
               n_threads: int = 4, unsafe: bool = False) -> StencilOutcome:
    """Run ``iterations`` Jacobi sweeps over a 1-D array.

    Args:
        unsafe: Skip the barrier between compute and swap — a deliberate
            bug the race detector catches
            (:class:`repro.common.errors.DataRaceError`).
    """
    n = int(data.size)
    per_thread = -(-max(n - 2, 0) // n_threads)

    def body(tc):
        src, dst = "a", "b"
        for _ in range(iterations):
            start = 1 + tc.tid * per_thread
            stop = min(start + per_thread, n - 1)
            for i in range(start, stop):
                left = yield tc.read(src, i - 1)
                mid = yield tc.read(src, i)
                right = yield tc.read(src, i + 1)
                yield tc.write(dst, i, (left + mid + right) / 3.0)
            if tc.tid == 0:
                first = yield tc.read(src, 0)
                last = yield tc.read(src, n - 1)
                yield tc.write(dst, 0, first)
                yield tc.write(dst, n - 1, last)
            if not unsafe:
                yield tc.barrier()
            src, dst = dst, src

    omp = OpenMP(machine, n_threads=n_threads)
    shared = {"a": data.astype(np.float64).copy(),
              "b": np.zeros(n, np.float64)}
    result = omp.parallel(body, shared=shared)
    final = result.memory["a" if iterations % 2 == 0 else "b"]
    expected = _reference(data, iterations)
    return StencilOutcome(
        values=final,
        correct=bool(np.allclose(final, expected)),
        elapsed=result.elapsed_ns,
        iterations=iterations,
    )
