"""Jacobi stencil: barriers as phase separators.

Each iteration averages every interior cell with its neighbours into a
second buffer, then swaps — the barrier between compute and swap is what
keeps iteration *k*'s reads from seeing iteration *k+1*'s writes.  The
race detector verifies the point: remove the barrier (``unsafe=True``)
and the program is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.ops import Scope
from repro.cpu.machine import CpuMachine
from repro.cuda.multigpu import MultiCuda
from repro.gpu.multi import MultiGpu
from repro.gpu.spec import LaunchConfig
from repro.openmp.interpreter import OpenMP


@dataclass(frozen=True)
class StencilOutcome:
    """Result of a Jacobi run."""

    values: np.ndarray
    correct: bool
    elapsed: float
    iterations: int


def _reference(data: np.ndarray, iterations: int) -> np.ndarray:
    cur = data.astype(np.float64).copy()
    for _ in range(iterations):
        nxt = cur.copy()
        nxt[1:-1] = (cur[:-2] + cur[1:-1] + cur[2:]) / 3.0
        cur = nxt
    return cur


def cpu_jacobi(machine: CpuMachine, data: np.ndarray, iterations: int = 4,
               n_threads: int = 4, unsafe: bool = False) -> StencilOutcome:
    """Run ``iterations`` Jacobi sweeps over a 1-D array.

    Args:
        unsafe: Skip the barrier between compute and swap — a deliberate
            bug the race detector catches
            (:class:`repro.common.errors.DataRaceError`).
    """
    n = int(data.size)
    per_thread = -(-max(n - 2, 0) // n_threads)

    def body(tc):
        src, dst = "a", "b"
        for _ in range(iterations):
            start = 1 + tc.tid * per_thread
            stop = min(start + per_thread, n - 1)
            for i in range(start, stop):
                left = yield tc.read(src, i - 1)
                mid = yield tc.read(src, i)
                right = yield tc.read(src, i + 1)
                yield tc.write(dst, i, (left + mid + right) / 3.0)
            if tc.tid == 0:
                first = yield tc.read(src, 0)
                last = yield tc.read(src, n - 1)
                yield tc.write(dst, 0, first)
                yield tc.write(dst, n - 1, last)
            if not unsafe:
                yield tc.barrier()
            src, dst = dst, src

    omp = OpenMP(machine, n_threads=n_threads)
    shared = {"a": data.astype(np.float64).copy(),
              "b": np.zeros(n, np.float64)}
    result = omp.parallel(body, shared=shared)
    final = result.memory["a" if iterations % 2 == 0 else "b"]
    expected = _reference(data, iterations)
    return StencilOutcome(
        values=final,
        correct=bool(np.allclose(final, expected)),
        elapsed=result.elapsed_ns,
        iterations=iterations,
    )


def multi_gpu_jacobi(multi: MultiGpu, data: np.ndarray,
                     iterations: int = 4, n_devices: int = 2,
                     grid_blocks: int = 1,
                     block_threads: int = 32) -> StencilOutcome:
    """Jacobi sweeps as one cooperative multi-device launch.

    The two buffers live in system memory, split across devices by
    thread rank.  Each iteration ends with the cross-device handshake
    the sanitizer's sync-scope rule demands: a *system-scope* fence
    publishes this device's halo writes, then ``multi_grid.sync()``
    separates iteration *k*'s writes from iteration *k+1*'s reads on
    every peer.  Buffers ping-pong by parity, exactly like the CPU
    version.
    """
    n = int(data.size)
    system = {"a": data.astype(np.float64).copy(),
              "b": np.zeros(n, np.float64)}

    def kernel(t):
        for it in range(iterations):
            src = "a" if it % 2 == 0 else "b"
            dst = "b" if it % 2 == 0 else "a"
            i = 1 + t.system_id
            while i < n - 1:
                left = yield t.system_read(src, i - 1)
                mid = yield t.system_read(src, i)
                right = yield t.system_read(src, i + 1)
                yield t.system_write(dst, i,
                                     (left + mid + right) / 3.0)
                i += t.system_threads
            if t.system_id == 0:
                first = yield t.system_read(src, 0)
                last = yield t.system_read(src, n - 1)
                yield t.system_write(dst, 0, first)
                yield t.system_write(dst, n - 1, last)
            # Publish this device's writes to every peer, then keep
            # iteration k+1's reads behind iteration k's writes.
            yield t.threadfence(Scope.SYSTEM)
            yield t.multi_grid_sync()

    runtime = MultiCuda(multi, n_devices=n_devices)
    result = runtime.launch(kernel,
                            LaunchConfig(grid_blocks, block_threads),
                            system=system)
    final = system["a" if iterations % 2 == 0 else "b"]
    expected = _reference(data, iterations)
    return StencilOutcome(
        values=final,
        correct=bool(np.allclose(final, expected)),
        elapsed=result.elapsed_cycles,
        iterations=iterations,
    )
