"""Block-level bitonic sort: the barrier-heavy kernel.

Bitonic sort over shared memory runs O(log^2 n) compare-exchange phases,
every one separated by ``__syncthreads()`` — the workload shape behind
recommendation V-B5 (1) ("__syncthreads() performance decreases with
increasing warp counts, so smaller block sizes might help in a
barrier-heavy code").  :func:`barrier_cost_share` quantifies exactly how
much of the kernel the barriers are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig


@dataclass(frozen=True)
class SortOutcome:
    """Result of one bitonic-sort run.

    Attributes:
        values: The sorted output.
        correct: Matches ``numpy.sort``.
        elapsed: Modeled kernel cycles.
        barrier_share: Fraction of traced warp time spent in
            ``__syncthreads()`` (None when tracing was off).
    """

    values: np.ndarray
    correct: bool
    elapsed: float
    barrier_share: float | None


def gpu_bitonic_sort(device: GpuDevice, data: np.ndarray,
                     trace: bool = False) -> SortOutcome:
    """Sort one block's worth of data (power-of-two length <= 1024).

    Raises:
        ConfigurationError: for non-power-of-two or oversized input.
    """
    n = int(data.size)
    if n < 2 or n > 1024 or n & (n - 1):
        raise ConfigurationError(
            f"bitonic sort needs a power-of-two length in 2..1024, "
            f"got {n}")

    def kernel(t):
        i = t.threadIdx
        value = yield t.global_read("data", i)
        yield t.shared_write("buf", i, value)
        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                yield t.syncthreads()
                partner = i ^ j
                if partner > i:
                    mine = yield t.shared_read("buf", i)
                    theirs = yield t.shared_read("buf", partner)
                    ascending = (i & k) == 0
                    if (mine > theirs) == ascending:
                        yield t.shared_write("buf", i, theirs)
                        yield t.shared_write("buf", partner, mine)
                j //= 2
            k *= 2
        yield t.syncthreads()
        value = yield t.shared_read("buf", i)
        yield t.global_write("out", i, value)

    out = np.zeros(n, np.int64)
    cuda = Cuda(device)
    result = cuda.launch(
        kernel, LaunchConfig(1, n),
        globals_={"data": data.astype(np.int64), "out": out},
        shared_decls={"buf": (n, np.dtype(np.int64))},
        trace=trace)
    barrier_share = None
    if result.trace is not None:
        totals = result.trace.total_cycles_by_label()
        full = sum(totals.values())
        barrier_share = totals.get("Syncthreads", 0.0) / full if full \
            else 0.0
    expected = np.sort(data.astype(np.int64))
    return SortOutcome(
        values=out,
        correct=bool((out == expected).all()),
        elapsed=result.elapsed_cycles,
        barrier_share=barrier_share,
    )
