"""Producer/consumer pipeline: locks guarding a bounded queue.

Half the team produces items, half consumes them, through a shared ring
buffer whose head/tail/slots are protected by a single lock — the
pattern critical sections and locks exist for (no single atomic covers a
multi-word queue update).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cpu.machine import CpuMachine
from repro.openmp.interpreter import OpenMP


@dataclass(frozen=True)
class PipelineOutcome:
    """Result of a producer/consumer run.

    Attributes:
        consumed_sum: Sum of every consumed item.
        expected_sum: Sum of every produced item.
        correct: All items consumed exactly once.
        elapsed: Modeled runtime (ns).
    """

    consumed_sum: int
    expected_sum: int
    correct: bool
    elapsed: float


def cpu_pipeline(machine: CpuMachine, items_per_producer: int = 16,
                 n_threads: int = 4,
                 queue_slots: int = 4) -> PipelineOutcome:
    """Run the pipeline with ``n_threads/2`` producers and consumers.

    Raises:
        ConfigurationError: for an odd team or empty queue.
    """
    if n_threads % 2:
        raise ConfigurationError("need an even team "
                                 f"(producers+consumers), got {n_threads}")
    if queue_slots < 1:
        raise ConfigurationError(f"queue needs >= 1 slot, got {queue_slots}")
    n_producers = n_threads // 2
    total_items = n_producers * items_per_producer

    # Queue state: queue[slot], head (next pop), tail (next push), count,
    # plus a consumed-items tally.
    def body(tc):
        is_producer = tc.tid < n_producers
        if is_producer:
            produced = 0
            while produced < items_per_producer:
                item = tc.tid * items_per_producer + produced + 1
                yield tc.lock_acquire("queue")
                count = yield tc.read("state", 2)
                if count < queue_slots:
                    tail = yield tc.read("state", 1)
                    yield tc.write("queue", tail, item)
                    yield tc.write("state", 1, (tail + 1) % queue_slots)
                    yield tc.write("state", 2, count + 1)
                    produced += 1
                yield tc.lock_release("queue")
        else:
            consumed = 0
            my_share = items_per_producer  # one consumer per producer
            while consumed < my_share:
                yield tc.lock_acquire("queue")
                count = yield tc.read("state", 2)
                if count > 0:
                    head = yield tc.read("state", 0)
                    item = yield tc.read("queue", head)
                    yield tc.write("state", 0, (head + 1) % queue_slots)
                    yield tc.write("state", 2, count - 1)
                    total = yield tc.read("sum", 0)
                    yield tc.write("sum", 0, total + item)
                    consumed += 1
                yield tc.lock_release("queue")

    omp = OpenMP(machine, n_threads=n_threads)
    shared = {
        "queue": np.zeros(queue_slots, np.int64),
        "state": np.zeros(3, np.int64),  # head, tail, count
        "sum": np.zeros(1, np.int64),
    }
    result = omp.parallel(body, shared=shared)
    consumed_sum = int(result.memory["sum"][0])
    expected = sum(range(1, total_items + 1))
    return PipelineOutcome(
        consumed_sum=consumed_sum,
        expected_sum=expected,
        correct=consumed_sum == expected,
        elapsed=result.elapsed_ns,
    )
