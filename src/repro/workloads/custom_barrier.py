"""A sense-reversing barrier built from the paper's own primitives.

Fig. 2's analysis infers that "the [OpenMP] barrier implementation is
likely based on atomic operations on shared variables".  This workload
tests the inference constructively: a central sense-reversing barrier is
built from an atomic capture (the arrival counter), an atomic write (the
sense flip), and atomic reads (the spin), and its measured cost is
compared against the native library barrier — same mechanism, same cost
regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.machine import CpuMachine
from repro.openmp.interpreter import OpenMP, ThreadContext


@dataclass(frozen=True)
class BarrierComparison:
    """Custom-vs-native barrier timing.

    Attributes:
        custom_ns: Per-barrier cost of the atomics-built barrier.
        native_ns: Per-barrier cost of the library barrier.
        rounds: Barrier episodes timed.
        correct: The custom barrier actually synchronized (the phase
            counter check passed on every round).
    """

    custom_ns: float
    native_ns: float
    rounds: int
    correct: bool

    @property
    def ratio(self) -> float:
        """custom / native cost (≈ same ballpark supports the paper's
        inference)."""
        return self.custom_ns / self.native_ns if self.native_ns else \
            float("inf")


def sense_reversing_barrier(tc: ThreadContext, local_sense: int):
    """One episode of the classic central barrier (generator helper).

    Shared state: ``bar[0]`` = arrival count, ``bar[1]`` = sense.

    Yields the requests that implement: flip local sense; atomically
    count in; last arrival resets the count and publishes the new sense;
    everyone else spins on the sense with atomic reads.

    Returns:
        The new local sense to use for the next episode.
    """
    local_sense = 1 - local_sense
    arrived = yield tc.atomic_capture("bar", 0, lambda v: v + 1,
                                      capture_old=False)
    if arrived == tc.n_threads:
        yield tc.atomic_write("bar", 0, 0)
        yield tc.atomic_write("bar", 1, local_sense)
    else:
        while (yield tc.atomic_read("bar", 1)) != local_sense:
            pass
    return local_sense


def compare_barriers(machine: CpuMachine, n_threads: int = 8,
                     rounds: int = 8) -> BarrierComparison:
    """Time the custom barrier against the native one, round for round."""
    correct_flags = []

    def custom_body(tc):
        local_sense = 0
        for round_ in range(rounds):
            yield tc.atomic_update("phase", tc.tid, lambda v: v + 1)
            local_sense = yield from sense_reversing_barrier(tc,
                                                             local_sense)
            # After the barrier every thread must have finished the round.
            for t in range(tc.n_threads):
                count = yield tc.atomic_read("phase", t)
                correct_flags.append(count >= round_ + 1)

    def native_body(tc):
        for _ in range(rounds):
            yield tc.atomic_update("phase", tc.tid, lambda v: v + 1)
            yield tc.barrier()

    omp = OpenMP(machine, n_threads=n_threads)
    custom = omp.parallel(custom_body, shared={
        "bar": np.zeros(2, np.int64),
        "phase": np.zeros(n_threads, np.int64)})
    native = omp.parallel(native_body, shared={
        "phase": np.zeros(n_threads, np.int64)})
    return BarrierComparison(
        custom_ns=custom.elapsed_ns / rounds,
        native_ns=native.elapsed_ns / rounds,
        rounds=rounds,
        correct=all(correct_flags),
    )
