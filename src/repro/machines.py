"""Machine definitions as JSON: save, load, share, calibrate.

The artifact's promise is that the experiments run on any hardware; this
module makes custom machines portable.  A machine file fully describes a
:class:`~repro.cpu.machine.CpuMachine` (topology + cost params + jitter)
or a :class:`~repro.gpu.device.GpuDevice` (spec + cost params + atomic
units), so a calibration fitted on one box (see
:mod:`repro.analysis.calibrate`) can be saved and reloaded anywhere.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.cpu.costs import CpuCostParams
from repro.cpu.jitter import JitterModel
from repro.cpu.machine import CpuMachine
from repro.cpu.topology import CpuTopology
from repro.gpu.atomic_units import AtomicUnitModel
from repro.gpu.costs import GpuCostParams
from repro.gpu.device import GpuDevice
from repro.gpu.spec import GpuSpec


def _build(cls, data: dict, where: str):
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown keys {sorted(unknown)}; allowed "
            f"{sorted(allowed)}")
    return cls(**data)


def save_cpu_machine(machine: CpuMachine, path: str | Path) -> Path:
    """Serialize a CPU machine to JSON."""
    path = Path(path)
    payload = {
        "kind": "cpu",
        "topology": asdict(machine.topology),
        "cost_params": asdict(machine.params),
        "jitter": asdict(machine.jitter),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def save_gpu_device(device: GpuDevice, path: str | Path) -> Path:
    """Serialize a GPU device to JSON."""
    path = Path(path)
    payload = {
        "kind": "gpu",
        "spec": asdict(device.spec),
        "cost_params": asdict(device.params),
        "atomic_units": asdict(device.atomics),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_machine(path: str | Path) -> CpuMachine | GpuDevice:
    """Load a machine file written by the savers above.

    Raises:
        ConfigurationError: for unreadable files, missing/unknown kinds,
            or fields the dataclasses reject.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ConfigurationError(f"machine file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"machine file {path} is not valid JSON: {exc}") from exc
    kind = payload.get("kind")
    if kind == "cpu":
        return CpuMachine(
            _build(CpuTopology, payload.get("topology", {}),
                   f"{path}:topology"),
            _build(CpuCostParams, payload.get("cost_params", {}),
                   f"{path}:cost_params"),
            _build(JitterModel, payload.get("jitter", {}),
                   f"{path}:jitter"),
        )
    if kind == "gpu":
        return GpuDevice(
            _build(GpuSpec, payload.get("spec", {}), f"{path}:spec"),
            _build(GpuCostParams, payload.get("cost_params", {}),
                   f"{path}:cost_params"),
            _build(AtomicUnitModel, payload.get("atomic_units", {}),
                   f"{path}:atomic_units"),
        )
    raise ConfigurationError(
        f"machine file {path} has kind {kind!r}; expected 'cpu' or 'gpu'")
