"""Per-primitive steady-state cost model for the CPU.

Each method prices one dynamic op (in nanoseconds, for the slowest
participating thread — the paper records the maximum runtime across
threads).  The trends of Section V-A arise from four mechanisms:

* **ALU path** — integer atomics complete faster than floating-point ones;
  word size (32 vs 64 bit) is free on 64-bit CPUs.
* **Line ownership migration** — atomics/stores to a shared variable pay a
  coherence transfer per contending core, saturating at a machine knee
  (the "largely stable beyond ~8 threads" plateau of Figs. 1, 2, 5).
* **False sharing** — ops on private array elements pay invalidation
  traffic per *other core* mapped to the same 64-byte line; the stride
  cliffs of Figs. 3 and 6 are produced by
  :class:`repro.mem.coherence.CoherenceModel` geometry.
* **Lock overhead** — critical sections wrap the update in an
  acquire/release pair whose contention grows faster than a bare atomic's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.common.datatypes import DataType
from repro.common.errors import ConfigurationError
from repro.compiler.ops import Op, PrimitiveKind
from repro.mem.cacheline import elements_per_line
from repro.mem.coherence import CoherenceModel
from repro.mem.layout import PrivateArrayElement, SharedScalar


@dataclass(frozen=True)
class CpuCostParams:
    """Calibration constants for one CPU's cost model (all in ns).

    The defaults are calibrated to System 3 (Threadripper 2950X) such that
    absolute throughputs land in the ranges the paper's figures show
    (atomics ~1e7..5e7 ops/s/thread, flush ~1e7..1e8, barrier ~1e5..1e6).

    Attributes:
        int_alu_ns: Uncontended integer atomic read-modify-write cost.
        fp_alu_ns: Uncontended floating-point atomic RMW cost.
        store_ns: Uncontended atomic store cost (dtype independent; 64-bit
            CPUs store 8 bytes in one transaction).
        plain_update_ns: Non-atomic RMW on an L1-resident private element
            (baseline scaffolding for the flush test).
        line_transfer_ns: Cache-to-cache transfer cost per contending core.
        contention_knee: Contending-core count beyond which per-thread cost
            stops growing (the plateau of Figs. 1/2/5).
        false_share_ns: Invalidation cost per other core on the same line.
        barrier_base_ns: Two-thread barrier latency.
        barrier_per_core_ns: Added barrier cost per extra core up to the knee.
        lock_overhead_ns: Critical-section acquire+release overhead.
        critical_transfer_ns: Lock-line transfer per contending core.
        critical_knee: Contention knee for the lock (higher than the atomic
            knee: the critical section keeps degrading longer, Fig. 5).
        flush_base_ns: Fence cost when no coherence traffic needs draining.
        flush_drain_ns: Drain cost per false-sharing partner.
        flush_oscillation: Relative amplitude of the odd/even-thread-count
            oscillation seen at partial padding (Fig. 6b/6c).
        capture_extra_ns: Extra cost of atomic capture over atomic update
            (measured "nearly identical" in the paper).
        numa_factor: Multiplier on coherence traffic when the contending
            cores span NUMA nodes (fully cross-node traffic costs this
            much more; every Table I system has 2 nodes).
    """

    int_alu_ns: float = 6.0
    fp_alu_ns: float = 12.0
    store_ns: float = 4.0
    plain_update_ns: float = 2.0
    line_transfer_ns: float = 14.0
    contention_knee: int = 7
    false_share_ns: float = 13.0
    barrier_base_ns: float = 800.0
    barrier_per_core_ns: float = 150.0
    lock_overhead_ns: float = 60.0
    critical_transfer_ns: float = 30.0
    critical_knee: int = 15
    flush_base_ns: float = 2.0
    flush_drain_ns: float = 8.0
    flush_oscillation: float = 0.25
    capture_extra_ns: float = 0.3
    numa_factor: float = 1.35

    def alu_ns(self, dtype: DataType) -> float:
        """Atomic arithmetic cost for a data type (word size is free)."""
        return self.int_alu_ns if dtype.is_integer else self.fp_alu_ns

    def with_overrides(self, **kwargs: float) -> "CpuCostParams":
        """Copy with some constants replaced (for ablations/calibration)."""
        return replace(self, **kwargs)


class CpuCostModel:
    """Prices CPU ops given a thread placement.

    Args:
        params: Calibration constants.
        coherence: Line-geometry model (64 B lines by default).
    """

    def __init__(self, params: CpuCostParams,
                 coherence: CoherenceModel | None = None) -> None:
        self.params = params
        self.coherence = coherence or CoherenceModel()
        # Per-call scratch: NUMA multiplier of the configuration currently
        # being priced (set at the top of op_cost_ns).
        self._numa_mult = 1.0

    def _numa_multiplier(self, n_threads: int,
                         core_placement: Mapping[int, object],
                         numa_placement: Mapping[int, int] | None) -> float:
        """Coherence-traffic multiplier for this placement: 1.0 when all
        contending cores share a NUMA node, up to ``numa_factor`` when the
        traffic is fully cross-node."""
        if not numa_placement:
            return 1.0
        nodes_by_core: dict[object, int] = {}
        for tid in range(n_threads):
            core = core_placement[tid]
            nodes_by_core.setdefault(core, numa_placement.get(tid, 0))
        if len(nodes_by_core) < 2:
            return 1.0
        counts: dict[int, int] = {}
        for node in nodes_by_core.values():
            counts[node] = counts.get(node, 0) + 1
        cross_fraction = 1.0 - max(counts.values()) / len(nodes_by_core)
        return 1.0 + (self.params.numa_factor - 1.0) * cross_fraction

    def op_cost_ns(self, op: Op, n_threads: int,
                   core_placement: Mapping[int, object],
                   numa_placement: Mapping[int, int] | None = None
                   ) -> float:
        """Deterministic steady-state cost (ns) of one dynamic op.

        Args:
            op: The op to price.
            n_threads: Participating thread count.
            core_placement: thread id -> physical-core key.
            numa_placement: thread id -> NUMA node; when given, coherence
                traffic between nodes is scaled by ``numa_factor``.

        Raises:
            ConfigurationError: for GPU-only op kinds.
        """
        self._numa_mult = self._numa_multiplier(n_threads, core_placement,
                                                numa_placement)
        kind = op.kind
        if kind is PrimitiveKind.OMP_BARRIER:
            return self._barrier(n_threads, core_placement)
        if kind is PrimitiveKind.OMP_ATOMIC_UPDATE:
            return self._atomic_rmw(op, n_threads, core_placement)
        if kind is PrimitiveKind.OMP_ATOMIC_CAPTURE:
            return (self._atomic_rmw(op, n_threads, core_placement)
                    + self.params.capture_extra_ns)
        if kind is PrimitiveKind.OMP_ATOMIC_WRITE:
            return self._atomic_write(op, n_threads, core_placement)
        if kind is PrimitiveKind.OMP_ATOMIC_READ:
            # Same cost as a plain read: the paper found no performance
            # penalty for reading atomically (Section V-A2), so the
            # contrast spec (atomic read vs plain read) measures ~zero.
            return 0.5
        if kind is PrimitiveKind.OMP_CRITICAL_UPDATE:
            return self._critical(op, n_threads, core_placement)
        if kind is PrimitiveKind.OMP_LOCK_ACQUIRE:
            # Acquiring a contended lock waits behind other cores' lock
            # round-trips, like the critical section (which OpenMP builds
            # from exactly this mechanism, §II-A3).
            contenders = self._shared_contention(
                n_threads, core_placement, self.params.critical_knee)
            return (self.params.lock_overhead_ns / 2) * (contenders + 1) \
                + self.params.critical_transfer_ns * contenders
        if kind is PrimitiveKind.OMP_LOCK_RELEASE:
            return self.params.lock_overhead_ns / 2
        if kind is PrimitiveKind.OMP_FLUSH:
            return self._flush(op, n_threads, core_placement)
        if kind is PrimitiveKind.PLAIN_UPDATE:
            return self._plain_update(op, n_threads, core_placement)
        if kind is PrimitiveKind.PLAIN_READ:
            return 0.5
        raise ConfigurationError(f"{kind} is not a CPU primitive")

    # ------------------------------------------------------------------ #

    def _contending_cores(self, n_threads: int,
                          core_placement: Mapping[int, object]) -> int:
        return self.coherence.contending_cores(n_threads, core_placement)

    def _shared_contention(self, n_threads: int,
                           core_placement: Mapping[int, object],
                           knee: int) -> int:
        """Effective number of other cores an op on a shared scalar waits
        for: line ownership migrates core to core, saturating at the knee
        (the plateau of Figs. 1/2/5)."""
        cores = self._contending_cores(n_threads, core_placement)
        return min(max(cores - 1, 0), knee)

    def _false_sharing_ns(self, op: Op, n_threads: int,
                          core_placement: Mapping[int, object]) -> float:
        assert isinstance(op.target, PrivateArrayElement)
        partners = self.coherence.max_false_sharing_partners(
            op.target, n_threads, core_placement)
        return self.params.false_share_ns * partners * self._numa_mult

    def _barrier(self, n_threads: int,
                 core_placement: Mapping[int, object]) -> float:
        p = self.params
        cores = self._contending_cores(n_threads, core_placement)
        return (p.barrier_base_ns
                + p.barrier_per_core_ns * min(max(cores - 1, 0),
                                              p.contention_knee)
                * self._numa_mult)

    def _atomic_rmw(self, op: Op, n_threads: int,
                    core_placement: Mapping[int, object]) -> float:
        p = self.params
        if op.dtype is None or op.target is None:
            raise ConfigurationError("atomic update needs dtype and target")
        alu = p.alu_ns(op.dtype)
        if isinstance(op.target, SharedScalar):
            # While waiting for the line, a thread sits behind the other
            # cores' complete operations (arithmetic included), so the
            # integer/floating-point gap persists under contention.
            contenders = self._shared_contention(n_threads, core_placement,
                                                 p.contention_knee)
            return alu * (contenders + 1) \
                + p.line_transfer_ns * contenders * self._numa_mult
        return alu + self._false_sharing_ns(op, n_threads, core_placement)

    def _atomic_write(self, op: Op, n_threads: int,
                      core_placement: Mapping[int, object]) -> float:
        # No arithmetic: dtype and word size are irrelevant (Fig. 4).
        p = self.params
        if op.target is None:
            raise ConfigurationError("atomic write needs a target")
        if isinstance(op.target, SharedScalar):
            contenders = self._shared_contention(n_threads, core_placement,
                                                 p.contention_knee)
            return p.store_ns * (contenders + 1) \
                + p.line_transfer_ns * contenders * self._numa_mult
        return p.store_ns + self._false_sharing_ns(op, n_threads,
                                                   core_placement)

    def _critical(self, op: Op, n_threads: int,
                  core_placement: Mapping[int, object]) -> float:
        p = self.params
        if op.dtype is None:
            raise ConfigurationError("critical update needs a dtype")
        # Waiters serialize behind full lock acquire/op/release rounds, so
        # the decline is steeper and the plateau lower than a bare atomic's
        # (Fig. 5), and it keeps degrading longer (higher knee).
        contenders = self._shared_contention(n_threads, core_placement,
                                             p.critical_knee)
        return ((p.lock_overhead_ns + p.alu_ns(op.dtype)) * (contenders + 1)
                + p.critical_transfer_ns * contenders * self._numa_mult)

    def _flush(self, op: Op, n_threads: int,
               core_placement: Mapping[int, object]) -> float:
        """Fence cost: drain outstanding coherence traffic.

        Without false sharing the store buffers hold only L1-resident
        private lines and the flush is nearly free (Fig. 6d).  With false
        sharing the fence must wait for in-flight invalidations, one per
        partner core; partially padded strides additionally oscillate with
        thread-count parity as line ownership alternates (Fig. 6b/6c).
        """
        p = self.params
        if not isinstance(op.target, PrivateArrayElement):
            # A bare flush with no surrounding array accesses to order.
            return p.flush_base_ns
        partners = self.coherence.max_false_sharing_partners(
            op.target, n_threads, core_placement)
        if partners == 0:
            return p.flush_base_ns
        drain = p.flush_drain_ns * partners * self._numa_mult
        cost = p.flush_base_ns + drain
        epl = elements_per_line(self.coherence.geometry, op.target)
        partially_padded = op.target.stride > 1 and epl > 1
        if partially_padded:
            parity = 1.0 if n_threads % 2 else -1.0
            cost += parity * p.flush_oscillation * drain
        return max(cost, p.flush_base_ns)

    def _plain_update(self, op: Op, n_threads: int,
                      core_placement: Mapping[int, object]) -> float:
        """Non-atomic RMW on a private element: pays false sharing but no
        atomicity overhead (the flush test's scaffolding)."""
        p = self.params
        cost = p.plain_update_ns
        if isinstance(op.target, PrivateArrayElement):
            cost += 0.5 * self._false_sharing_ns(op, n_threads,
                                                 core_placement)
        return cost
