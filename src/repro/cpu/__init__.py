"""CPU substrate: topology, thread placement, jitter, and primitive costs.

This package models the three CPUs of Table I closely enough that every
OpenMP trend in Section V-A emerges from mechanism rather than curve
fitting: coherence transfers for shared-variable atomics, line geometry for
false sharing, lock overhead for critical sections, and an OS-jitter noise
process (larger on the AMD part, per Fig. 4a).
"""

from repro.cpu.topology import CpuTopology, CorePlace
from repro.cpu.affinity import Affinity, place_threads
from repro.cpu.jitter import JitterModel
from repro.cpu.costs import CpuCostParams, CpuCostModel
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import (
    SYSTEM1_CPU,
    SYSTEM2_CPU,
    SYSTEM3_CPU,
    cpu_preset,
    CPU_PRESETS,
)

__all__ = [
    "CpuTopology",
    "CorePlace",
    "Affinity",
    "place_threads",
    "JitterModel",
    "CpuCostParams",
    "CpuCostModel",
    "CpuMachine",
    "SYSTEM1_CPU",
    "SYSTEM2_CPU",
    "SYSTEM3_CPU",
    "cpu_preset",
    "CPU_PRESETS",
]
