"""The CPU machine: topology + cost model + jitter, behind one interface.

A :class:`CpuMachine` is what the measurement engine talks to.  It answers
two questions: what does this op cost at this thread count/affinity
(deterministic steady state), and how noisy is one timed run (stochastic
jitter).  The same interface shape is implemented by
:class:`repro.gpu.device.GpuDevice`, so the engine is device-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import throughput_from_ns
from repro.compiler.ops import Op
from repro.cpu.affinity import Affinity, core_placement, place_threads, \
    uses_hyperthreading
from repro.cpu.costs import CpuCostModel, CpuCostParams
from repro.cpu.jitter import JitterModel
from repro.cpu.topology import CpuTopology


@dataclass(frozen=True)
class CpuRunContext:
    """Resolved execution context for one OpenMP measurement configuration.

    Attributes:
        n_threads: Participating thread count.
        affinity: Placement policy used.
        hyperthreaded: Whether any physical core runs two of the threads.
    """

    n_threads: int
    affinity: Affinity
    hyperthreaded: bool
    core_keys: dict[int, tuple[int, int]] = field(repr=False,
                                                  default_factory=dict)
    numa_keys: dict[int, int] = field(repr=False, default_factory=dict)
    #: Per-context op/body price memo (coherence and NUMA geometry are
    #: pure functions of the placement, so each op needs pricing once per
    #: context, not once per sweep point).  Excluded from eq/repr.
    _cost_cache: dict = field(repr=False, compare=False,
                              default_factory=dict)


class CpuMachine:
    """A simulated multicore CPU (one of Table I's systems, or custom).

    Args:
        topology: Socket/core/SMT/NUMA layout and clock.
        params: Cost-model calibration constants.
        jitter: OS-noise model (the AMD preset passes a noisier one).
    """

    #: Tag used by the engine to pick time units ("ns" here, "cycles" on GPU).
    time_unit = "ns"

    #: Per-outer-iteration loop bookkeeping cost (ns); amortized over the
    #: unroll factor and cancelled by the baseline/test subtraction.
    loop_overhead = 1.2

    #: One-time cold-start cost (ns) of a timed function: first-touch page
    #: faults and cache misses on the test data.  The warm-up loop
    #: (N_WARMUP) exists to pay this before the timed section (§III).
    cold_start_cost = 150_000.0

    def __init__(self, topology: CpuTopology,
                 params: CpuCostParams | None = None,
                 jitter: JitterModel | None = None) -> None:
        self.topology = topology
        self.params = params or CpuCostParams()
        self.jitter = jitter or JitterModel()
        self.cost_model = CpuCostModel(self.params)
        self._context_cache: dict[tuple[int, Affinity], CpuRunContext] = {}

    @property
    def name(self) -> str:
        return self.topology.name

    @property
    def max_threads(self) -> int:
        """Maximum OpenMP thread count (all hardware threads)."""
        return self.topology.hardware_threads

    def context(self, n_threads: int,
                affinity: Affinity = Affinity.DEFAULT) -> CpuRunContext:
        """Resolve a thread count + affinity into a placement context.

        Contexts are pure functions of (thread count, affinity) on a
        given topology, so they are built once and cached: sweeps resolve
        the same placements at every series.
        """
        if n_threads < 2:
            raise ConfigurationError(
                "the paper omits single-thread runs: synchronization serves "
                f"no purpose in serial execution (got {n_threads})")
        cached = self._context_cache.get((n_threads, affinity))
        if cached is not None:
            return cached
        placement = place_threads(self.topology, n_threads, affinity)
        ctx = CpuRunContext(
            n_threads=n_threads,
            affinity=affinity,
            hyperthreaded=uses_hyperthreading(placement),
            core_keys=core_placement(placement),
            numa_keys={tid: self.topology.numa_node_of(place)
                       for tid, place in placement.items()},
        )
        self._context_cache[(n_threads, affinity)] = ctx
        return ctx

    def op_cost(self, op: Op, ctx: CpuRunContext) -> float:
        """Deterministic steady-state cost of one op (ns)."""
        # Keyed by (machine, op): a context may be priced by more than
        # one machine (ablations pair machines over shared placements).
        cached = ctx._cost_cache.get((self, op))
        if cached is None:
            cached = self.cost_model.op_cost_ns(op, ctx.n_threads,
                                                ctx.core_keys, ctx.numa_keys)
            ctx._cost_cache[(self, op)] = cached
        return cached

    def body_cost(self, body: tuple[Op, ...] | list[Op],
                  ctx: CpuRunContext) -> float:
        """Cost of one unrolled loop-body iteration (ns)."""
        # Whole-body memo: the engine prices the same two kept bodies at
        # every sweep point, so one lookup replaces the per-op sum.
        # Tuples only — list bodies are unhashable (and rare).
        if type(body) is tuple:
            cached = ctx._cost_cache.get((self, body))
            if cached is None:
                cached = sum(self.op_cost(op, ctx) for op in body)
                ctx._cost_cache[(self, body)] = cached
            return cached
        return sum(self.op_cost(op, ctx) for op in body)

    def run_noise(self, rng: np.random.Generator, ctx: CpuRunContext,
                  body: tuple[Op, ...] = (),
                  base_cost: float = 0.0) -> float:
        """Stochastic per-op noise (ns) for one timed run.

        OS jitter is duration-proportional, so the deterministic cost being
        perturbed is passed in; the body itself does not change CPU noise
        (the parameter exists for interface parity with the GPU, where
        system-scope fences are noisier).
        """
        del body
        return self.jitter.sample_run_noise(rng, ctx.hyperthreaded,
                                            base_cost)

    def run_noise_batch(self, rng: np.random.Generator, ctx: CpuRunContext,
                        bodies: tuple[tuple[Op, ...], ...],
                        base_costs: tuple[float, ...]) -> list[float]:
        """Batched :meth:`run_noise`, stream-identical to scalar calls.

        The engine's fast path draws the baseline/test pair of one
        attempt in a single call; the fault wrapper deliberately does not
        implement this method (faults can abort mid-pair, so its stream
        consumption must stay per-sample).

        Subclasses overriding :meth:`run_noise` (adversarial test
        machines) are routed through their override, sample by sample,
        so the fast path preserves their semantics.
        """
        if type(self).run_noise is not CpuMachine.run_noise:
            return [self.run_noise(rng, ctx, body, cost)
                    for body, cost in zip(bodies, base_costs)]
        del bodies
        return self.jitter.sample_run_noise_batch(rng, ctx.hyperthreaded,
                                                  base_costs)

    def noise_sampler(self, ctx: CpuRunContext,
                      bodies: tuple[tuple[Op, ...], ...],
                      base_costs: tuple[float, ...]):
        """A compiled per-attempt sampler for one sweep point, or
        ``None`` when the engine must fall back to per-sample calls
        (subclasses overriding :meth:`run_noise`)."""
        if type(self).run_noise is not CpuMachine.run_noise:
            return None
        del bodies
        return self.jitter.make_sampler(ctx.hyperthreaded, base_costs)

    def noise_free(self, body: tuple[Op, ...] = ()) -> bool:
        """True when every run-noise sample for ``body`` is exactly 0.0.

        Lets the engine skip sampling entirely for zero-jitter machines
        (deterministic-cost test fixtures).  A subclass with its own
        :meth:`run_noise` is never assumed silent, whatever its jitter
        model says.
        """
        del body
        if type(self).run_noise is not CpuMachine.run_noise:
            return False
        return self.jitter.is_silent

    def throughput(self, per_op_time: float) -> float:
        """Per-thread ops/s from a per-op runtime in this machine's unit."""
        return throughput_from_ns(per_op_time)

    def describe(self) -> dict[str, object]:
        """Table I row for this machine."""
        return self.topology.describe()
