"""OS-jitter model for CPU timing.

Section IV reports a typical standard deviation of ~7.8 ns per primitive
runtime on System 3's CPU and cites Vicente & Matias' study of Linux OS
jitter to explain occasional faulty measurements where the test function
appears *faster* than the baseline.  Fig. 4a additionally shows that the
AMD part is visibly noisier than the Intel parts.

Jitter on a timed loop is mostly *proportional* to its duration (timer
interrupts and daemon wakeups steal a slice of whatever runs), with a small
additive component from timer resolution.  The model therefore draws, per
timed run:

* Gaussian noise with sigma = abs_sigma + rel_sigma x (per-op cost);
* extra relative variability when hyperthreading is active
  ("hyperthreading yields more variability in thread timing", §V-A2);
* rare positive spikes (daemon wakeups, interrupts), also duration-scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class JitterModel:
    """Stochastic noise added to each run's measured per-op runtime.

    Attributes:
        rel_sigma: Relative std-dev (fraction of the per-op cost).
        abs_sigma_ns: Additive std-dev from timer granularity.
        ht_rel_sigma: Extra relative std-dev when SMT siblings share cores.
        spike_prob: Probability that a run is hit by an OS activity spike.
        spike_rel: Magnitude of a spike as a fraction of the per-op cost.
        spike_abs_ns: Additive floor of a spike's magnitude.
    """

    rel_sigma: float = 0.01
    abs_sigma_ns: float = 1.0
    ht_rel_sigma: float = 0.008
    spike_prob: float = 0.02
    spike_rel: float = 0.1
    spike_abs_ns: float = 2.0

    def sample_run_noise(self, rng: np.random.Generator, hyperthreaded: bool,
                         base_cost_ns: float) -> float:
        """Noise (ns, may be negative) on one run's per-op runtime.

        Args:
            rng: Noise stream for this run.
            hyperthreaded: Whether any core runs two of the threads.
            base_cost_ns: Deterministic per-op cost being perturbed.
        """
        rel = self.rel_sigma + (self.ht_rel_sigma if hyperthreaded else 0.0)
        sigma = self.abs_sigma_ns + rel * max(base_cost_ns, 0.0)
        noise = float(rng.normal(0.0, sigma))
        if rng.random() < self.spike_prob:
            noise += float(rng.exponential(
                self.spike_abs_ns + self.spike_rel * max(base_cost_ns, 0.0)))
        return noise

    def sample_run_noise_batch(self, rng: np.random.Generator,
                               hyperthreaded: bool,
                               base_costs_ns: "list[float] | tuple[float, ...]"
                               ) -> list[float]:
        """Noise samples for several runs drawn from one stream.

        Draw-order contract: consumes the stream exactly as ``size``
        sequential :meth:`sample_run_noise` calls would (normal, uniform,
        then a conditional exponential per sample), so a batched engine
        stays bit-identical to the scalar reference path.  The win is the
        hoisted attribute lookups and bound methods, not numpy batching —
        the conditional spike draw forbids reordering the stream.
        """
        rel = self.rel_sigma + (self.ht_rel_sigma if hyperthreaded else 0.0)
        abs_sigma = self.abs_sigma_ns
        spike_prob = self.spike_prob
        spike_rel = self.spike_rel
        spike_abs = self.spike_abs_ns
        normal = rng.normal
        uniform = rng.random
        exponential = rng.exponential
        out: list[float] = []
        for base_cost_ns in base_costs_ns:
            base = base_cost_ns if base_cost_ns > 0.0 else 0.0
            noise = float(normal(0.0, abs_sigma + rel * base))
            if uniform() < spike_prob:
                noise += float(exponential(spike_abs + spike_rel * base))
            out.append(noise)
        return out

    def make_sampler(self, hyperthreaded: bool,
                     base_costs_ns: "tuple[float, ...] | list[float]"):
        """Compile a per-attempt noise sampler for fixed base costs.

        The engine's fast path samples the same (hyperthreaded, base
        costs) configuration ``n_runs x attempts`` times per sweep point;
        this precomputes each body's sigma and spike scale once and
        returns a closure ``sample(rng) -> tuple[float, ...]`` holding
        only the draws.  Stream consumption is identical to sequential
        :meth:`sample_run_noise` calls.

        Compiled samplers are memoized per (hyperthreaded, base costs):
        claims re-measure the sweep's points, so the same configurations
        recur within a campaign.
        """
        cache = self.__dict__.get("_sampler_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sampler_cache", cache)
        key = (hyperthreaded, tuple(base_costs_ns))
        cached = cache.get(key)
        if cached is not None:
            return cached
        rel = self.rel_sigma + (self.ht_rel_sigma if hyperthreaded else 0.0)
        spike_prob = self.spike_prob
        params = []
        for base_cost_ns in base_costs_ns:
            base = base_cost_ns if base_cost_ns > 0.0 else 0.0
            params.append((self.abs_sigma_ns + rel * base,
                           self.spike_abs_ns + self.spike_rel * base))
        if len(params) == 2:  # the engine's baseline/test pair
            (sigma_b, spike_b), (sigma_t, spike_t) = params

            def sample_pair(rng: np.random.Generator
                            ) -> tuple[float, float]:
                noise_b = float(rng.normal(0.0, sigma_b))
                if rng.random() < spike_prob:
                    noise_b += float(rng.exponential(spike_b))
                noise_t = float(rng.normal(0.0, sigma_t))
                if rng.random() < spike_prob:
                    noise_t += float(rng.exponential(spike_t))
                return noise_b, noise_t

            def bind_pair(rng: np.random.Generator):
                # Bind the stream's methods once: the engine's pooled
                # generator is one object reseeded per run, so the bound
                # methods stay valid across a whole sweep point.
                normal = rng.normal
                uniform = rng.random
                exponential = rng.exponential

                def sample() -> tuple[float, float]:
                    noise_b = float(normal(0.0, sigma_b))
                    if uniform() < spike_prob:
                        noise_b += float(exponential(spike_b))
                    noise_t = float(normal(0.0, sigma_t))
                    if uniform() < spike_prob:
                        noise_t += float(exponential(spike_t))
                    return noise_b, noise_t

                return sample

            sample_pair.bind = bind_pair  # type: ignore[attr-defined]
            cache[key] = sample_pair
            return sample_pair

        def sample(rng: np.random.Generator) -> tuple[float, ...]:
            out = []
            for sigma, spike in params:
                noise = float(rng.normal(0.0, sigma))
                if rng.random() < spike_prob:
                    noise += float(rng.exponential(spike))
                out.append(noise)
            return tuple(out)

        cache[key] = sample
        return sample

    @property
    def is_silent(self) -> bool:
        """True when every sample is exactly zero (zero-jitter configs)."""
        return (self.rel_sigma == 0.0 and self.abs_sigma_ns == 0.0
                and self.ht_rel_sigma == 0.0 and self.spike_prob == 0.0)

    def storm(self, factor: float) -> "JitterModel":
        """A copy amplified for a daemon-wakeup storm.

        Used by the fault-injection layer (``jitter_storm`` on a
        :class:`repro.faults.scenario.FaultScenario`): spikes become both
        more frequent and larger, modelling sustained OS activity beyond
        the healthy machine's independent per-run spike term.  The
        Gaussian terms are left alone — a storm is bursty, not white.
        """
        return replace(
            self,
            spike_prob=min(self.spike_prob * factor, 0.9),
            spike_rel=self.spike_rel * factor,
            spike_abs_ns=self.spike_abs_ns * factor,
        )

    def scaled(self, factor: float) -> "JitterModel":
        """A copy with all magnitudes scaled (used by ablation benches)."""
        return replace(
            self,
            rel_sigma=self.rel_sigma * factor,
            abs_sigma_ns=self.abs_sigma_ns * factor,
            ht_rel_sigma=self.ht_rel_sigma * factor,
            spike_rel=self.spike_rel * factor,
            spike_abs_ns=self.spike_abs_ns * factor,
        )
