"""OS-jitter model for CPU timing.

Section IV reports a typical standard deviation of ~7.8 ns per primitive
runtime on System 3's CPU and cites Vicente & Matias' study of Linux OS
jitter to explain occasional faulty measurements where the test function
appears *faster* than the baseline.  Fig. 4a additionally shows that the
AMD part is visibly noisier than the Intel parts.

Jitter on a timed loop is mostly *proportional* to its duration (timer
interrupts and daemon wakeups steal a slice of whatever runs), with a small
additive component from timer resolution.  The model therefore draws, per
timed run:

* Gaussian noise with sigma = abs_sigma + rel_sigma x (per-op cost);
* extra relative variability when hyperthreading is active
  ("hyperthreading yields more variability in thread timing", §V-A2);
* rare positive spikes (daemon wakeups, interrupts), also duration-scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class JitterModel:
    """Stochastic noise added to each run's measured per-op runtime.

    Attributes:
        rel_sigma: Relative std-dev (fraction of the per-op cost).
        abs_sigma_ns: Additive std-dev from timer granularity.
        ht_rel_sigma: Extra relative std-dev when SMT siblings share cores.
        spike_prob: Probability that a run is hit by an OS activity spike.
        spike_rel: Magnitude of a spike as a fraction of the per-op cost.
        spike_abs_ns: Additive floor of a spike's magnitude.
    """

    rel_sigma: float = 0.01
    abs_sigma_ns: float = 1.0
    ht_rel_sigma: float = 0.008
    spike_prob: float = 0.02
    spike_rel: float = 0.1
    spike_abs_ns: float = 2.0

    def sample_run_noise(self, rng: np.random.Generator, hyperthreaded: bool,
                         base_cost_ns: float) -> float:
        """Noise (ns, may be negative) on one run's per-op runtime.

        Args:
            rng: Noise stream for this run.
            hyperthreaded: Whether any core runs two of the threads.
            base_cost_ns: Deterministic per-op cost being perturbed.
        """
        rel = self.rel_sigma + (self.ht_rel_sigma if hyperthreaded else 0.0)
        sigma = self.abs_sigma_ns + rel * max(base_cost_ns, 0.0)
        noise = float(rng.normal(0.0, sigma))
        if rng.random() < self.spike_prob:
            noise += float(rng.exponential(
                self.spike_abs_ns + self.spike_rel * max(base_cost_ns, 0.0)))
        return noise

    def storm(self, factor: float) -> "JitterModel":
        """A copy amplified for a daemon-wakeup storm.

        Used by the fault-injection layer (``jitter_storm`` on a
        :class:`repro.faults.scenario.FaultScenario`): spikes become both
        more frequent and larger, modelling sustained OS activity beyond
        the healthy machine's independent per-run spike term.  The
        Gaussian terms are left alone — a storm is bursty, not white.
        """
        return replace(
            self,
            spike_prob=min(self.spike_prob * factor, 0.9),
            spike_rel=self.spike_rel * factor,
            spike_abs_ns=self.spike_abs_ns * factor,
        )

    def scaled(self, factor: float) -> "JitterModel":
        """A copy with all magnitudes scaled (used by ablation benches)."""
        return replace(
            self,
            rel_sigma=self.rel_sigma * factor,
            abs_sigma_ns=self.abs_sigma_ns * factor,
            ht_rel_sigma=self.ht_rel_sigma * factor,
            spike_rel=self.spike_rel * factor,
            spike_abs_ns=self.spike_abs_ns * factor,
        )
