"""The three CPUs of Table I as ready-made machines.

System 1: Intel Xeon E5-2687 v3 (2 sockets x 10 cores x 2 SMT, 2 NUMA).
System 2: Intel Xeon Gold 6226R (2 sockets x 16 cores x 2 SMT, 2 NUMA).
System 3: AMD Ryzen Threadripper 2950X (1 socket x 16 cores x 2 SMT,
2 NUMA) — the paper's default system for figures, and the one with the
noisy atomic-write measurements (Fig. 4a), which we model with a larger
jitter sigma.
"""

from __future__ import annotations

from repro.cpu.costs import CpuCostParams
from repro.cpu.jitter import JitterModel
from repro.cpu.machine import CpuMachine
from repro.cpu.topology import CpuTopology


def _system1_cpu() -> CpuMachine:
    topology = CpuTopology(
        name="Intel Xeon E5-2687 v3",
        sockets=2,
        cores_per_socket=10,
        threads_per_core=2,
        numa_nodes=2,
        base_clock_ghz=3.10,
    )
    params = CpuCostParams(
        int_alu_ns=7.0,
        fp_alu_ns=14.0,
        line_transfer_ns=18.0,
        barrier_base_ns=1000.0,
        barrier_per_core_ns=170.0,
    )
    return CpuMachine(topology, params,
                      JitterModel(rel_sigma=0.008, abs_sigma_ns=0.8))


def _system2_cpu() -> CpuMachine:
    topology = CpuTopology(
        name="Intel Xeon Gold 6226R",
        sockets=2,
        cores_per_socket=16,
        threads_per_core=2,
        numa_nodes=2,
        base_clock_ghz=2.80,
    )
    params = CpuCostParams(
        int_alu_ns=6.5,
        fp_alu_ns=13.0,
        line_transfer_ns=16.0,
        barrier_base_ns=900.0,
        barrier_per_core_ns=160.0,
    )
    # The paper shows System 2's flush results because they are the least
    # noisy of the three systems.
    return CpuMachine(topology, params,
                      JitterModel(rel_sigma=0.006, abs_sigma_ns=0.7))


def _system3_cpu() -> CpuMachine:
    topology = CpuTopology(
        name="AMD Ryzen Threadripper 2950X",
        sockets=1,
        cores_per_socket=16,
        threads_per_core=2,
        numa_nodes=2,
        base_clock_ghz=3.50,
    )
    # Default cost params are calibrated to this part.  Fig. 4a attributes
    # notable jitter to "architectural qualities of the AMD chip": larger
    # sigma and more frequent spikes.
    return CpuMachine(
        topology,
        CpuCostParams(),
        JitterModel(rel_sigma=0.04, abs_sigma_ns=0.5, ht_rel_sigma=0.015,
                    spike_prob=0.08, spike_rel=0.12, spike_abs_ns=2.0),
    )


SYSTEM1_CPU = _system1_cpu()
SYSTEM2_CPU = _system2_cpu()
SYSTEM3_CPU = _system3_cpu()

#: Presets by the paper's system number.
CPU_PRESETS: dict[int, CpuMachine] = {
    1: SYSTEM1_CPU,
    2: SYSTEM2_CPU,
    3: SYSTEM3_CPU,
}


def cpu_preset(system: int) -> CpuMachine:
    """CPU of paper System 1, 2, or 3.

    Raises:
        KeyError: for system numbers other than 1-3.
    """
    if system not in CPU_PRESETS:
        raise KeyError(f"no System {system}; the paper tests systems 1-3")
    return CPU_PRESETS[system]
