"""CPU topology: sockets, cores, hardware threads, NUMA nodes.

Table I specifies each test CPU by sockets x cores-per-socket x
threads-per-core plus NUMA node count and base clock.  The topology answers
the placement questions the cost models ask: how many physical cores exist,
which hardware threads are SMT siblings, and which NUMA node a core
belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class CorePlace:
    """A hardware-thread slot: (socket, core, smt) coordinates.

    Attributes:
        socket: Socket index.
        core: Core index within the socket.
        smt: Hardware-thread index within the core (0 = primary).
    """

    socket: int
    core: int
    smt: int

    @property
    def core_key(self) -> tuple[int, int]:
        """Identity of the physical core (what coherence cares about)."""
        return (self.socket, self.core)


@dataclass(frozen=True)
class CpuTopology:
    """Static description of a multicore CPU.

    Attributes:
        name: Marketing name (e.g. "AMD Ryzen Threadripper 2950X").
        sockets: Number of sockets.
        cores_per_socket: Physical cores per socket.
        threads_per_core: SMT width (2 on all systems in Table I).
        numa_nodes: Number of NUMA nodes.
        base_clock_ghz: Base clock frequency in GHz.
        line_bytes: L1 cache-line size (64 on all tested systems).
    """

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    numa_nodes: int
    base_clock_ghz: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for field_name in ("sockets", "cores_per_socket", "threads_per_core",
                           "numa_nodes"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(
                    f"{field_name} must be >= 1, got "
                    f"{getattr(self, field_name)}")
        if self.base_clock_ghz <= 0:
            raise ConfigurationError(
                f"base clock must be positive, got {self.base_clock_ghz}")
        if self.numa_nodes % self.sockets and self.sockets % self.numa_nodes:
            raise ConfigurationError(
                f"NUMA nodes ({self.numa_nodes}) must tile sockets "
                f"({self.sockets}) or vice versa")

    @property
    def physical_cores(self) -> int:
        """Total physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads (the maximum OpenMP thread count tested)."""
        return self.physical_cores * self.threads_per_core

    def all_places(self) -> list[CorePlace]:
        """Every hardware-thread slot in (socket, core, smt) order."""
        return [CorePlace(s, c, t)
                for s in range(self.sockets)
                for c in range(self.cores_per_socket)
                for t in range(self.threads_per_core)]

    def numa_node_of(self, place: CorePlace) -> int:
        """NUMA node containing a hardware-thread slot.

        NUMA nodes are split evenly: across sockets when there are at least
        as many nodes as sockets (each socket holds ``numa_nodes/sockets``
        nodes of consecutive cores, as on the Threadripper), or grouping
        whole sockets otherwise.
        """
        if place.socket >= self.sockets or place.core >= self.cores_per_socket:
            raise ConfigurationError(f"place {place} outside topology")
        if self.numa_nodes >= self.sockets:
            nodes_per_socket = self.numa_nodes // self.sockets
            cores_per_node = -(-self.cores_per_socket // nodes_per_socket)
            return (place.socket * nodes_per_socket
                    + place.core // cores_per_node)
        sockets_per_node = self.sockets // self.numa_nodes
        return place.socket // sockets_per_node

    def describe(self) -> dict[str, object]:
        """Table I row for this CPU."""
        return {
            "name": self.name,
            "base_clock_ghz": self.base_clock_ghz,
            "sockets": self.sockets,
            "cores_per_socket": self.cores_per_socket,
            "threads_per_core": self.threads_per_core,
            "numa_nodes": self.numa_nodes,
            "physical_cores": self.physical_cores,
            "hardware_threads": self.hardware_threads,
        }
