"""Thread-to-core placement under OpenMP affinity policies.

The paper varies ``OMP_PROC_BIND`` between "spread" and "close" for some
experiments and leaves placement to the OS for the rest.  Placement matters
to the cost models in two ways: SMT siblings share an L1 (so they never
falsely share lines with each other), and contention serializes at core
granularity.
"""

from __future__ import annotations

import enum
from functools import lru_cache

from repro.common.errors import ConfigurationError
from repro.cpu.topology import CorePlace, CpuTopology


class Affinity(enum.Enum):
    """OpenMP thread-affinity policy (places = cores, as the paper's
    dashed hyperthreading line implies: SMT slots are used only once every
    core holds a thread, under every policy).

    SPREAD distributes threads as widely as possible (alternating sockets).
    CLOSE packs threads onto consecutive cores of one socket before moving
    to the next.  DEFAULT models an unpinned Linux scheduler, which in
    practice fills one socket's idle cores first — the same order as CLOSE.
    """

    SPREAD = "spread"
    CLOSE = "close"
    DEFAULT = "default"


def place_threads(topology: CpuTopology, n_threads: int,
                  affinity: Affinity = Affinity.DEFAULT
                  ) -> dict[int, CorePlace]:
    """Assign ``n_threads`` OpenMP threads to hardware-thread slots.

    Args:
        topology: The CPU to place onto.
        n_threads: Number of threads (1 .. hardware_threads).
        affinity: Placement policy.

    Returns:
        Mapping from thread id (0-based, ids are assigned to consecutive
        loop indices / array elements) to :class:`CorePlace`.

    Raises:
        ConfigurationError: if more threads than hardware threads are asked
            for (the paper never oversubscribes).
    """
    if n_threads < 1:
        raise ConfigurationError(f"need at least 1 thread, got {n_threads}")
    if n_threads > topology.hardware_threads:
        raise ConfigurationError(
            f"{n_threads} threads exceed the {topology.hardware_threads} "
            f"hardware threads of {topology.name}")

    if affinity is Affinity.CLOSE:
        order = _close_order(topology)
    elif affinity is Affinity.SPREAD:
        order = _spread_order(topology)
    else:
        order = _default_order(topology)
    return {tid: order[tid] for tid in range(n_threads)}


@lru_cache(maxsize=64)
def _close_order(topology: CpuTopology) -> list[CorePlace]:
    """Consecutive cores of socket 0, then socket 1, ...; SMT slots only
    once every core holds one thread.  Cached per (frozen) topology:
    sweeps re-derive the same order at every point."""
    order: list[CorePlace] = []
    for smt in range(topology.threads_per_core):
        for socket in range(topology.sockets):
            for core in range(topology.cores_per_socket):
                order.append(CorePlace(socket, core, smt))
    return order


@lru_cache(maxsize=64)
def _spread_order(topology: CpuTopology) -> list[CorePlace]:
    """Round-robin over sockets, then cores; SMT slots only once all cores
    hold one thread.  Cached per (frozen) topology."""
    order: list[CorePlace] = []
    for smt in range(topology.threads_per_core):
        for core in range(topology.cores_per_socket):
            for socket in range(topology.sockets):
                order.append(CorePlace(socket, core, smt))
    return order


def _default_order(topology: CpuTopology) -> list[CorePlace]:
    """Unpinned-scheduler model: fill primary SMT slots of socket 0's cores,
    then socket 1's, then the secondary SMT slots (same as CLOSE)."""
    return _close_order(topology)


def core_placement(placement: dict[int, CorePlace]
                   ) -> dict[int, tuple[int, int]]:
    """Project a placement down to physical-core keys.

    This is the mapping the :class:`repro.mem.coherence.CoherenceModel`
    consumes: threads mapping to the same core key share an L1.
    """
    return {tid: place.core_key for tid, place in placement.items()}


def uses_hyperthreading(placement: dict[int, CorePlace]) -> bool:
    """True when at least two threads share a physical core."""
    cores = [place.core_key for place in placement.values()]
    return len(set(cores)) < len(cores)
