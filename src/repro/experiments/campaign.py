"""The resilient campaign runner: keep-going, checkpoint, resume.

The artifact's full ``launch.py all`` campaign runs for ~72 hours; ours
is faster but faces the same failure surface once faults are injected:
one bad experiment must not kill the campaign, a kill signal must not
corrupt what was already written, and a rerun must not repeat finished
work.  Hunold & Carpen-Amarie's "MPI Benchmarking Revisited" makes the
case that benchmark campaigns must be reproducible *and* resumable; this
module is that layer.

* :func:`run_campaign` executes a list of experiment ids, optionally
  under a fault scenario, recording a structured
  :class:`ExperimentOutcome` per id.  With ``keep_going`` a failing
  experiment is logged and skipped instead of aborting.
* :class:`CampaignCheckpoint` is an atomic JSON manifest
  (:func:`repro.core.results_io.atomic_write_text`) updated after every
  experiment; resuming a campaign skips ids the manifest marks done.
  The manifest carries a fingerprint (fault scenario + protocol seed) so
  a checkpoint cannot silently resume a *different* campaign.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.common.errors import (
    CampaignError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    SimulationError,
)
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.core.results_io import atomic_write_text
from repro.experiments.registry import EXPERIMENTS, ExperimentDef
from repro.faults.scenario import FaultScenario, use_faults

#: Exit codes of the ``syncperf`` CLI, by failure category.
EXIT_OK = 0
EXIT_CLAIMS = 1
EXIT_CONFIG = 2
EXIT_MEASUREMENT = 3
EXIT_SIMULATION = 4
EXIT_OTHER = 5


def error_exit_code(exc: BaseException) -> int:
    """Map an exception to the CLI's per-category exit code."""
    if isinstance(exc, ConfigurationError):
        return EXIT_CONFIG
    if isinstance(exc, MeasurementError):
        return EXIT_MEASUREMENT
    if isinstance(exc, SimulationError):
        return EXIT_SIMULATION
    return EXIT_OTHER


def error_name_exit_code(error_name: str) -> int:
    """Exit code for a recorded failure's exception class name."""
    return {
        "ConfigurationError": EXIT_CONFIG,
        "MeasurementError": EXIT_MEASUREMENT,
        "SimulationError": EXIT_SIMULATION,
        "DataRaceError": EXIT_SIMULATION,
    }.get(error_name, EXIT_OTHER)


@dataclass(frozen=True)
class ExperimentOutcome:
    """What happened to one experiment of a campaign.

    Attributes:
        exp_id: The experiment id.
        status: ``"done"``, ``"failed"``, or ``"skipped"`` (resume hit).
        wall_seconds: Execution time (0 for skipped).
        claims_passed: Trend checks that passed (done only).
        claims_total: Trend checks evaluated (done only).
        error: Exception class name (failed only).
        message: One-line diagnostic (failed only).
    """

    exp_id: str
    status: str
    wall_seconds: float = 0.0
    claims_passed: int = 0
    claims_total: int = 0
    error: str = ""
    message: str = ""

    def to_json(self) -> dict:
        """JSON-serializable record of this outcome."""
        record = {"experiment": self.exp_id, "status": self.status,
                  "wall_seconds": round(self.wall_seconds, 3)}
        if self.status == "done":
            record["claims_passed"] = self.claims_passed
            record["claims_total"] = self.claims_total
        if self.status == "failed":
            record["error"] = self.error
            record["message"] = self.message
        return record


class CampaignCheckpoint:
    """Atomic JSON manifest of a campaign's progress.

    Args:
        path: Manifest location (written with ``os.replace``, so a kill
            at any instant leaves either the previous or the next
            manifest, never a torn one).
        fingerprint: Identity of the campaign configuration (fault
            scenario, seed).  A resumed campaign must match it.
    """

    VERSION = 1

    def __init__(self, path: str | Path,
                 fingerprint: dict[str, object] | None = None) -> None:
        self.path = Path(path)
        self.state: dict = {
            "version": self.VERSION,
            "fingerprint": fingerprint or {},
            "experiments": {},
        }

    @classmethod
    def open(cls, path: str | Path,
             fingerprint: dict[str, object] | None = None,
             resume: bool = False) -> "CampaignCheckpoint":
        """Create a checkpoint, loading the manifest when resuming.

        Raises:
            CampaignError: Corrupt manifest, wrong version, or a
                fingerprint mismatch (resuming a different campaign).
        """
        checkpoint = cls(path, fingerprint)
        if not resume:
            return checkpoint
        if not checkpoint.path.exists():
            return checkpoint  # nothing to resume yet: fresh campaign
        try:
            loaded = json.loads(checkpoint.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} is unreadable: "
                f"{exc}") from exc
        if not isinstance(loaded, dict) or \
                loaded.get("version") != cls.VERSION:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} has unsupported "
                f"version {loaded.get('version')!r} "
                f"(expected {cls.VERSION})")
        recorded = loaded.get("fingerprint", {})
        if fingerprint is not None and recorded != fingerprint:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} belongs to a "
                f"different campaign (recorded {recorded!r}, requested "
                f"{fingerprint!r}); delete it or rerun with the same "
                f"--faults/--config")
        checkpoint.state = loaded
        checkpoint.state.setdefault("experiments", {})
        return checkpoint

    def is_done(self, exp_id: str) -> bool:
        """Whether the manifest records a completed run of ``exp_id``."""
        record = self.state["experiments"].get(exp_id)
        return bool(record) and record.get("status") == "done"

    def record(self, outcome: ExperimentOutcome) -> None:
        """Record one outcome and persist the manifest atomically."""
        self.state["experiments"][outcome.exp_id] = outcome.to_json()
        self.state["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        self.save()

    def save(self) -> None:
        """Persist the manifest (atomic replace)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path,
                          json.dumps(self.state, indent=2) + "\n")


def campaign_fingerprint(scenario: FaultScenario | None,
                         protocol: MeasurementProtocol | None
                         ) -> dict[str, object]:
    """Identity of a campaign configuration for checkpoint validation.

    Targets are deliberately excluded: resuming ``syncperf all`` after
    narrowing to the remaining ids must still match.
    """
    return {
        "faults": scenario.describe() if scenario else None,
        "seed": (protocol or MeasurementProtocol()).seed,
    }


#: Presentation callback: (exp_id, definition, sweeps, checks, wall_s).
ResultHook = Callable[
    [str, ExperimentDef, list[SweepResult], list, float], None]


def run_campaign(ids: list[str], *,
                 protocol: MeasurementProtocol | None = None,
                 keep_going: bool = False,
                 scenario: FaultScenario | None = None,
                 checkpoint: CampaignCheckpoint | None = None,
                 experiments: dict[str, ExperimentDef] | None = None,
                 on_result: ResultHook | None = None,
                 log: Callable[[str], None] = print
                 ) -> list[ExperimentOutcome]:
    """Run a sequence of experiments resiliently.

    Args:
        ids: Experiment ids, in execution order.
        protocol: Measurement protocol override (None = paper default).
        keep_going: Record failures and continue instead of aborting.
            Library errors (:class:`ReproError`) are always recorded;
            unexpected exceptions are swallowed only in this mode.
        scenario: Fault scenario to activate for the whole campaign.
        checkpoint: Manifest to consult (skip completed ids) and update
            after every experiment.
        experiments: Registry override for tests (default: the global
            :data:`~repro.experiments.registry.EXPERIMENTS`).
        on_result: Presentation hook called for each completed
            experiment with (exp_id, definition, sweeps, checks, wall).
        log: Sink for one-line progress/diagnostic messages.

    Returns:
        One :class:`ExperimentOutcome` per id, in order.

    Raises:
        ReproError: The first experiment failure, when ``keep_going`` is
            off (after recording it in the checkpoint).
    """
    registry = experiments if experiments is not None else EXPERIMENTS
    outcomes: list[ExperimentOutcome] = []
    with use_faults(scenario):
        for exp_id in ids:
            if checkpoint is not None and checkpoint.is_done(exp_id):
                log(f"skipping {exp_id}: already completed "
                    f"(checkpoint {checkpoint.path})")
                outcomes.append(
                    ExperimentOutcome(exp_id=exp_id, status="skipped"))
                continue
            definition = registry[exp_id]
            start = time.time()
            try:
                payload = definition.run(protocol)
                checks = definition.claims(payload)
                sweeps = definition.sweeps(payload)
            except Exception as exc:
                wall = time.time() - start
                outcome = ExperimentOutcome(
                    exp_id=exp_id, status="failed", wall_seconds=wall,
                    error=type(exc).__name__, message=str(exc))
                outcomes.append(outcome)
                if checkpoint is not None:
                    checkpoint.record(outcome)
                if not keep_going:
                    raise
                if not isinstance(exc, (ReproError, KeyError, ValueError,
                                        ZeroDivisionError)):
                    raise  # keep-going shields benchmark errors only
                log(f"FAILED {exp_id}: {type(exc).__name__}: {exc}")
                continue
            wall = time.time() - start
            outcome = ExperimentOutcome(
                exp_id=exp_id, status="done", wall_seconds=wall,
                claims_passed=sum(c.passed for c in checks),
                claims_total=len(checks))
            if on_result is not None:
                on_result(exp_id, definition, sweeps, checks, wall)
            outcomes.append(outcome)
            if checkpoint is not None:
                checkpoint.record(outcome)
    return outcomes


def write_failure_summary(outcomes: list[ExperimentOutcome],
                          path: str | Path) -> Path:
    """Write a campaign's failure summary as JSON (atomic).

    Returns:
        The path written.
    """
    failed = [o.to_json() for o in outcomes if o.status == "failed"]
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "total": len(outcomes),
        "done": sum(o.status == "done" for o in outcomes),
        "skipped": sum(o.status == "skipped" for o in outcomes),
        "failed": failed,
    }
    return atomic_write_text(Path(path),
                             json.dumps(summary, indent=2) + "\n")
