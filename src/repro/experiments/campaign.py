"""The resilient campaign runner: keep-going, checkpoint, resume.

The artifact's full ``launch.py all`` campaign runs for ~72 hours; ours
is faster but faces the same failure surface once faults are injected:
one bad experiment must not kill the campaign, a kill signal must not
corrupt what was already written, and a rerun must not repeat finished
work.  Hunold & Carpen-Amarie's "MPI Benchmarking Revisited" makes the
case that benchmark campaigns must be reproducible *and* resumable; this
module is that layer.

* :func:`run_campaign` executes a list of experiment ids, optionally
  under a fault scenario, recording a structured
  :class:`ExperimentOutcome` per id.  With ``keep_going`` a failing
  experiment is logged and skipped instead of aborting.
* :class:`CampaignCheckpoint` is an atomic JSON manifest
  (:func:`repro.core.results_io.atomic_write_text`) updated after every
  experiment; resuming a campaign skips ids the manifest marks done.
  The manifest carries a fingerprint (fault scenario + protocol seed) so
  a checkpoint cannot silently resume a *different* campaign.
"""

from __future__ import annotations

import concurrent.futures
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.common.errors import CampaignError, ConfigurationError
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.core.results_io import atomic_write_text
from repro.experiments.registry import EXPERIMENTS, ExperimentDef
from repro.faults.scenario import FaultScenario, use_faults
from repro.obs import event as obs_event
from repro.obs import span as obs_span
from repro.obs.metrics import counter as _counter

# The failure-classification layer is shared with the measurement
# daemon (docs/service.md); re-exported here because this module is
# where the CLI historically found it.
from repro.service.policy import (  # noqa: F401  (re-exports)
    BENIGN_EXCEPTIONS,
    EXIT_CLAIMS,
    EXIT_CONFIG,
    EXIT_MEASUREMENT,
    EXIT_OK,
    EXIT_OTHER,
    EXIT_SIMULATION,
    EXIT_UNAVAILABLE,
    error_exit_code,
    error_name_exit_code,
    rebuild_exception,
)

# Observability counters (docs/observability.md): per-outcome campaign
# tallies and checkpoint manifest writes.
_C_EXP_DONE = _counter("campaign.experiments_done")
_C_EXP_FAILED = _counter("campaign.experiments_failed")
_C_EXP_SKIPPED = _counter("campaign.experiments_skipped")
_C_CHECKPOINT_WRITES = _counter("campaign.checkpoint_writes")
_C_JOURNAL_RECOVERED = _counter("campaign.journal_recovered")
_C_JOURNAL_CORRUPT = _counter("campaign.journal_corrupt_lines")


@dataclass(frozen=True)
class ExperimentOutcome:
    """What happened to one experiment of a campaign.

    Attributes:
        exp_id: The experiment id.
        status: ``"done"``, ``"failed"``, or ``"skipped"`` (resume hit).
        wall_seconds: Execution time (0 for skipped).
        claims_passed: Trend checks that passed (done only).
        claims_total: Trend checks evaluated (done only).
        error: Exception class name (failed only).
        message: One-line diagnostic (failed only).
    """

    exp_id: str
    status: str
    wall_seconds: float = 0.0
    claims_passed: int = 0
    claims_total: int = 0
    error: str = ""
    message: str = ""

    def to_json(self) -> dict:
        """JSON-serializable record of this outcome."""
        record = {"experiment": self.exp_id, "status": self.status,
                  "wall_seconds": round(self.wall_seconds, 3)}
        if self.status == "done":
            record["claims_passed"] = self.claims_passed
            record["claims_total"] = self.claims_total
        if self.status == "failed":
            record["error"] = self.error
            record["message"] = self.message
        return record


class CampaignCheckpoint:
    """Atomic JSON manifest of a campaign's progress.

    Persistence is belt and braces.  Every :meth:`record` first appends
    the outcome to a write-ahead journal (``<path>.journal``, one JSON
    line, flushed and fsynced) and then rewrites the manifest with a
    durable atomic replace (fsync before rename).  A kill at any
    instant therefore leaves one of three recoverable states: journal
    and manifest agree; the journal is one record ahead (kill between
    journal append and manifest write — :meth:`open` replays it); or
    the journal's trailing line is torn (kill mid-append — the line is
    skipped and its experiment simply re-queues on resume).  Corruption
    never aborts a resume.

    Args:
        path: Manifest location (written with ``os.replace``, so a kill
            at any instant leaves either the previous or the next
            manifest, never a torn one).
        fingerprint: Identity of the campaign configuration (fault
            scenario, seed).  A resumed campaign must match it.
    """

    VERSION = 1

    def __init__(self, path: str | Path,
                 fingerprint: dict[str, object] | None = None) -> None:
        self.path = Path(path)
        self.journal_path = Path(str(self.path) + ".journal")
        #: Journal lines skipped on the last resume (torn/corrupt).
        self.corrupt_journal_lines = 0
        #: Journal records merged on the last resume (manifest was
        #: behind the journal when the previous run was killed).
        self.recovered_records = 0
        self.state: dict = {
            "version": self.VERSION,
            "fingerprint": fingerprint or {},
            "experiments": {},
        }

    @classmethod
    def open(cls, path: str | Path,
             fingerprint: dict[str, object] | None = None,
             resume: bool = False) -> "CampaignCheckpoint":
        """Create a checkpoint, loading the manifest when resuming.

        Raises:
            CampaignError: Corrupt manifest, wrong version, or a
                fingerprint mismatch (resuming a different campaign).
        """
        checkpoint = cls(path, fingerprint)
        if not resume:
            return checkpoint
        if not checkpoint.path.exists():
            return checkpoint  # nothing to resume yet: fresh campaign
        try:
            loaded = json.loads(checkpoint.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} is unreadable: "
                f"{exc}") from exc
        if not isinstance(loaded, dict) or \
                loaded.get("version") != cls.VERSION:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} has unsupported "
                f"version {loaded.get('version')!r} "
                f"(expected {cls.VERSION})")
        recorded = loaded.get("fingerprint", {})
        if fingerprint is not None and recorded != fingerprint:
            raise CampaignError(
                f"checkpoint manifest {checkpoint.path} belongs to a "
                f"different campaign (recorded {recorded!r}, requested "
                f"{fingerprint!r}); delete it or rerun with the same "
                f"--faults/--config")
        checkpoint.state = loaded
        checkpoint.state.setdefault("experiments", {})
        checkpoint._replay_journal()
        return checkpoint

    def _replay_journal(self) -> None:
        """Merge journal records the manifest missed (kill recovery).

        A truncated or otherwise corrupt line — the signature of a kill
        mid-append — is *skipped*, not fatal: the experiment it would
        have recorded stays absent from the manifest and therefore
        re-queues on resume.  Records carrying a different fingerprint
        (a stale journal from an earlier campaign at the same path) are
        ignored the same way.
        """
        try:
            text = self.journal_path.read_text()
        except OSError:
            return
        fingerprint = self.state.get("fingerprint", {})
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                exp_id = record["experiment"]
                status = record["status"]
            except (json.JSONDecodeError, TypeError, KeyError):
                self.corrupt_journal_lines += 1
                _C_JOURNAL_CORRUPT.add(1)
                obs_event("campaign.journal_corrupt_line",
                          path=str(self.journal_path))
                continue
            if record.get("fingerprint", fingerprint) != fingerprint:
                continue
            record.pop("fingerprint", None)
            known = self.state["experiments"].get(exp_id)
            if known != record:
                self.state["experiments"][exp_id] = record
                self.recovered_records += 1
                _C_JOURNAL_RECOVERED.add(1)
                obs_event("campaign.journal_recovered",
                          experiment=exp_id, status=status)

    def is_done(self, exp_id: str) -> bool:
        """Whether the manifest records a completed run of ``exp_id``."""
        record = self.state["experiments"].get(exp_id)
        return bool(record) and record.get("status") == "done"

    def record(self, outcome: ExperimentOutcome) -> None:
        """Record one outcome and persist it (journal, then manifest)."""
        self.state["experiments"][outcome.exp_id] = outcome.to_json()
        self.state["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        self._journal_append(outcome)
        self.save()

    def _journal_append(self, outcome: ExperimentOutcome) -> None:
        """Append one fsynced write-ahead record for ``outcome``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(outcome.to_json(),
                      fingerprint=self.state.get("fingerprint", {}))
        with open(self.journal_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def save(self) -> None:
        """Persist the manifest (durable atomic replace).

        Once the manifest is safely on disk it supersedes the journal,
        which is truncated — the journal only ever holds the records of
        the kill window, not a full history.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path,
                          json.dumps(self.state, indent=2) + "\n",
                          durable=True)
        try:
            if self.journal_path.exists():
                self.journal_path.write_text("")
        except OSError:  # pragma: no cover - journal is advisory
            pass
        _C_CHECKPOINT_WRITES.add(1)
        obs_event("campaign.checkpoint_write", path=str(self.path))


def campaign_fingerprint(scenario: FaultScenario | None,
                         protocol: MeasurementProtocol | None
                         ) -> dict[str, object]:
    """Identity of a campaign configuration for checkpoint validation.

    Targets are deliberately excluded: resuming ``syncperf all`` after
    narrowing to the remaining ids must still match.
    """
    return {
        "faults": scenario.describe() if scenario else None,
        "seed": (protocol or MeasurementProtocol()).seed,
    }


#: Presentation callback: (exp_id, definition, sweeps, checks, wall_s).
ResultHook = Callable[
    [str, ExperimentDef, list[SweepResult], list, float], None]

#: Exception types ``keep_going`` shields (benchmark-level errors); any
#: other exception aborts the campaign even in keep-going mode.  Now
#: defined by the shared policy layer; kept under the historical name.
_BENIGN_EXCEPTIONS = BENIGN_EXCEPTIONS


def _campaign_worker(exp_id: str,
                     protocol: MeasurementProtocol | None,
                     scenario: FaultScenario | None) -> dict:
    """Run one experiment in a worker process (top-level: picklable).

    Looks the experiment up in the process-global registry (the registry
    is built at import, so every start method sees the same table) and
    returns a picklable record — sweeps and checks ride back to the
    parent for presentation; exceptions come back as (name, message)
    so the parent can re-raise deterministically.
    """
    definition = EXPERIMENTS[exp_id]
    start = time.time()
    try:
        with use_faults(scenario):
            payload = definition.run(protocol)
            checks = definition.claims(payload)
            sweeps = definition.sweeps(payload)
    except Exception as exc:
        return {"exp_id": exp_id, "status": "failed",
                "wall": time.time() - start,
                "error": type(exc).__name__, "message": str(exc),
                "benign": isinstance(exc, _BENIGN_EXCEPTIONS)}
    return {"exp_id": exp_id, "status": "done",
            "wall": time.time() - start,
            "sweeps": sweeps, "checks": checks}


#: Reconstruction of a worker-side exception by name, so a ``jobs > 1``
#: campaign aborts with the same exception type (and exit code) a
#: serial one would raise.  The implementation lives in the shared
#: policy layer and round-trips the *whole* taxonomy — unknown names
#: become synthesized :class:`CampaignError` subclasses that keep the
#: original class name instead of collapsing lossily.
_rebuild_exception = rebuild_exception


def run_campaign(ids: list[str], *,
                 protocol: MeasurementProtocol | None = None,
                 keep_going: bool = False,
                 scenario: FaultScenario | None = None,
                 checkpoint: CampaignCheckpoint | None = None,
                 experiments: dict[str, ExperimentDef] | None = None,
                 on_result: ResultHook | None = None,
                 log: Callable[[str], None] = print,
                 jobs: int = 1
                 ) -> list[ExperimentOutcome]:
    """Run a sequence of experiments resiliently.

    Args:
        ids: Experiment ids, in execution order.
        protocol: Measurement protocol override (None = paper default).
        keep_going: Record failures and continue instead of aborting.
            Library errors (:class:`ReproError`) are always recorded;
            unexpected exceptions are swallowed only in this mode.
        scenario: Fault scenario to activate for the whole campaign.
        checkpoint: Manifest to consult (skip completed ids) and update
            after every experiment.
        experiments: Registry override for tests (default: the global
            :data:`~repro.experiments.registry.EXPERIMENTS`).
        on_result: Presentation hook called for each completed
            experiment with (exp_id, definition, sweeps, checks, wall).
        log: Sink for one-line progress/diagnostic messages.
        jobs: Worker processes.  ``1`` (default) runs in-process;
            ``N > 1`` fans experiments out over a process pool.  Every
            RNG stream is label-derived with no global state, so results
            (and ``runtimes.csv`` bytes) are identical to a serial run;
            outcomes, checkpoint records, and ``on_result`` calls are
            emitted in the deterministic id order.

    Returns:
        One :class:`ExperimentOutcome` per id, in order.

    Raises:
        ReproError: The first experiment failure, when ``keep_going`` is
            off (after recording it in the checkpoint).
        ConfigurationError: ``jobs < 1``, or a custom ``experiments``
            registry combined with ``jobs > 1`` (worker processes can
            only see the global registry).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        if experiments is not None:
            raise ConfigurationError(
                "jobs > 1 cannot run a custom experiment registry: "
                "worker processes resolve ids against the global "
                "registry only")
        return _run_campaign_parallel(
            ids, protocol=protocol, keep_going=keep_going,
            scenario=scenario, checkpoint=checkpoint,
            on_result=on_result, log=log, jobs=jobs)
    registry = experiments if experiments is not None else EXPERIMENTS
    outcomes: list[ExperimentOutcome] = []
    with use_faults(scenario):
        for exp_id in ids:
            if checkpoint is not None and checkpoint.is_done(exp_id):
                log(f"skipping {exp_id}: already completed "
                    f"(checkpoint {checkpoint.path})")
                _C_EXP_SKIPPED.add(1)
                obs_event("campaign.resume_skip", experiment=exp_id)
                outcomes.append(
                    ExperimentOutcome(exp_id=exp_id, status="skipped"))
                continue
            definition = registry[exp_id]
            start = time.time()
            try:
                with obs_span("campaign.experiment", experiment=exp_id):
                    payload = definition.run(protocol)
                    checks = definition.claims(payload)
                    sweeps = definition.sweeps(payload)
            except Exception as exc:
                wall = time.time() - start
                _C_EXP_FAILED.add(1)
                obs_event("campaign.experiment_failed", experiment=exp_id,
                          error=type(exc).__name__)
                outcome = ExperimentOutcome(
                    exp_id=exp_id, status="failed", wall_seconds=wall,
                    error=type(exc).__name__, message=str(exc))
                outcomes.append(outcome)
                if checkpoint is not None:
                    checkpoint.record(outcome)
                if not keep_going:
                    raise
                if not isinstance(exc, _BENIGN_EXCEPTIONS):
                    raise  # keep-going shields benchmark errors only
                log(f"FAILED {exp_id}: {type(exc).__name__}: {exc}")
                continue
            wall = time.time() - start
            _C_EXP_DONE.add(1)
            outcome = ExperimentOutcome(
                exp_id=exp_id, status="done", wall_seconds=wall,
                claims_passed=sum(c.passed for c in checks),
                claims_total=len(checks))
            if on_result is not None:
                on_result(exp_id, definition, sweeps, checks, wall)
            outcomes.append(outcome)
            if checkpoint is not None:
                checkpoint.record(outcome)
    return outcomes


def _run_campaign_parallel(ids: list[str], *,
                           protocol: MeasurementProtocol | None,
                           keep_going: bool,
                           scenario: FaultScenario | None,
                           checkpoint: CampaignCheckpoint | None,
                           on_result: ResultHook | None,
                           log: Callable[[str], None],
                           jobs: int) -> list[ExperimentOutcome]:
    """Fan a campaign out over a process pool (``run_campaign(jobs>1)``).

    Determinism contract: outcomes and ``on_result`` presentation are
    emitted strictly in id order — a finished experiment is held back
    until every earlier id has been emitted, so logs and result files
    are byte-identical to a serial run's.  A ``done`` checkpoint record
    is written only *after* its presentation has been emitted (exactly
    like the serial path): a kill can therefore never mark an
    experiment done whose result files were still pending, and a
    resumed campaign completes the artifact set byte-for-byte.
    Failures are recorded as they occur — they have no artifacts.
    """
    outcomes_by_id: dict[str, ExperimentOutcome] = {}
    presentations: dict[str, tuple[list[SweepResult], list, float]] = {}
    to_run: list[str] = []
    for exp_id in ids:
        if checkpoint is not None and checkpoint.is_done(exp_id):
            log(f"skipping {exp_id}: already completed "
                f"(checkpoint {checkpoint.path})")
            _C_EXP_SKIPPED.add(1)
            obs_event("campaign.resume_skip", experiment=exp_id)
            outcomes_by_id[exp_id] = ExperimentOutcome(
                exp_id=exp_id, status="skipped")
        else:
            EXPERIMENTS[exp_id]  # fail fast on unknown ids, like serial
            to_run.append(exp_id)

    emit_order = list(ids)
    emitted = 0

    def emit_ready() -> None:
        """Emit every consecutive leading id that has an outcome."""
        nonlocal emitted
        while emitted < len(emit_order):
            exp_id = emit_order[emitted]
            outcome = outcomes_by_id.get(exp_id)
            if outcome is None:
                return
            if outcome.status == "done":
                sweeps, checks, wall = presentations.pop(exp_id)
                if on_result is not None:
                    on_result(exp_id, EXPERIMENTS[exp_id], sweeps,
                              checks, wall)
                if checkpoint is not None:
                    checkpoint.record(outcome)
            emitted += 1

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-forking platforms
        mp_context = None
    abort: BaseException | None = None
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=mp_context) as pool:
        futures = {pool.submit(_campaign_worker, exp_id, protocol,
                               scenario): exp_id for exp_id in to_run}
        for future in concurrent.futures.as_completed(futures):
            record = future.result()
            exp_id = record["exp_id"]
            if record["status"] == "failed":
                _C_EXP_FAILED.add(1)
                obs_event("campaign.experiment_failed",
                          experiment=exp_id, error=record["error"])
                outcome = ExperimentOutcome(
                    exp_id=exp_id, status="failed",
                    wall_seconds=record["wall"],
                    error=record["error"], message=record["message"])
                if checkpoint is not None:
                    checkpoint.record(outcome)
                if not keep_going or not record["benign"]:
                    abort = _rebuild_exception(record["error"],
                                               record["message"])
                    for pending in futures:
                        pending.cancel()
                    break
                log(f"FAILED {exp_id}: {record['error']}: "
                    f"{record['message']}")
            else:
                _C_EXP_DONE.add(1)
                outcome = ExperimentOutcome(
                    exp_id=exp_id, status="done",
                    wall_seconds=record["wall"],
                    claims_passed=sum(c.passed
                                      for c in record["checks"]),
                    claims_total=len(record["checks"]))
                presentations[exp_id] = (record["sweeps"],
                                         record["checks"],
                                         record["wall"])
            outcomes_by_id[exp_id] = outcome
            emit_ready()
    if abort is not None:
        raise abort
    emit_ready()
    return [outcomes_by_id[exp_id] for exp_id in ids]


def write_failure_summary(outcomes: list[ExperimentOutcome],
                          path: str | Path) -> Path:
    """Write a campaign's failure summary as JSON (atomic).

    Returns:
        The path written.
    """
    failed = [o.to_json() for o in outcomes if o.status == "failed"]
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "total": len(outcomes),
        "done": sum(o.status == "done" for o in outcomes),
        "skipped": sum(o.status == "skipped" for o in outcomes),
        "failed": failed,
    }
    return atomic_write_text(Path(path),
                             json.dumps(summary, indent=2) + "\n")
