"""Fig. 1: throughput of the OpenMP barrier.

Paper findings: per-thread throughput initially decreases as more threads
participate, is largely stable beyond about 8 threads, and does not drop
much when hyperthreading is used.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check, decreasing_then_stable
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import omp_barrier_spec, sweep_omp


def run_fig1(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None) -> SweepResult:
    """Barrier throughput across thread counts, affinity=spread."""
    machine = machine or cpu_preset(3)
    return sweep_omp(machine, {"barrier": omp_barrier_spec()},
                     name="fig1", affinity=Affinity.SPREAD,
                     protocol=protocol)


def claims_fig1(sweep: SweepResult,
                machine: CpuMachine | None = None) -> list[TrendCheck]:
    """Verify the paper's Fig. 1 statements on a reproduced sweep."""
    machine = machine or cpu_preset(3)
    barrier = sweep.series_by_label("barrier")
    cores = machine.topology.physical_cores
    with_ht = [p.throughput for p in barrier.points if p.x > cores]
    at_cores = barrier.throughput_at(cores)
    ht_ok = all(t >= 0.7 * at_cores for t in with_ht) if with_ht else False
    return [
        check("throughput decreases then is largely stable beyond ~8 threads",
              decreasing_then_stable(barrier, knee_x=8)),
        check("hyperthreading does not significantly lower throughput",
              ht_ok,
              detail=f"min HT throughput / at-cores = "
                     f"{min(with_ht) / at_cores:.2f}" if with_ht else ""),
    ]
