"""Per-figure experiment definitions and the launch CLI.

One module per paper figure/table; each exposes a ``run_*`` function
returning :class:`repro.core.results.SweepResult` objects and a
``claims_*`` function turning them into
:class:`repro.analysis.trends.TrendCheck` verdicts.  The registry
(:mod:`repro.experiments.registry`) indexes them by experiment id, and
:mod:`repro.experiments.launch` mirrors the artifact's ``launch.py``
workflow (``syncperf all|openmp|cuda|<id>``).
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentDef,
    get_experiment,
    experiments_of_kind,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentDef",
    "get_experiment",
    "experiments_of_kind",
]
