"""Fig. 13: ``atomicExch()`` on one shared variable.

Paper findings: similar to ``atomicCAS()`` (Fig. 11); there is no
arithmetic, so the per-thread performance is memory-bound and decreases as
more threads wait for the single location.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    drops_after,
    flat_up_to,
    geometric_mean_ratio,
    is_roughly_nonincreasing,
)
from repro.common.datatypes import CAS_DTYPES
from repro.compiler.ops import PrimitiveKind
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import cuda_atomic_scalar_spec, sweep_cuda


def run_fig13(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[int, SweepResult]:
    """Scalar atomicExch at block counts 1 and SMs."""
    device = device or gpu_preset(3)
    specs = {dt.name: cuda_atomic_scalar_spec(PrimitiveKind.ATOMIC_EXCH, dt)
             for dt in CAS_DTYPES}
    return {blocks: sweep_cuda(device, specs,
                               name=f"fig13/blocks={blocks}",
                               block_count=blocks, protocol=protocol)
            for blocks in (1, device.spec.sm_count)}


def claims_fig13(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 13 statements."""
    one = panels[1].series_by_label("int")
    many_key = max(panels)
    many = panels[many_key].series_by_label("int")
    cas_like = flat_up_to(one, knee_x=4, tol=0.05) and \
        drops_after(one, knee_x=4, factor=1.2)
    return [
        check("results similar to atomicCAS (short flat region, then "
              "decay)", cas_like),
        check("more active threads means longer waits (non-increasing "
              "throughput)",
              is_roughly_nonincreasing(one.finite_throughputs(), tol=0.1)),
        check("many-block configuration is slower per thread",
              geometric_mean_ratio(one, many) > 2.0,
              detail=f"1-block/{many_key}-block = "
                     f"{geometric_mean_ratio(one, many):.1f}x"),
    ]
