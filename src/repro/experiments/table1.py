"""Table I: system specifications.

The presets must match the paper's hardware table exactly; this experiment
renders the table and checks every figure against the published values.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check
from repro.cpu.presets import CPU_PRESETS
from repro.gpu.presets import GPU_PRESETS

#: The published Table I values this reproduction must encode.
PAPER_TABLE1 = {
    1: {"cpu_clock": 3.10, "sockets": 2, "cores": 10, "smt": 2, "numa": 2,
        "gpu_cc": 7.5, "gpu_clock": 1.80, "sms": 40, "max_thr_sm": 1024,
        "cores_sm": 64, "mem_gb": 8},
    2: {"cpu_clock": 2.80, "sockets": 2, "cores": 16, "smt": 2, "numa": 2,
        "gpu_cc": 8.0, "gpu_clock": 1.41, "sms": 108, "max_thr_sm": 2048,
        "cores_sm": 64, "mem_gb": 40},
    3: {"cpu_clock": 3.50, "sockets": 1, "cores": 16, "smt": 2, "numa": 2,
        "gpu_cc": 8.9, "gpu_clock": 2.625, "sms": 128, "max_thr_sm": 1536,
        "cores_sm": 128, "mem_gb": 24},
}


def run_table1() -> dict[int, dict[str, dict[str, object]]]:
    """Collect every system's CPU and GPU description."""
    return {system: {"cpu": CPU_PRESETS[system].describe(),
                     "gpu": GPU_PRESETS[system].describe()}
            for system in sorted(CPU_PRESETS)}


def render_table1(table: dict[int, dict[str, dict[str, object]]]
                  ) -> str:
    """Render the systems table as markdown."""
    lines = ["| System | CPU | cores | GPU | SMs | thr/SM | clock |",
             "|---|---|---|---|---|---|---|"]
    for system, entry in table.items():
        cpu, gpu = entry["cpu"], entry["gpu"]
        lines.append(
            f"| {system} | {cpu['name']} "
            f"| {cpu['sockets']}x{cpu['cores_per_socket']}x"
            f"{cpu['threads_per_core']} "
            f"| {gpu['name']} | {gpu['sm_count']} "
            f"| {gpu['max_threads_per_sm']} | {gpu['clock_ghz']} GHz |")
    return "\n".join(lines)


def claims_table1(table: dict[int, dict[str, dict[str, object]]]
                  ) -> list[TrendCheck]:
    """Every preset figure matches the published Table I."""
    checks = []
    for system, expected in PAPER_TABLE1.items():
        cpu = table[system]["cpu"]
        gpu = table[system]["gpu"]
        ok = (cpu["base_clock_ghz"] == expected["cpu_clock"]
              and cpu["sockets"] == expected["sockets"]
              and cpu["cores_per_socket"] == expected["cores"]
              and cpu["threads_per_core"] == expected["smt"]
              and cpu["numa_nodes"] == expected["numa"]
              and gpu["compute_capability"] == expected["gpu_cc"]
              and gpu["clock_ghz"] == expected["gpu_clock"]
              and gpu["sm_count"] == expected["sms"]
              and gpu["max_threads_per_sm"] == expected["max_thr_sm"]
              and gpu["cuda_cores_per_sm"] == expected["cores_sm"]
              and gpu["memory_gb"] == expected["mem_gb"])
        checks.append(check(f"System {system} specs match Table I", ok))
    return checks
