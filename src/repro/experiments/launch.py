"""The ``syncperf`` CLI, mirroring the artifact's ``launch.py`` workflow.

Usage::

    syncperf all                 # run every experiment
    syncperf openmp              # only the OpenMP experiments
    syncperf cuda                # only the CUDA experiments
    syncperf fig3 fig9           # specific experiments
    syncperf --list              # show the experiment index
    syncperf fig1 --csv out/     # also write runtimes.csv per sweep
    syncperf fig1 --chart        # render ASCII charts
    syncperf all --faults storm --keep-going --results out/
                                 # fault-injected resilient campaign
    syncperf all --results out/ --resume
                                 # restart where a killed campaign left off
    syncperf all --jobs 4        # fan out over worker processes
                                 # (byte-identical results; see
                                 # docs/performance.md)

Like the artifact, results land in per-experiment files when ``--csv`` is
given (the artifact writes ``./results/<hostname>/.../runtimes.csv``).

Robustness: library errors are caught at this boundary and reported as a
one-line diagnostic with a per-category exit code (config=2,
measurement=3, simulation=4, other=5; claim mismatches keep exit 1).
``--keep-going`` records failing experiments in a failure summary and
continues; ``--resume`` consults the atomic checkpoint manifest
(``--checkpoint``, default ``<results>/campaign.json``) to skip finished
experiments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.ascii_chart import render_chart
from repro.common.errors import ReproError
from repro.experiments.campaign import (
    EXIT_CLAIMS,
    EXIT_OK,
    CampaignCheckpoint,
    campaign_fingerprint,
    error_exit_code,
    error_name_exit_code,
    run_campaign,
    write_failure_summary,
)
from repro.experiments.registry import EXPERIMENTS, experiments_of_kind


def _select(targets: list[str]) -> list[str]:
    ids: list[str] = []
    for target in targets:
        if target == "all":
            ids.extend(EXPERIMENTS)
        elif target in ("openmp", "cuda", "meta", "extension"):
            ids.extend(d.exp_id for d in experiments_of_kind(target))
        elif target in EXPERIMENTS:
            ids.append(target)
        else:
            raise SystemExit(
                f"unknown target {target!r}; use 'all', 'openmp', 'cuda', "
                f"or one of {sorted(EXPERIMENTS)}")
    seen = set()
    ordered = []
    for exp_id in ids:
        if exp_id not in seen:
            seen.add(exp_id)
            ordered.append(exp_id)
    return ordered


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="syncperf",
        description="Run the SyncPerformance reproduction experiments.")
    parser.add_argument("targets", nargs="*", default=["all"],
                        help="'all', 'openmp', 'cuda', 'extension', or "
                             "experiment ids")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--csv", metavar="DIR",
                        help="write each sweep's runtimes.csv under DIR")
    parser.add_argument("--results", metavar="DIR",
                        help="write artifact-style per-experiment result "
                             "directories (csv + chart + claims + meta) "
                             "under DIR")
    parser.add_argument("--chart", action="store_true",
                        help="render ASCII charts of each sweep")
    parser.add_argument("--summary", action="store_true",
                        help="print per-series summary statistics for "
                             "each sweep")
    parser.add_argument("--config", metavar="FILE",
                        help="JSON file overriding the measurement "
                             "protocol (n_runs, n_iter, unroll, seed, ...)")
    parser.add_argument("--faults", metavar="SCENARIO",
                        help="inject machine faults: a preset name "
                             "('list' to enumerate), optionally scaled "
                             "('storm@0.5'), or a DSL expression like "
                             "'preempt(prob=0.05)+drop(drop_prob=0.01)'")
    parser.add_argument("--keep-going", action="store_true",
                        help="record failing experiments in a failure "
                             "summary and continue the campaign")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments over N worker processes "
                             "(results are byte-identical to a serial "
                             "run; composes with --keep-going/--resume)")
    parser.add_argument("--checkpoint", metavar="FILE",
                        help="campaign checkpoint manifest (default: "
                             "<results>/campaign.json when --results is "
                             "given)")
    parser.add_argument("--resume", action="store_true",
                        help="skip experiments the checkpoint manifest "
                             "already records as completed")
    parser.add_argument("--matrix", action="store_true",
                        help="run the whole-experiment parameter matrix "
                             "(the artifact's 72-hour launch.py all) "
                             "instead of the per-figure experiments; "
                             "combine with --results to write the "
                             "artifact's results/system<N>/ layout")
    parser.add_argument("--systems", default="1,2,3",
                        help="comma-separated paper system numbers for "
                             "--matrix (default: 1,2,3)")
    parser.add_argument("--characterize", metavar="MACHINE",
                        help="profile every primitive on one machine "
                             "(cpu1..cpu3, gpu1..gpu3) and print the "
                             "markdown table")
    parser.add_argument("--obs", metavar="FILE",
                        help="record spans/counters and write the JSONL "
                             "event log to FILE (summarize with "
                             "'python -m repro.obs.report FILE')")
    parser.add_argument("--obs-trace", metavar="FILE",
                        help="write a Chrome/Perfetto trace_events JSON "
                             "of the run (wall-clock spans plus modeled "
                             "interpreter timelines) to FILE")
    parser.add_argument("--obs-metrics", metavar="FILE",
                        help="write a Prometheus-style text snapshot of "
                             "the run's counters/gauges to FILE")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry for the ``syncperf`` command.

    Library errors never escape as tracebacks: they are reported on
    stderr as one line and mapped to a per-category exit code.

    With ``--obs``/``--obs-trace``/``--obs-metrics`` an observability
    recorder is installed for the whole run and the requested exports
    are written on the way out — including when the run fails, so a
    crashed campaign still leaves its event log behind.
    """
    args = _build_parser().parse_args(argv)
    recorder = None
    if args.obs or args.obs_trace or args.obs_metrics:
        from repro.obs import Recorder, set_recorder
        recorder = Recorder()
        set_recorder(recorder)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"syncperf: {type(exc).__name__}: {exc}", file=sys.stderr)
        return error_exit_code(exc)
    finally:
        if recorder is not None:
            from repro.obs import set_recorder
            set_recorder(None)
            _export_obs(recorder, args)


def _export_obs(recorder: object, args: argparse.Namespace) -> None:
    """Write the requested observability exports (best effort: an
    export failure must not mask the run's own exit path)."""
    from repro.obs.export import (
        write_chrome_trace,
        write_jsonl,
        write_metrics,
    )
    for flag, writer in ((args.obs, write_jsonl),
                         (args.obs_trace, write_chrome_trace),
                         (args.obs_metrics, write_metrics)):
        if not flag:
            continue
        try:
            print(f"obs: wrote {writer(recorder, flag)}")
        except OSError as exc:
            print(f"syncperf: obs export to {flag} failed: {exc}",
                  file=sys.stderr)


def _dispatch(args: argparse.Namespace) -> int:
    protocol = None
    if args.config:
        from repro.experiments.config import load_config
        protocol = load_config(args.config)
        print(f"using protocol from {args.config}: {protocol}")

    if args.list:
        for exp_id, d in EXPERIMENTS.items():
            print(f"{exp_id:15s} {d.figure:10s} [{d.kind}] {d.title}")
        return EXIT_OK

    scenario = None
    if args.faults:
        from repro.faults import PRESETS, resolve_faults
        if args.faults == "list":
            for name in sorted(PRESETS):
                print(PRESETS[name].describe())
            return EXIT_OK
        seed = protocol.seed if protocol else 0
        scenario = resolve_faults(args.faults, seed=seed)
        print(f"injecting faults — {scenario.describe()}")

    if args.characterize:
        return _characterize(args, protocol, scenario)

    if args.matrix:
        return _matrix(args, protocol, scenario)

    ids = _select(args.targets or ["all"])

    checkpoint = None
    checkpoint_path = args.checkpoint or (
        str(Path(args.results) / "campaign.json") if args.results else None)
    if args.resume and checkpoint_path is None:
        from repro.common.errors import ConfigurationError
        raise ConfigurationError(
            "--resume needs a manifest: pass --checkpoint FILE or "
            "--results DIR")
    if checkpoint_path is not None:
        checkpoint = CampaignCheckpoint.open(
            checkpoint_path,
            fingerprint=campaign_fingerprint(scenario, protocol),
            resume=args.resume)
        checkpoint.save()

    print(f"running {len(ids)} experiment(s): {', '.join(ids)}")
    claim_failures = 0
    point_failures = 0

    def on_result(exp_id, definition, sweeps, checks, wall):
        nonlocal claim_failures, point_failures
        n_pass = sum(c.passed for c in checks)
        print(f"\n=== {exp_id} ({definition.figure}) — {definition.title} "
              f"[{wall:.1f}s] ===")
        for c in checks:
            print(f"  {c}")
        claim_failures += len(checks) - n_pass
        for sweep in sweeps:
            for failure in sweep.failures:
                point_failures += 1
                print(f"  [LOST] {failure}")
        if args.csv:
            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            from repro.core.results_io import atomic_write_text, \
                clean_stale_tmp
            clean_stale_tmp(out_dir)
            for sweep in sweeps:
                safe = sweep.name.replace("/", "_")
                atomic_write_text(out_dir / f"{safe}.csv", sweep.to_csv())
            if sweeps:
                print(f"  wrote {len(sweeps)} csv file(s) to {out_dir}")
        if args.results:
            from repro.core.results_io import save_experiment
            directory = save_experiment(
                exp_id, definition.title, definition.kind, sweeps, checks,
                Path(args.results), wall_seconds=wall)
            print(f"  wrote {directory}")
        if args.summary:
            from repro.analysis.stats import summary_table
            for sweep in sweeps:
                print()
                print(summary_table(sweep))
        if args.chart:
            for sweep in sweeps:
                print()
                print(render_chart(sweep, log_x=definition.kind == "cuda"))

    outcomes = run_campaign(
        ids, protocol=protocol, keep_going=args.keep_going,
        scenario=scenario, checkpoint=checkpoint, on_result=on_result,
        jobs=args.jobs)

    failed = [o for o in outcomes if o.status == "failed"]
    skipped = sum(o.status == "skipped" for o in outcomes)
    if skipped:
        print(f"\nresumed: skipped {skipped} completed experiment(s)")
    if failed:
        print(f"\n{len(failed)} experiment(s) failed:")
        for o in failed:
            print(f"  {o.exp_id}: {o.error}: {o.message}")
        summary_path = None
        if args.results:
            summary_path = Path(args.results) / "failures.json"
        elif checkpoint_path is not None:
            summary_path = Path(checkpoint_path).with_suffix(
                ".failures.json")
        if summary_path is not None:
            write_failure_summary(outcomes, summary_path)
            print(f"  failure summary: {summary_path}")
    if point_failures:
        print(f"\n{point_failures} sweep point(s) lost to faults "
              "(recorded in the sweeps' failure lists)")
    print(f"\n{'OK' if claim_failures == 0 else 'FAILURES'}: "
          f"{claim_failures} claim(s) not reproduced")
    if failed:
        return max(error_name_exit_code(o.error) for o in failed)
    return EXIT_OK if claim_failures == 0 else EXIT_CLAIMS


def _characterize(args: argparse.Namespace, protocol: object,
                  scenario: object) -> int:
    from repro.characterize import characterize_cpu, characterize_gpu
    from repro.cpu.presets import cpu_preset
    from repro.faults.scenario import use_faults
    from repro.gpu.presets import gpu_preset
    target = args.characterize.lower()
    if len(target) != 4 or target[:3] not in ("cpu", "gpu") or \
            not target[3].isdigit():
        raise SystemExit(
            f"--characterize expects cpu1..cpu3 or gpu1..gpu3, "
            f"got {args.characterize!r}")
    system = int(target[3])
    with use_faults(scenario):
        if target.startswith("cpu"):
            report = characterize_cpu(cpu_preset(system), protocol)
        else:
            report = characterize_gpu(gpu_preset(system), protocol)
    print(report.to_markdown())
    return EXIT_OK


def _matrix(args: argparse.Namespace, protocol: object,
            scenario: object) -> int:
    from repro.experiments.matrix import run_full_matrix, save_full_matrix
    from repro.faults.scenario import use_faults
    systems = tuple(int(s) for s in args.systems.split(","))
    print(f"running the full matrix on systems {systems} "
          "(the artifact's whole-experiment workflow)...")
    with use_faults(scenario):
        results = run_full_matrix(systems=systems, protocol=protocol)
    print(f"completed {len(results)} sweeps")
    if args.results:
        written = save_full_matrix(results, Path(args.results))
        print(f"wrote {written} files under {args.results}")
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
