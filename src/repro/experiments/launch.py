"""The ``syncperf`` CLI, mirroring the artifact's ``launch.py`` workflow.

Usage::

    syncperf all                 # run every experiment
    syncperf openmp              # only the OpenMP experiments
    syncperf cuda                # only the CUDA experiments
    syncperf fig3 fig9           # specific experiments
    syncperf --list              # show the experiment index
    syncperf fig1 --csv out/     # also write runtimes.csv per sweep
    syncperf fig1 --chart        # render ASCII charts

Like the artifact, results land in per-experiment files when ``--csv`` is
given (the artifact writes ``./results/<hostname>/.../runtimes.csv``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.ascii_chart import render_chart
from repro.experiments.registry import EXPERIMENTS, experiments_of_kind


def _select(targets: list[str]) -> list[str]:
    ids: list[str] = []
    for target in targets:
        if target == "all":
            ids.extend(EXPERIMENTS)
        elif target in ("openmp", "cuda", "meta", "extension"):
            ids.extend(d.exp_id for d in experiments_of_kind(target))
        elif target in EXPERIMENTS:
            ids.append(target)
        else:
            raise SystemExit(
                f"unknown target {target!r}; use 'all', 'openmp', 'cuda', "
                f"or one of {sorted(EXPERIMENTS)}")
    seen = set()
    ordered = []
    for exp_id in ids:
        if exp_id not in seen:
            seen.add(exp_id)
            ordered.append(exp_id)
    return ordered


def main(argv: list[str] | None = None) -> int:
    """CLI entry for the ``syncperf`` command."""
    parser = argparse.ArgumentParser(
        prog="syncperf",
        description="Run the SyncPerformance reproduction experiments.")
    parser.add_argument("targets", nargs="*", default=["all"],
                        help="'all', 'openmp', 'cuda', 'extension', or "
                             "experiment ids")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--csv", metavar="DIR",
                        help="write each sweep's runtimes.csv under DIR")
    parser.add_argument("--results", metavar="DIR",
                        help="write artifact-style per-experiment result "
                             "directories (csv + chart + claims + meta) "
                             "under DIR")
    parser.add_argument("--chart", action="store_true",
                        help="render ASCII charts of each sweep")
    parser.add_argument("--summary", action="store_true",
                        help="print per-series summary statistics for "
                             "each sweep")
    parser.add_argument("--config", metavar="FILE",
                        help="JSON file overriding the measurement "
                             "protocol (n_runs, n_iter, unroll, seed, ...)")
    parser.add_argument("--matrix", action="store_true",
                        help="run the whole-experiment parameter matrix "
                             "(the artifact's 72-hour launch.py all) "
                             "instead of the per-figure experiments; "
                             "combine with --results to write the "
                             "artifact's results/system<N>/ layout")
    parser.add_argument("--systems", default="1,2,3",
                        help="comma-separated paper system numbers for "
                             "--matrix (default: 1,2,3)")
    parser.add_argument("--characterize", metavar="MACHINE",
                        help="profile every primitive on one machine "
                             "(cpu1..cpu3, gpu1..gpu3) and print the "
                             "markdown table")
    args = parser.parse_args(argv)

    protocol = None
    if args.config:
        from repro.experiments.config import load_config
        protocol = load_config(args.config)
        print(f"using protocol from {args.config}: {protocol}")

    if args.list:
        for exp_id, d in EXPERIMENTS.items():
            print(f"{exp_id:15s} {d.figure:10s} [{d.kind}] {d.title}")
        return 0

    if args.characterize:
        from repro.characterize import characterize_cpu, characterize_gpu
        from repro.cpu.presets import cpu_preset
        from repro.gpu.presets import gpu_preset
        target = args.characterize.lower()
        if len(target) != 4 or target[:3] not in ("cpu", "gpu") or \
                not target[3].isdigit():
            raise SystemExit(
                f"--characterize expects cpu1..cpu3 or gpu1..gpu3, "
                f"got {args.characterize!r}")
        system = int(target[3])
        if target.startswith("cpu"):
            report = characterize_cpu(cpu_preset(system), protocol)
        else:
            report = characterize_gpu(gpu_preset(system), protocol)
        print(report.to_markdown())
        return 0

    if args.matrix:
        from repro.experiments.matrix import run_full_matrix, \
            save_full_matrix
        systems = tuple(int(s) for s in args.systems.split(","))
        print(f"running the full matrix on systems {systems} "
              "(the artifact's whole-experiment workflow)...")
        results = run_full_matrix(systems=systems, protocol=protocol)
        print(f"completed {len(results)} sweeps")
        if args.results:
            written = save_full_matrix(results, Path(args.results))
            print(f"wrote {written} files under {args.results}")
        return 0

    ids = _select(args.targets or ["all"])
    print(f"running {len(ids)} experiment(s): {', '.join(ids)}")
    failures = 0
    for exp_id in ids:
        definition = EXPERIMENTS[exp_id]
        start = time.time()
        payload = definition.run(protocol)
        checks = definition.claims(payload)
        wall = time.time() - start
        n_pass = sum(c.passed for c in checks)
        print(f"\n=== {exp_id} ({definition.figure}) — {definition.title} "
              f"[{wall:.1f}s] ===")
        for c in checks:
            print(f"  {c}")
        failures += len(checks) - n_pass
        sweeps = definition.sweeps(payload)
        if args.csv:
            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            for sweep in sweeps:
                safe = sweep.name.replace("/", "_")
                (out_dir / f"{safe}.csv").write_text(sweep.to_csv())
            if sweeps:
                print(f"  wrote {len(sweeps)} csv file(s) to {out_dir}")
        if args.results:
            from repro.core.results_io import save_experiment
            directory = save_experiment(
                exp_id, definition.title, definition.kind, sweeps, checks,
                Path(args.results), wall_seconds=wall)
            print(f"  wrote {directory}")
        if args.summary:
            from repro.analysis.stats import summary_table
            for sweep in sweeps:
                print()
                print(summary_table(sweep))
        if args.chart:
            for sweep in sweeps:
                print()
                print(render_chart(sweep, log_x=definition.kind == "cuda"))
    print(f"\n{'OK' if failures == 0 else 'FAILURES'}: "
          f"{failures} claim(s) not reproduced")
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
