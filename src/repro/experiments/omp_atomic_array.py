"""Fig. 3: OpenMP atomic update on private elements of a shared array.

Paper findings, per stride panel (strides 1, 4, 8, 16; 64 B lines):

* stride 1 — maximum false sharing; the 4-byte types are slightly worse
  than the 8-byte ones (twice as many words share a line).
* stride 4 — all types improve.
* stride 8 — the 64-bit types escape false sharing entirely (throughput
  "shoots up drastically"); the 32-bit types improve only a little.
* stride 16 — every type has its own line; throughput is flat across
  threads and integer types beat floating-point regardless of width.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    is_roughly_constant,
    jump_between,
    series_above,
)
from repro.common.datatypes import DTYPES
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import omp_atomic_update_array_spec, sweep_omp

STRIDES = (1, 4, 8, 16)


def run_fig3(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None
             ) -> dict[int, SweepResult]:
    """One sweep per stride panel, four data types each."""
    machine = machine or cpu_preset(3)
    panels = {}
    for stride in STRIDES:
        specs = {dt.name: omp_atomic_update_array_spec(dt, stride)
                 for dt in DTYPES}
        panels[stride] = sweep_omp(machine, specs,
                                   name=f"fig3/stride={stride}",
                                   protocol=protocol)
    return panels


def claims_fig3(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 3 statements."""
    s1, s4, s8, s16 = (panels[s] for s in STRIDES)
    checks = [
        check("stride 1: 4-byte types perform worse than 8-byte types "
              "(more words per cache line)",
              series_above(s1.series_by_label("ull"),
                           s1.series_by_label("int"), min_ratio=1.2,
                           frac=0.6)
              and series_above(s1.series_by_label("double"),
                               s1.series_by_label("float"), min_ratio=1.2,
                               frac=0.6)),
        check("stride 4: all types faster than at stride 1",
              all(jump_between(s1.series_by_label(dt.name),
                               s4.series_by_label(dt.name), 1.5)
                  for dt in DTYPES)),
        check("stride 8: 64-bit types shoot up (escape false sharing)",
              jump_between(s4.series_by_label("ull"),
                           s8.series_by_label("ull"), 2.0)
              and jump_between(s4.series_by_label("double"),
                               s8.series_by_label("double"), 1.4)),
        check("stride 8: 32-bit types increase only a little",
              not jump_between(s4.series_by_label("int"),
                               s8.series_by_label("int"), 3.0)),
        check("stride 16: 32-bit types jump like the 64-bit ones did",
              jump_between(s8.series_by_label("int"),
                           s16.series_by_label("int"), 1.5)),
        check("stride 16: integer types faster than floating-point, "
              "regardless of word size",
              series_above(s16.series_by_label("int"),
                           s16.series_by_label("float"), min_ratio=1.1,
                           frac=0.6)
              and series_above(s16.series_by_label("ull"),
                               s16.series_by_label("double"), min_ratio=1.1,
                               frac=0.6)),
        check("stride 16: throughput largely constant across threads "
              "(embarrassingly parallel)",
              all(is_roughly_constant(
                  s16.series_by_label(dt.name).finite_throughputs(),
                  tol=0.45) for dt in DTYPES)),
    ]
    return checks
