"""Fig. 8: ``__syncwarp()`` throughput on two systems.

Paper findings: constant up to a per-SM resident-thread knee — ~256
threads/SM at full speed on the RTX 4090, ~512 on the RTX 2070 SUPER —
then drops somewhat (not to zero); the double-block configuration drops
one step earlier than the full-block configuration because it co-locates
two blocks per SM, so the knee depends on warps per SM, not warps per
block.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check, drops_after, flat_up_to
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import cuda_syncwarp_spec, sweep_cuda


def run_fig8(device: GpuDevice | None = None,
             protocol: MeasurementProtocol | None = None
             ) -> dict[str, SweepResult]:
    """Full-block and double-block sweeps for one GPU."""
    device = device or gpu_preset(3)
    sms = device.spec.sm_count
    return {
        "full": sweep_cuda(device, {"syncwarp": cuda_syncwarp_spec()},
                           name=f"fig8/{device.name}/full",
                           block_count=sms, protocol=protocol),
        "double": sweep_cuda(device, {"syncwarp": cuda_syncwarp_spec()},
                             name=f"fig8/{device.name}/double",
                             block_count=2 * sms, protocol=protocol),
    }


def run_fig8_both_systems(protocol: MeasurementProtocol | None = None
                          ) -> dict[int, dict[str, SweepResult]]:
    """The figure's two panels: System 3 (RTX 4090) and System 1 (2070S)."""
    return {3: run_fig8(gpu_preset(3), protocol),
            1: run_fig8(gpu_preset(1), protocol)}


def claims_fig8(panels: dict[int, dict[str, SweepResult]]
                ) -> list[TrendCheck]:
    """Verify the paper's Fig. 8 statements."""
    rtx4090_full = panels[3]["full"].series_by_label("syncwarp")
    rtx4090_double = panels[3]["double"].series_by_label("syncwarp")
    rtx2070_full = panels[1]["full"].series_by_label("syncwarp")

    def knee_of(series) -> float:
        """Largest thread count with full-speed throughput."""
        peak = max(series.finite_throughputs())
        knee = 0.0
        for p in series.points:
            if p.throughput >= 0.99 * peak:
                knee = max(knee, p.x)
        return knee

    return [
        check("RTX 4090 runs ~256 threads/SM at full speed",
              knee_of(rtx4090_full) == 256,
              detail=f"knee at {knee_of(rtx4090_full):g} threads"),
        check("RTX 2070 SUPER runs ~512 threads/SM at full speed",
              knee_of(rtx2070_full) == 512,
              detail=f"knee at {knee_of(rtx2070_full):g} threads"),
        check("double-block config drops one step earlier than full",
              knee_of(rtx4090_double) == knee_of(rtx4090_full) / 2),
        check("throughput drops only somewhat beyond the knee",
              drops_after(rtx4090_full, knee_x=256, factor=1.2)
              and min(rtx4090_full.finite_throughputs()) >
              0.5 * max(rtx4090_full.finite_throughputs())),
        check("throughput constant up to the knee",
              flat_up_to(rtx4090_full, knee_x=256, tol=0.05)),
    ]
