"""Extension: the measurement protocol under injected faults.

The paper's protocol (Section IV) is built to survive a noisy machine:
repeated runs, attempt retries when the test measures faster than the
baseline, medians instead of means.  This experiment quantifies that
robustness by sweeping the *intensity* of a composite fault scenario
(preemption bursts + dropped runs + thermal throttle + timer
quantization — the ``stress-lab`` preset) on System 3's CPU and watching
two things:

* at low intensity the protocol still recovers the barrier's true cost
  within tolerance — the retry/median machinery absorbs the faults;
* as intensity grows, ``valid_fraction`` degrades monotonically and the
  harshest point is visibly flagged (low validity, dropped runs, or a
  recorded :class:`~repro.core.results.PointFailure`), i.e. the
  protocol *reports* that it is drowning rather than emitting silently
  wrong numbers.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check
from repro.compiler.ops import op_barrier
from repro.core.engine import MeasurementEngine
from repro.core.protocol import MeasurementProtocol
from repro.core.results import Series, SweepResult
from repro.cpu.affinity import Affinity
from repro.cpu.presets import cpu_preset
from repro.experiments.base import _measure_point, omp_barrier_spec
from repro.faults.machine import FaultyMachine
from repro.faults.presets import preset_scenario

#: Scale factors applied to the ``stress-lab`` scenario (0 = clean).
INTENSITIES = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)

#: Thread count held fixed while intensity sweeps.
N_THREADS = 8

#: Intensities the protocol must still recover the truth at.
LOW_INTENSITY = 0.5

#: Relative error allowed on the recovered barrier cost at low intensity.
RECOVERY_TOL = 0.35


def run_fault_tolerance(protocol: MeasurementProtocol | None = None
                        ) -> SweepResult:
    """Measure the barrier at N_THREADS across fault intensities.

    Each intensity gets its own :class:`FaultyMachine` wrap (same seed,
    scaled scenario) and a fresh engine, so the sweep is deterministic
    and each point sees the scenario from its start (thermal ramps
    restart at zero).

    Returns:
        One sweep, x = fault intensity, with the clean per-op truth in
        ``metadata["true_per_op"]``.
    """
    machine = cpu_preset(3)
    ctx = machine.context(N_THREADS, Affinity.SPREAD)
    truth = machine.op_cost(op_barrier(), ctx)
    sweep = SweepResult(
        name="ext/fault_tolerance", x_label="fault_intensity",
        unit=machine.time_unit,
        metadata={"machine": machine.name, "threads": N_THREADS,
                  "scenario": "stress-lab", "true_per_op": truth})
    spec = omp_barrier_spec()
    series = Series(label="barrier")
    base = preset_scenario("stress-lab")
    for intensity in INTENSITIES:
        faulty = FaultyMachine(machine, base.scaled(intensity))
        engine = MeasurementEngine(faulty, protocol)
        fctx = faulty.context(N_THREADS, Affinity.SPREAD)
        _measure_point(engine, sweep, series, spec, fctx, intensity,
                       label=f"barrier/i={intensity:g}")
    sweep.series.append(series)
    return sweep


def _point_at(series: Series, x: float):
    """The series point at ``x``, or None if it was lost to faults."""
    for point in series.points:
        if point.x == x:
            return point
    return None


def claims_fault_tolerance(payload: SweepResult) -> list[TrendCheck]:
    """Verify recovery at low intensity and flagged degradation at high.

    The sweep may legitimately *lose* its harshest points (recorded as
    :class:`~repro.core.results.PointFailure`); a lost point counts as
    flagged degradation, never as recovery.
    """
    series = payload.series_by_label("barrier")
    truth = float(payload.metadata["true_per_op"])
    checks: list[TrendCheck] = []

    low = [i for i in INTENSITIES if i <= LOW_INTENSITY]
    recovered = []
    for intensity in low:
        point = _point_at(series, intensity)
        recovered.append(
            point is not None and point.per_op_time is not None
            and abs(point.per_op_time - truth) <= RECOVERY_TOL * truth)
    checks.append(check(
        f"protocol recovers the barrier cost within {RECOVERY_TOL:.0%} "
        f"at intensity <= {LOW_INTENSITY:g}", all(recovered)))

    fractions = []
    for intensity in INTENSITIES:
        point = _point_at(series, intensity)
        fractions.append(0.0 if point is None
                         else point.result.valid_fraction)
    monotone = all(later <= earlier + 0.12
                   for earlier, later in zip(fractions, fractions[1:]))
    checks.append(check(
        "valid_fraction degrades monotonically with fault intensity "
        f"(observed {[round(f, 2) for f in fractions]})", monotone))

    harsh = _point_at(series, INTENSITIES[-1])
    flagged = (harsh is None
               or harsh.result.valid_fraction < 0.75
               or harsh.result.dropped_runs > 0)
    checks.append(check(
        f"harshest intensity ({INTENSITIES[-1]:g}) is visibly flagged "
        "(lost point, low validity, or dropped runs)", flagged))
    return checks
