"""Multi-GPU synchronization scenario family (extension).

The source paper characterizes one device; Zhang et al., "A Study of
Single and Multi-device Synchronization Methods in Nvidia GPUs", carry
the same methodology across devices.  This family reproduces their two
headline shapes on the modeled rig:

* **mg-barrier** — single-device ``grid.sync()`` vs multi-device
  ``multi_grid.sync()`` as the device count grows: the single-device
  barrier is device-count independent, while the multi-device barrier
  pays one interconnect round trip per extra device and its cost grows
  accordingly.
* **mg-atomic** — ``atomicAdd`` on one contended scalar at device vs
  system scope, at equal contention per device: system scope pays the
  host-visibility crossing plus line bouncing between contending
  devices, so its cost strictly dominates device scope everywhere and
  the gap widens with the device count.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check, is_roughly_constant, \
    series_above
from repro.common.datatypes import INT
from repro.compiler.ops import PrimitiveKind, Scope
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.experiments.base import cuda_atomic_scoped_spec, \
    cuda_grid_sync_spec, cuda_multi_grid_sync_spec, sweep_multigpu
from repro.gpu.device import GpuDevice
from repro.gpu.multi import MultiGpu
from repro.gpu.presets import gpu_preset
from repro.gpu.spec import LaunchConfig

#: Device counts swept (Zhang et al. test up to 8-GPU DGX nodes).
DEVICE_COUNTS = (1, 2, 4, 8)

#: Per-device launch shape: enough blocks for a real grid barrier, one
#: warp per block so atomic contention stays in the scalar regime.
MG_LAUNCH = LaunchConfig(grid_blocks=16, block_threads=128)


def _rig(device: GpuDevice | None) -> MultiGpu:
    return MultiGpu(device or gpu_preset(3))


def run_mg_barrier(device: GpuDevice | None = None,
                   protocol: MeasurementProtocol | None = None
                   ) -> SweepResult:
    """Barrier scope family: grid vs multi-grid cost per device count."""
    multi = _rig(device)
    return sweep_multigpu(
        multi,
        {"grid.sync": cuda_grid_sync_spec(),
         "multi_grid.sync": cuda_multi_grid_sync_spec()},
        name="mg_barrier", launch=MG_LAUNCH, protocol=protocol,
        device_counts=DEVICE_COUNTS)


def run_mg_atomic(device: GpuDevice | None = None,
                  protocol: MeasurementProtocol | None = None
                  ) -> SweepResult:
    """Atomic scope family: device vs system scope per device count."""
    multi = _rig(device)
    return sweep_multigpu(
        multi,
        {"atomicAdd device": cuda_atomic_scoped_spec(
            PrimitiveKind.ATOMIC_ADD, INT, Scope.DEVICE),
         "atomicAdd system": cuda_atomic_scoped_spec(
            PrimitiveKind.ATOMIC_ADD, INT, Scope.SYSTEM)},
        name="mg_atomic", launch=MG_LAUNCH, protocol=protocol,
        device_counts=DEVICE_COUNTS)


def claims_multigpu(barrier: SweepResult,
                    atomic: SweepResult) -> list[TrendCheck]:
    """The qualitative Zhang et al. shapes the family must reproduce."""
    grid = barrier.series_by_label("grid.sync")
    multi = barrier.series_by_label("multi_grid.sync")
    device = atomic.series_by_label("atomicAdd device")
    system = atomic.series_by_label("atomicAdd system")

    grid_times = [p.per_op_time for p in grid.points]
    multi_times = [p.per_op_time for p in multi.points]
    checks = [
        check("single-device grid.sync cost is device-count independent",
              is_roughly_constant(grid_times, tol=0.05),
              f"grid.sync cycles: {[round(t, 1) for t in grid_times]}"),
        check("multi_grid.sync cost grows with every added device",
              all(b > a for a, b in zip(multi_times, multi_times[1:])),
              f"multi_grid.sync cycles: "
              f"{[round(t, 1) for t in multi_times]}"),
        check("multi_grid.sync never beats the single-device barrier",
              all(m >= 0.97 * g for m, g in zip(multi_times, grid_times)),
              "per-device barrier is a lower bound (3% measurement "
              "tolerance: at one device the two barriers coincide)"),
    ]

    device_times = [p.per_op_time for p in device.points]
    system_times = [p.per_op_time for p in system.points]
    checks.append(check(
        "system-scope atomicAdd strictly dominates device scope at "
        "equal contention",
        series_above(device, system, min_ratio=1.05, frac=1.0),
        f"device cycles {[round(t, 1) for t in device_times]} vs "
        f"system {[round(t, 1) for t in system_times]}"))
    if device_times and system_times:
        first_gap = system_times[0] / device_times[0]
        last_gap = system_times[-1] / device_times[-1]
        checks.append(check(
            "the system-scope premium widens as devices are added",
            last_gap > first_gap,
            f"gap x{first_gap:.2f} at {DEVICE_COUNTS[0]} device(s) -> "
            f"x{last_gap:.2f} at {DEVICE_COUNTS[-1]}"))
    return checks
