"""The full parameter matrix: the artifact's whole-experiment workflow.

``./launch.py all`` runs every test code across every parameter on one
system (~72 hours on real hardware, per the appendix).  On the simulated
substrates the same matrix — every primitive x data type x stride x
affinity x thread count on each CPU, and every primitive x data type x
stride x block count x thread count on each GPU — completes in seconds.
:func:`run_full_matrix` produces the complete result set, and
:func:`save_full_matrix` writes it in the artifact's
``results/system<N>/`` layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common.datatypes import CAS_DTYPES, DTYPES
from repro.compiler.ops import PrimitiveKind, Scope
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.core.results_io import save_sweep
from repro.cpu.affinity import Affinity
from repro.cpu.presets import cpu_preset
from repro.experiments import base as exb
from repro.gpu.presets import gpu_preset
from repro.gpu.spec import paper_block_counts

STRIDES = (1, 4, 8, 16)
GPU_STRIDES = (1, 32)


@dataclass
class MatrixResults:
    """Every sweep of the full matrix, keyed by artifact-style test path.

    Keys look like ``system3/omp/atomicadd_array/stride=8`` or
    ``system3/cuda/atomicadd_scalar/blocks=64``.
    """

    sweeps: dict[str, SweepResult] = field(default_factory=dict)

    def add(self, key: str, sweep: SweepResult) -> None:
        """Store a sweep under a unique artifact-style key."""
        if key in self.sweeps:
            raise KeyError(f"duplicate matrix key {key!r}")
        self.sweeps[key] = sweep

    def keys_for_system(self, system: int) -> list[str]:
        """All matrix keys belonging to one paper system."""
        prefix = f"system{system}/"
        return [k for k in self.sweeps if k.startswith(prefix)]

    def __len__(self) -> int:
        return len(self.sweeps)


def _omp_matrix(system: int, protocol: MeasurementProtocol | None,
                out: MatrixResults) -> None:
    machine = cpu_preset(system)
    prefix = f"system{system}/omp"

    out.add(f"{prefix}/barrier", exb.sweep_omp(
        machine, {"barrier": exb.omp_barrier_spec()},
        name=f"{prefix}/barrier", affinity=Affinity.SPREAD,
        protocol=protocol))

    for builder, test in (
            (exb.omp_atomic_update_scalar_spec, "atomicadd_scalar"),
            (exb.omp_atomic_capture_scalar_spec, "atomiccapture_scalar"),
            (exb.omp_atomic_write_spec, "atomicwrite"),
            (exb.omp_atomic_read_spec, "atomicread"),
            (exb.omp_critical_spec, "critical")):
        specs = {dt.name: builder(dt) for dt in DTYPES}
        out.add(f"{prefix}/{test}", exb.sweep_omp(
            machine, specs, name=f"{prefix}/{test}", protocol=protocol))

    for stride in STRIDES:
        specs = {dt.name: exb.omp_atomic_update_array_spec(dt, stride)
                 for dt in DTYPES}
        out.add(f"{prefix}/atomicadd_array/stride={stride}", exb.sweep_omp(
            machine, specs,
            name=f"{prefix}/atomicadd_array/stride={stride}",
            protocol=protocol))
        flush_specs = {dt.name: exb.omp_flush_spec(dt, stride)
                       for dt in DTYPES}
        out.add(f"{prefix}/flush/stride={stride}", exb.sweep_omp(
            machine, flush_specs, name=f"{prefix}/flush/stride={stride}",
            affinity=Affinity.CLOSE, protocol=protocol))


def _cuda_matrix(system: int, protocol: MeasurementProtocol | None,
                 out: MatrixResults) -> None:
    device = gpu_preset(system)
    prefix = f"system{system}/cuda"
    block_counts = paper_block_counts(device.spec)

    for blocks in block_counts:
        out.add(f"{prefix}/syncthreads/blocks={blocks}", exb.sweep_cuda(
            device, {"syncthreads": exb.cuda_syncthreads_spec()},
            name=f"{prefix}/syncthreads/blocks={blocks}",
            block_count=blocks, protocol=protocol))
        out.add(f"{prefix}/syncwarp/blocks={blocks}", exb.sweep_cuda(
            device, {"syncwarp": exb.cuda_syncwarp_spec()},
            name=f"{prefix}/syncwarp/blocks={blocks}",
            block_count=blocks, protocol=protocol))

        add_specs = {dt.name: exb.cuda_atomic_scalar_spec(
            PrimitiveKind.ATOMIC_ADD, dt) for dt in DTYPES}
        out.add(f"{prefix}/atomicadd_scalar/blocks={blocks}",
                exb.sweep_cuda(
                    device, add_specs,
                    name=f"{prefix}/atomicadd_scalar/blocks={blocks}",
                    block_count=blocks, protocol=protocol))

        cas_specs = {dt.name: exb.cuda_atomic_scalar_spec(
            PrimitiveKind.ATOMIC_CAS, dt) for dt in CAS_DTYPES}
        out.add(f"{prefix}/atomiccas_scalar/blocks={blocks}",
                exb.sweep_cuda(
                    device, cas_specs,
                    name=f"{prefix}/atomiccas_scalar/blocks={blocks}",
                    block_count=blocks, protocol=protocol))

        exch_specs = {dt.name: exb.cuda_atomic_scalar_spec(
            PrimitiveKind.ATOMIC_EXCH, dt) for dt in CAS_DTYPES}
        out.add(f"{prefix}/atomicexch/blocks={blocks}", exb.sweep_cuda(
            device, exch_specs,
            name=f"{prefix}/atomicexch/blocks={blocks}",
            block_count=blocks, protocol=protocol))

        shfl_specs = {dt.name: exb.cuda_shfl_spec(
            PrimitiveKind.SHFL_SYNC, dt) for dt in DTYPES}
        out.add(f"{prefix}/shfl/blocks={blocks}", exb.sweep_cuda(
            device, shfl_specs, name=f"{prefix}/shfl/blocks={blocks}",
            block_count=blocks, protocol=protocol))

        for stride in GPU_STRIDES:
            arr_specs = {dt.name: exb.cuda_atomic_array_spec(
                PrimitiveKind.ATOMIC_ADD, dt, stride) for dt in DTYPES}
            key = f"{prefix}/atomicadd_array/blocks={blocks}" \
                  f"/stride={stride}"
            out.add(key, exb.sweep_cuda(device, arr_specs, name=key,
                                        block_count=blocks,
                                        protocol=protocol))
            fence_specs = {
                "device": exb.cuda_fence_spec(Scope.DEVICE, DTYPES[0],
                                              stride),
                "block": exb.cuda_fence_spec(Scope.BLOCK, DTYPES[0],
                                             stride),
                "system": exb.cuda_fence_spec(Scope.SYSTEM, DTYPES[0],
                                              stride),
            }
            key = f"{prefix}/threadfence/blocks={blocks}/stride={stride}"
            out.add(key, exb.sweep_cuda(device, fence_specs, name=key,
                                        block_count=blocks,
                                        protocol=protocol))


def run_full_matrix(systems: tuple[int, ...] = (1, 2, 3),
                    protocol: MeasurementProtocol | None = None,
                    include_cpu: bool = True,
                    include_gpu: bool = True) -> MatrixResults:
    """Run the whole-experiment matrix for the requested systems."""
    out = MatrixResults()
    for system in systems:
        if include_cpu:
            _omp_matrix(system, protocol, out)
        if include_gpu:
            _cuda_matrix(system, protocol, out)
    return out


def save_full_matrix(results: MatrixResults, root: Path) -> int:
    """Write every sweep under ``root`` in the artifact's layout.

    Returns:
        The number of files written.
    """
    written = 0
    for key, sweep in results.sweeps.items():
        directory = root / Path(key).parent
        written += len(save_sweep(sweep, directory,
                                  log_x="/cuda/" in f"/{key}"))
    return written
