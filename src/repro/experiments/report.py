"""EXPERIMENTS.md generation: paper claims vs reproduced results.

Runs every registered experiment, evaluates its claims, and renders a
markdown report.  ``python -m repro.experiments.report`` writes the file.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.analysis.trends import TrendCheck
from repro.core.protocol import MeasurementProtocol
from repro.experiments.registry import EXPERIMENTS, ExperimentDef

_HEADER = """# EXPERIMENTS — paper vs reproduction

Reproduction of every table and figure of *Characterizing CUDA and OpenMP
Synchronization Primitives* (Burtchell & Burtscher, IISWC 2024) on the
simulated CPU/GPU substrates of this library (see DESIGN.md for the
substitution rationale).  Absolute numbers are not comparable — the
substrate is a calibrated model, not the authors' hardware — so each row
verifies the paper's *qualitative claim* (trend shape, knee position,
ordering, ratio band) against the reproduced data.

Regenerate with `python -m repro.experiments.report`.
"""


def run_all(protocol: MeasurementProtocol | None = None,
            experiment_ids: list[str] | None = None
            ) -> dict[str, tuple[ExperimentDef, list[TrendCheck], float]]:
    """Run experiments and collect their claim verdicts.

    Returns:
        exp_id -> (definition, checks, wall seconds).
    """
    ids = experiment_ids or list(EXPERIMENTS)
    out = {}
    for exp_id in ids:
        definition = EXPERIMENTS[exp_id]
        start = time.time()
        payload = definition.run(protocol)
        checks = definition.claims(payload)
        out[exp_id] = (definition, checks, time.time() - start)
    return out


def render_report(results: dict[str, tuple[ExperimentDef, list[TrendCheck],
                                           float]]) -> str:
    """Render the EXPERIMENTS.md content."""
    lines = [_HEADER]
    total = passed = 0
    for exp_id, (definition, checks, wall) in results.items():
        lines.append(f"## {exp_id} — {definition.figure}: "
                     f"{definition.title}")
        lines.append("")
        lines.append("| paper claim | reproduced? | measured detail |")
        lines.append("|---|---|---|")
        for c in checks:
            total += 1
            passed += c.passed
            mark = "yes" if c.passed else "**NO**"
            detail = c.detail or ""
            lines.append(f"| {c.claim} | {mark} | {detail} |")
        lines.append("")
        lines.append(f"_Ran in {wall:.1f}s ({definition.kind})._")
        lines.append("")
    lines.insert(1, f"\n**Summary: {passed}/{total} paper claims "
                    f"reproduced.**\n")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Write EXPERIMENTS.md next to the repository root (or a given path)."""
    argv = argv if argv is not None else sys.argv[1:]
    out_path = Path(argv[0]) if argv else Path("EXPERIMENTS.md")
    results = run_all()
    out_path.write_text(render_report(results))
    n_checks = sum(len(checks) for _d, checks, _w in results.values())
    n_pass = sum(c.passed for _d, checks, _w in results.values()
                 for c in checks)
    print(f"wrote {out_path} ({n_pass}/{n_checks} claims reproduced)")
    return 0 if n_pass == n_checks else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
