"""Figs. 11 and 12: ``atomicCAS()`` on a shared scalar and on private
array elements.

Paper findings: CAS cannot benefit from warp aggregation (the comparison
outcome couples the lanes), so the scalar's flat region ends after only 4
threads at 1 block (2 at 2 blocks) and then follows the atomicAdd trend;
the always-pass and always-fail variants perform identically; only int and
ull are supported.  The array panels resemble Fig. 10 with an earlier
drop-off at one block.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    drops_after,
    flat_up_to,
    geometric_mean_ratio,
    series_above,
)
from repro.common.datatypes import CAS_DTYPES, INT
from repro.compiler.ops import PrimitiveKind
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import (
    cuda_atomic_array_spec,
    cuda_atomic_scalar_spec,
    sweep_cuda,
)

ARRAY_STRIDES = (1, 32)


def run_fig11(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[int, SweepResult]:
    """Scalar atomicCAS at block counts 1 and SMs (int/ull only)."""
    device = device or gpu_preset(3)
    specs = {dt.name: cuda_atomic_scalar_spec(PrimitiveKind.ATOMIC_CAS, dt)
             for dt in CAS_DTYPES}
    return {blocks: sweep_cuda(device, specs,
                               name=f"fig11/blocks={blocks}",
                               block_count=blocks, protocol=protocol)
            for blocks in (1, 2, device.spec.sm_count)}


def run_fig12(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[tuple[int, int], SweepResult]:
    """Array atomicCAS panels: (blocks, stride) in {1, SMs} x {1, 32}."""
    device = device or gpu_preset(3)
    panels = {}
    for blocks in (1, device.spec.sm_count):
        for stride in ARRAY_STRIDES:
            specs = {dt.name: cuda_atomic_array_spec(
                PrimitiveKind.ATOMIC_CAS, dt, stride) for dt in CAS_DTYPES}
            panels[(blocks, stride)] = sweep_cuda(
                device, specs, name=f"fig12/blocks={blocks}/stride={stride}",
                block_count=blocks, protocol=protocol)
    return panels


def claims_fig11(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 11 statements."""
    one = panels[1].series_by_label("int")
    two = panels[2].series_by_label("int")
    return [
        check("1-block configuration flat only up to 4 threads",
              flat_up_to(one, knee_x=4, tol=0.05)
              and drops_after(one, knee_x=4, factor=1.2)),
        check("2-block configuration flat only up to 2 threads",
              flat_up_to(two, knee_x=2, tol=0.05)
              and drops_after(two, knee_x=2, factor=1.2)),
        check("no warp-aggregation benefit: flat region ends before the "
              "warp size",
              drops_after(one, knee_x=8, factor=1.5)),
    ]


def claims_fig12(panels: dict[tuple[int, int], SweepResult],
                 device: GpuDevice | None = None) -> list[TrendCheck]:
    """Verify the paper's Fig. 12 statements."""
    device = device or gpu_preset(3)
    many = device.spec.sm_count
    one_s1 = panels[(1, 1)].series_by_label(INT.name)
    one_s32 = panels[(1, 32)].series_by_label(INT.name)
    many_s1 = panels[(many, 1)].series_by_label(INT.name)
    stride_ratio_one = geometric_mean_ratio(one_s1, one_s32)
    return [
        check("trends resemble the atomicAdd array results "
              "(higher blocks -> lower per-thread throughput)",
              series_above(one_s1, many_s1, min_ratio=2.0, frac=0.6)),
        check("at 1 block the trend is stride-independent",
              0.9 <= stride_ratio_one <= 1.1,
              detail=f"ratio={stride_ratio_one:.2f}"),
        check("1-block drop-off comes earlier than atomicAdd's "
              "(CAS unit is slower)",
              drops_after(one_s1, knee_x=64, factor=1.2)),
    ]
