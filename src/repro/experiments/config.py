"""Experiment configuration files (the artifact's ``config.h`` analog).

The artifact keeps global test parameters (``N_UNROLL``, ``N_RUNS``,
``n_iter``, thread ranges) in ``./include/config.h`` and a ``config.py``
at the repository root.  This module provides the same customization
point: a JSON file whose keys override the measurement protocol, loaded
by the CLI's ``--config`` flag.

Example ``config.json``::

    {
        "n_runs": 5,
        "max_attempts": 3,
        "n_iter": 500,
        "unroll": 50,
        "seed": 7
    }
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.core.protocol import MeasurementProtocol

#: Keys a config file may set (exactly the protocol's fields).
ALLOWED_KEYS = frozenset(f.name for f in fields(MeasurementProtocol))

#: Annotation string of each protocol field, the schema each config
#: value is validated against ("int", "float", "int | None", ...).
_FIELD_TYPES = {f.name: str(f.type) for f in fields(MeasurementProtocol)}


def _validate_value(key: str, value: object, path: Path) -> object:
    """Check one config value against the protocol field's schema.

    Returns the (possibly coerced) value.

    Raises:
        ConfigurationError: Naming the offending key, the expected type,
            and the value found — never a raw ``KeyError``/``TypeError``.
    """
    ftype = _FIELD_TYPES[key]
    optional = "None" in ftype
    base = ftype.replace(" | None", "")
    if value is None:
        if optional:
            return None
        raise ConfigurationError(
            f"config key {key!r} in {path} must not be null "
            f"(expected {base})")
    if isinstance(value, bool):
        raise ConfigurationError(
            f"config key {key!r} in {path} must be a number, got a "
            f"boolean ({value!r})")
    if base == "int":
        if not isinstance(value, int):
            raise ConfigurationError(
                f"config key {key!r} in {path} must be an integer, "
                f"got {value!r}")
        return value
    if not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"config key {key!r} in {path} must be a number, "
            f"got {value!r}")
    return float(value)


def load_config(path: str | Path) -> MeasurementProtocol:
    """Load a protocol from a JSON config file.

    Unknown keys are rejected loudly (a typo silently reverting to the
    default would invalidate a run without anyone noticing), and every
    value is validated against the protocol field's schema so that bad
    configs fail with a :class:`ConfigurationError` naming the offending
    key instead of a raw ``KeyError``/``TypeError`` deep in a campaign.

    Raises:
        ConfigurationError: for unreadable files, non-object JSON,
            unknown keys, mistyped values, or values the protocol
            rejects.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ConfigurationError(f"config file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"config file {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigurationError(
            f"config file {path} must contain a JSON object, got "
            f"{type(raw).__name__}")
    unknown = set(raw) - ALLOWED_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown config keys {sorted(unknown)}; allowed: "
            f"{sorted(ALLOWED_KEYS)}")
    clean = {key: _validate_value(key, value, path)
             for key, value in raw.items()}
    try:
        return MeasurementProtocol(**clean)
    except ConfigurationError as exc:
        raise ConfigurationError(f"config file {path}: {exc}") from exc


def write_example_config(path: str | Path) -> Path:
    """Write a commented example config (the artifact ships
    ``config.py.example``)."""
    path = Path(path)
    example = {f.name: getattr(MeasurementProtocol(), f.name)
               for f in fields(MeasurementProtocol)}
    path.write_text(json.dumps(example, indent=2) + "\n")
    return path
