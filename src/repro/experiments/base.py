"""Shared plumbing for the experiment modules.

Provides the spec builders (one per measured primitive, parameterized the
way Section IV parameterizes the tests) and the sweep drivers that run a
spec across thread counts (OpenMP) or launch configurations (CUDA).
"""

from __future__ import annotations

from functools import cache

from repro.common.datatypes import DataType
from repro.common.errors import MeasurementError
from repro.compiler.ops import Op, PrimitiveKind, Scope, op_atomic, \
    op_barrier, op_fence, op_plain_update
from repro.core.engine import MeasurementEngine
from repro.core.protocol import MeasurementProtocol
from repro.core.results import PointFailure, Series, SweepResult
from repro.core.spec import MeasurementSpec
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine
from repro.gpu.device import GpuDevice
from repro.gpu.multi import MultiGpu
from repro.gpu.spec import LaunchConfig, paper_thread_counts
from repro.mem.layout import PrivateArrayElement, SharedScalar

# --------------------------- OpenMP specs ------------------------------ #
#
# Every spec builder is memoized: specs are frozen value objects built
# from module-constant arguments, and a stable identity lets the
# engine's per-context plan cache and the machines' cost caches hit the
# tuple-compare identity shortcut instead of re-comparing op tuples
# field by field on every sweep point.


@cache
def omp_barrier_spec() -> MeasurementSpec:
    """``#pragma omp barrier`` (Fig. 1)."""
    return MeasurementSpec.single(
        "omp_barrier", op_barrier(),
        description="explicit OpenMP barrier")


@cache
def omp_atomic_update_scalar_spec(dtype: DataType) -> MeasurementSpec:
    """``#pragma omp atomic update`` on one shared variable (Fig. 2)."""
    op = op_atomic(PrimitiveKind.OMP_ATOMIC_UPDATE, dtype,
                   SharedScalar(dtype))
    return MeasurementSpec.single(f"omp_atomicadd_scalar_{dtype.name}", op)


@cache
def omp_atomic_capture_scalar_spec(dtype: DataType) -> MeasurementSpec:
    """``#pragma omp atomic capture`` on one shared variable (§V-A2)."""
    op = op_atomic(PrimitiveKind.OMP_ATOMIC_CAPTURE, dtype,
                   SharedScalar(dtype))
    return MeasurementSpec.single(f"omp_atomiccapture_scalar_{dtype.name}",
                                  op)


@cache
def omp_atomic_update_array_spec(dtype: DataType,
                                 stride: int) -> MeasurementSpec:
    """``atomic update`` on each thread's private array element (Fig. 3)."""
    op = op_atomic(PrimitiveKind.OMP_ATOMIC_UPDATE, dtype,
                   PrivateArrayElement(dtype, stride))
    return MeasurementSpec.single(
        f"omp_atomicadd_array_{dtype.name}_s{stride}", op)


@cache
def omp_atomic_write_spec(dtype: DataType) -> MeasurementSpec:
    """``atomic write`` to shared locations (Fig. 4).

    The paper's baseline writes one shared location and the test writes two
    on separate cache lines, isolating one atomic write.
    """
    op = op_atomic(PrimitiveKind.OMP_ATOMIC_WRITE, dtype, SharedScalar(dtype))
    return MeasurementSpec.single(f"omp_atomicwrite_{dtype.name}", op)


@cache
def omp_atomic_read_spec(dtype: DataType) -> MeasurementSpec:
    """Atomic read vs plain read (§V-A2): the overhead of atomicity."""
    plain = Op(kind=PrimitiveKind.PLAIN_READ, dtype=dtype,
               target=SharedScalar(dtype))
    atomic = Op(kind=PrimitiveKind.OMP_ATOMIC_READ, dtype=dtype,
                target=SharedScalar(dtype))
    return MeasurementSpec.contrast(f"omp_atomicread_{dtype.name}",
                                    plain, atomic)


@cache
def omp_critical_spec(dtype: DataType) -> MeasurementSpec:
    """Addition under ``#pragma omp critical`` (Fig. 5)."""
    op = op_atomic(PrimitiveKind.OMP_CRITICAL_UPDATE, dtype,
                   SharedScalar(dtype))
    return MeasurementSpec.single(f"omp_critical_{dtype.name}", op)


@cache
def omp_flush_spec(dtype: DataType, stride: int) -> MeasurementSpec:
    """``#pragma omp flush`` between two private-element updates (Fig. 6)."""
    target = PrivateArrayElement(dtype, stride)
    update1 = op_plain_update(dtype, target, label="arrayA")
    update2 = op_plain_update(dtype, target, label="arrayB")
    fence = op_fence(PrimitiveKind.OMP_FLUSH, target)
    return MeasurementSpec.inserted(
        f"omp_flush_{dtype.name}_s{stride}", (update1,), fence, (update2,))


# ---------------------------- CUDA specs ------------------------------- #


@cache
def cuda_syncthreads_spec() -> MeasurementSpec:
    """``__syncthreads()`` (Fig. 7)."""
    return MeasurementSpec.single(
        "cuda_syncthreads", op_barrier(PrimitiveKind.SYNCTHREADS))


@cache
def cuda_syncwarp_spec() -> MeasurementSpec:
    """``__syncwarp()`` (Fig. 8)."""
    return MeasurementSpec.single(
        "cuda_syncwarp", op_barrier(PrimitiveKind.SYNCWARP))


@cache
def cuda_atomic_scalar_spec(kind: PrimitiveKind,
                            dtype: DataType) -> MeasurementSpec:
    """A CUDA atomic on one shared variable (Figs. 9, 11, 13)."""
    op = op_atomic(kind, dtype, SharedScalar(dtype))
    return MeasurementSpec.single(
        f"cuda_{kind.value}_scalar_{dtype.name}", op)


@cache
def cuda_atomic_array_spec(kind: PrimitiveKind, dtype: DataType,
                           stride: int) -> MeasurementSpec:
    """A CUDA atomic on private array elements (Figs. 10, 12)."""
    op = op_atomic(kind, dtype, PrivateArrayElement(dtype, stride))
    return MeasurementSpec.single(
        f"cuda_{kind.value}_array_{dtype.name}_s{stride}", op)


@cache
def cuda_fence_spec(scope: Scope, dtype: DataType,
                    stride: int) -> MeasurementSpec:
    """``__threadfence*()`` between two private-element updates (Fig. 14)."""
    kind = {Scope.DEVICE: PrimitiveKind.THREADFENCE,
            Scope.BLOCK: PrimitiveKind.THREADFENCE_BLOCK,
            Scope.SYSTEM: PrimitiveKind.THREADFENCE_SYSTEM}[scope]
    target = PrivateArrayElement(dtype, stride)
    update1 = op_plain_update(dtype, target, label="arrayA")
    update2 = op_plain_update(dtype, target, label="arrayB")
    fence = op_fence(kind, target)
    return MeasurementSpec.inserted(
        f"cuda_{kind.value}_{dtype.name}_s{stride}", (update1,), fence,
        (update2,))


@cache
def cuda_grid_sync_spec() -> MeasurementSpec:
    """Cooperative ``grid.sync()`` across one device's grid."""
    return MeasurementSpec.single(
        "cuda_grid_sync", op_barrier(PrimitiveKind.GRID_SYNC))


@cache
def cuda_multi_grid_sync_spec() -> MeasurementSpec:
    """Cooperative ``multi_grid.sync()`` across every device's grid."""
    return MeasurementSpec.single(
        "cuda_multi_grid_sync", op_barrier(PrimitiveKind.MULTI_GRID_SYNC))


@cache
def cuda_atomic_scoped_spec(kind: PrimitiveKind, dtype: DataType,
                            scope: Scope) -> MeasurementSpec:
    """A CUDA atomic on one shared variable at an explicit scope
    (device vs system, the multi-GPU contention contrast)."""
    op = op_atomic(kind, dtype, SharedScalar(dtype), scope=scope)
    return MeasurementSpec.single(
        f"cuda_{kind.value}_{scope.value}_scalar_{dtype.name}", op)


@cache
def cuda_shfl_spec(kind: PrimitiveKind, dtype: DataType) -> MeasurementSpec:
    """A warp shuffle (Fig. 15); the result feeds the next iteration."""
    op = Op(kind=kind, dtype=dtype, result_used=True)
    return MeasurementSpec.single(f"cuda_{kind.value}_{dtype.name}", op)


@cache
def cuda_vote_spec(kind: PrimitiveKind,
                   result_used: bool = True) -> MeasurementSpec:
    """A warp vote (§V-B4).

    The paper could not record ``__ballot_sync()`` — "likely due to some
    optimization preventing it from being properly generated" — which we
    reproduce by building the ballot spec with an unused result, letting
    the DCE pass eliminate it.
    """
    op = Op(kind=kind, result_used=result_used)
    return MeasurementSpec.single(f"cuda_{kind.value}", op)


# ---------------------------- sweep drivers ---------------------------- #


def _measure_point(engine: MeasurementEngine, sweep: SweepResult,
                   series: Series, spec: MeasurementSpec, ctx: object,
                   x: float, label: str) -> None:
    """Measure one sweep point, recording failure instead of aborting.

    The robust path escalates (wider ``n_runs``) before giving up; a
    point that still cannot be measured — fault-injected campaigns only —
    lands in ``sweep.failures`` so the rest of the sweep survives.
    """
    try:
        result = engine.measure_robust(spec, ctx, label=label)
    except MeasurementError as exc:
        sweep.failures.append(PointFailure(
            series=series.label, x=x, error=type(exc).__name__,
            message=str(exc)))
        return
    series.add(x, result)


def omp_thread_counts(machine: CpuMachine) -> list[int]:
    """2 .. max hyperthreads (the paper omits 1: no sync needed serially)."""
    return list(range(2, machine.max_threads + 1))


def sweep_omp(machine: CpuMachine, specs: dict[str, MeasurementSpec], *,
              name: str, affinity: Affinity = Affinity.DEFAULT,
              protocol: MeasurementProtocol | None = None,
              thread_counts: list[int] | None = None) -> SweepResult:
    """Run each labelled spec across thread counts on a CPU.

    Returns:
        One sweep with a series per spec label, x = thread count.
    """
    engine = MeasurementEngine(machine, protocol)
    counts = thread_counts or omp_thread_counts(machine)
    sweep = SweepResult(name=name, x_label="threads", unit=machine.time_unit,
                        metadata={"machine": machine.name,
                                  "affinity": affinity.value})
    for label, spec in specs.items():
        series = Series(label=label)
        engine.prime(spec, [f"{label}/t={n}" for n in counts])
        for n in counts:
            ctx = machine.context(n, affinity)
            _measure_point(engine, sweep, series, spec, ctx, n,
                           label=f"{label}/t={n}")
        sweep.series.append(series)
    return sweep


def sweep_multigpu(multi: "MultiGpu", specs: dict[str, MeasurementSpec], *,
                   name: str, launch: LaunchConfig,
                   protocol: MeasurementProtocol | None = None,
                   device_counts: tuple[int, ...] = (1, 2, 4, 8)
                   ) -> SweepResult:
    """Run each labelled spec across device counts on a multi-GPU rig.

    Every device runs the same per-device launch shape (a cooperative
    multi-device launch requires it); the swept dimension is the number
    of participating devices.

    Returns:
        One sweep with a series per spec label, x = device count.
    """
    engine = MeasurementEngine(multi, protocol)
    sweep = SweepResult(name=name, x_label="devices",
                        unit=multi.time_unit,
                        metadata={"machine": multi.name,
                                  "interconnect": multi.interconnect.name,
                                  "blocks": launch.grid_blocks,
                                  "block_threads": launch.block_threads})
    for label, spec in specs.items():
        series = Series(label=label)
        engine.prime(spec, [f"{label}/d={d}" for d in device_counts])
        for d in device_counts:
            ctx = multi.context(d, launch)
            _measure_point(engine, sweep, series, spec, ctx, d,
                           label=f"{label}/d={d}")
        sweep.series.append(series)
    return sweep


def sweep_cuda(device: GpuDevice, specs: dict[str, MeasurementSpec], *,
               name: str, block_count: int,
               protocol: MeasurementProtocol | None = None,
               thread_counts: list[int] | None = None) -> SweepResult:
    """Run each labelled spec across per-block thread counts on a GPU.

    Returns:
        One sweep with a series per spec label, x = threads per block.
    """
    engine = MeasurementEngine(device, protocol)
    counts = thread_counts or paper_thread_counts()
    sweep = SweepResult(name=name, x_label="threads_per_block",
                        unit=device.time_unit,
                        metadata={"device": device.name,
                                  "blocks": block_count})
    for label, spec in specs.items():
        series = Series(label=label)
        engine.prime(spec, [f"{label}/b={block_count}/t={n}" for n in counts])
        for n in counts:
            ctx = device.context(LaunchConfig(block_count, n))
            _measure_point(engine, sweep, series, spec, ctx, n,
                           label=f"{label}/b={block_count}/t={n}")
        sweep.series.append(series)
    return sweep
