"""Fig. 7: ``__syncthreads()`` throughput.

Paper findings: constant up to the warp size (smaller thread counts still
run a whole warp with lanes disabled), dropping beyond as warps wait for
each other; identical for all block counts, because the barrier has no
cross-block dependencies.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check, drops_after, flat_up_to
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.gpu.spec import paper_block_counts
from repro.experiments.base import cuda_syncthreads_spec, sweep_cuda


def run_fig7(device: GpuDevice | None = None,
             protocol: MeasurementProtocol | None = None
             ) -> dict[int, SweepResult]:
    """One sweep per paper block count {1, 2, SMs/2, SMs, 2xSMs}."""
    device = device or gpu_preset(3)
    return {blocks: sweep_cuda(device,
                               {"syncthreads": cuda_syncthreads_spec()},
                               name=f"fig7/blocks={blocks}",
                               block_count=blocks, protocol=protocol)
            for blocks in paper_block_counts(device.spec)}


def claims_fig7(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 7 statements."""
    first = next(iter(panels.values())).series_by_label("syncthreads")
    identical = all(
        sweep.series_by_label("syncthreads").throughputs ==
        first.throughputs
        for sweep in panels.values())
    return [
        check("throughput constant up to the warp size (32 threads)",
              flat_up_to(first, knee_x=32, tol=0.05)),
        check("throughput drops beyond the warp size (warps wait for "
              "each other)",
              drops_after(first, knee_x=32, factor=1.5)),
        check("results identical for all block counts (no cross-block "
              "dependencies)", identical),
    ]
