"""Extension: OpenMP reduction strategies head to head.

The paper's recommendations imply an ordering for implementing a
reduction on the CPU: privatized per-thread accumulators (V-A5 (3)) beat
a shared atomic accumulator (V-A5 (2)), which beats a critical section
(V-A5 (5)).  This extension experiment runs all three strategies as real
programs on the OpenMP interpreter and checks both correctness and the
predicted ordering.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.openmp.interpreter import OpenMP
from repro.openmp.worksharing import ReduceOutcome, parallel_reduce

STRATEGIES = ("atomic", "critical", "privatized")


def run_reduction_strategies(machine: CpuMachine | None = None,
                             n: int = 1024, n_threads: int = 16
                             ) -> dict[str, ReduceOutcome]:
    """Sum 0..n-1 with each strategy on a paper CPU."""
    machine = machine or cpu_preset(3)
    omp = OpenMP(machine, n_threads=n_threads)
    return {strategy: parallel_reduce(omp, n, float, strategy=strategy)
            for strategy in STRATEGIES}


def claims_reduction_strategies(outcomes: dict[str, ReduceOutcome]
                                ) -> list[TrendCheck]:
    """Verify correctness and the predicted strategy ordering."""
    # All strategies must agree on the value.
    values = {s: o.value for s, o in outcomes.items()}
    times = {s: o.result.elapsed_ns for s, o in outcomes.items()}
    agree = len({round(v, 6) for v in values.values()}) == 1
    return [
        check("all three strategies compute the same sum", agree,
              detail=f"values={values}"),
        check("privatized reduction is fastest (V-A5 (3))",
              times["privatized"] < min(times["atomic"],
                                        times["critical"]),
              detail=", ".join(f"{s}={t / 1e3:.1f}us"
                               for s, t in times.items())),
        check("critical section is slowest (V-A5 (5))",
              times["critical"] > max(times["atomic"],
                                      times["privatized"])),
    ]
