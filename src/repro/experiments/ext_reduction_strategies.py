"""Extension: OpenMP reduction strategies head to head.

The paper's recommendations imply an ordering for implementing a
reduction on the CPU: privatized per-thread accumulators (V-A5 (3)) beat
a shared atomic accumulator (V-A5 (2)), which beats a critical section
(V-A5 (5)).  This extension experiment runs all three strategies as real
programs on the OpenMP interpreter and checks both correctness and the
predicted ordering.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.openmp.interpreter import OpenMP
from repro.openmp.worksharing import ReduceOutcome, parallel_reduce

STRATEGIES = ("atomic", "critical", "privatized")


def run_reduction_strategies(machine: CpuMachine | None = None,
                             n: int = 1024, n_threads: int = 16
                             ) -> dict[str, ReduceOutcome]:
    """Sum 0..n-1 with each strategy on a paper CPU.

    The strategies run on the interpreter's batched fast scheduler
    (race detection off — the bodies are race-free by construction);
    one extra run of the atomic strategy on the scalar reference
    scheduler rides along under the ``"atomic_reference"`` key so the
    claims can assert dispatch parity.
    """
    machine = machine or cpu_preset(3)
    omp = OpenMP(machine, n_threads=n_threads, detect_races=False)
    outcomes = {strategy: parallel_reduce(omp, n, float, strategy=strategy)
                for strategy in STRATEGIES}
    scalar = OpenMP(machine, n_threads=n_threads, detect_races=False,
                    fast=False)
    outcomes["atomic_reference"] = parallel_reduce(scalar, n, float,
                                                   strategy="atomic")
    return outcomes


def claims_reduction_strategies(outcomes: dict[str, ReduceOutcome]
                                ) -> list[TrendCheck]:
    """Verify correctness, the predicted ordering, and dispatch parity."""
    reference = outcomes.get("atomic_reference")
    outcomes = {s: o for s, o in outcomes.items()
                if s != "atomic_reference"}
    # All strategies must agree on the value.
    values = {s: o.value for s, o in outcomes.items()}
    times = {s: o.result.elapsed_ns for s, o in outcomes.items()}
    agree = len({round(v, 6) for v in values.values()}) == 1
    checks = [] if reference is None else [
        check("batched and scalar dispatch agree on the atomic strategy",
              reference.value == outcomes["atomic"].value
              and reference.result.elapsed_ns
              == outcomes["atomic"].result.elapsed_ns),
    ]
    return checks + [
        check("all three strategies compute the same sum", agree,
              detail=f"values={values}"),
        check("privatized reduction is fastest (V-A5 (3))",
              times["privatized"] < min(times["atomic"],
                                        times["critical"]),
              detail=", ".join(f"{s}={t / 1e3:.1f}us"
                               for s, t in times.items())),
        check("critical section is slowest (V-A5 (5))",
              times["critical"] > max(times["atomic"],
                                      times["privatized"])),
    ]
