"""Fig. 6: OpenMP flush between two private-element array updates.

Paper findings (System 2, affinity=close, strides 1/4/8/16): at stride 1
the throughput decays exponentially and plateaus around half the physical
cores; at strides 4 and 8 oscillations appear (more for 64-bit types) and
the 64-bit types jump once they escape false sharing; at stride 16 every
type has its own line and the flush costs almost nothing.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    is_roughly_nonincreasing,
    jump_between,
    noisiness,
)
from repro.common.datatypes import DTYPES
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import omp_flush_spec, sweep_omp

STRIDES = (1, 4, 8, 16)


def run_fig6(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None
             ) -> dict[int, SweepResult]:
    """One sweep per stride panel on System 2 (the paper's cleanest)."""
    machine = machine or cpu_preset(2)
    panels = {}
    for stride in STRIDES:
        specs = {dt.name: omp_flush_spec(dt, stride) for dt in DTYPES}
        panels[stride] = sweep_omp(machine, specs,
                                   name=f"fig6/stride={stride}",
                                   affinity=Affinity.CLOSE,
                                   protocol=protocol)
    return panels


def claims_fig6(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 6 statements."""
    s1, s4, s8, s16 = (panels[s] for s in STRIDES)
    return [
        check("stride 1: throughput decreases and plateaus",
              is_roughly_nonincreasing(
                  s1.series_by_label("int").finite_throughputs(), tol=0.4)),
        check("stride 4: oscillations appear (noisier than stride 1's "
              "plateau region)",
              noisiness(s4.series_by_label("double")) >
              0.5 * noisiness(s1.series_by_label("double"))),
        check("stride 8: 64-bit types' throughput increases substantially",
              jump_between(s4.series_by_label("ull"),
                           s8.series_by_label("ull"), 2.0)
              and jump_between(s4.series_by_label("double"),
                               s8.series_by_label("double"), 2.0)),
        check("stride 16: 32-bit types behave like the 64-bit types "
              "(everyone escapes false sharing)",
              jump_between(s8.series_by_label("int"),
                           s16.series_by_label("int"), 1.5)),
        check("without false sharing the flush has minimal per-thread "
              "impact (stride-16 throughput >> stride-1 throughput)",
              all(jump_between(s1.series_by_label(dt.name),
                               s16.series_by_label(dt.name), 3.0)
                  for dt in DTYPES)),
    ]
