"""Listing 1 / §II-C: the five max-reduction implementations.

Paper findings: of the first four versions, Reduction 3 is the fastest,
followed by Reduction 4, then Reduction 1, and Reduction 2 is the slowest;
Reduction 5 (persistent threads) outperforms all four and is about 2.5x
faster than Reduction 2 on the authors' input and GPU.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.trends import TrendCheck, check
from repro.gpu.costs import GpuCostParams
from repro.gpu.device import GpuDevice
from repro.gpu.spec import GpuSpec
from repro.reductions import ReductionOutcome, compare_reductions


def mini_gpu(sm_count: int = 8) -> GpuDevice:
    """A scaled-down RTX-4090-like device for functional simulation.

    The kernel interpreter executes one Python generator per CUDA thread,
    so the Listing 1 experiment runs on a device with fewer SMs and a
    proportionally smaller input; the contention/overhead ratios that
    decide the ordering are preserved.
    """
    return GpuDevice(GpuSpec(
        name=f"mini-4090-{sm_count}sm",
        compute_capability=8.9,
        clock_ghz=2.625,
        sm_count=sm_count,
        max_threads_per_sm=1536,
        cuda_cores_per_sm=128,
        memory_gb=4,
        full_speed_threads_per_sm=256,
    ), GpuCostParams())


def run_listing1(device: GpuDevice | None = None, size: int = 16384,
                 block_threads: int = 64,
                 seed: int = 0) -> dict[str, ReductionOutcome]:
    """Run all five reductions over the same random int input."""
    device = device or mini_gpu()
    rng = np.random.default_rng(seed)
    data = rng.integers(-2 ** 20, 2 ** 20, size=size).astype(np.int32)
    return compare_reductions(device, data, block_threads=block_threads)


def claims_listing1(outcomes: dict[str, ReductionOutcome]
                    ) -> list[TrendCheck]:
    """Verify the §II-C statements."""
    cycles = {name: o.elapsed_cycles for name, o in outcomes.items()}
    r1, r2, r3 = cycles["reduction1"], cycles["reduction2"], \
        cycles["reduction3"]
    r4, r5 = cycles["reduction4"], cycles["reduction5"]
    ratio = r2 / r5
    return [
        check("all five reductions compute the correct maximum",
              all(o.correct for o in outcomes.values())),
        check("of Reductions 1-4: R3 fastest, then R4, then R1, R2 slowest",
              r3 < r4 < r1 < r2,
              detail=", ".join(f"{k}={v:.0f}cy"
                               for k, v in sorted(cycles.items()))),
        check("Reduction 5 outperforms all four shown versions",
              r5 < min(r1, r2, r3, r4)),
        check("Reduction 5 is roughly 2.5x faster than Reduction 2",
              1.8 <= ratio <= 3.5, detail=f"R2/R5 = {ratio:.2f}x"),
    ]
