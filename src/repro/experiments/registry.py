"""The experiment registry: every paper table/figure, indexed by id.

Each :class:`ExperimentDef` bundles a runner (produces the experiment's
payload), a claims checker (turns the payload into
:class:`~repro.analysis.trends.TrendCheck` verdicts against the paper's
statements), and a sweep extractor (for CSV/chart output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.trends import TrendCheck
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.experiments import (
    cuda_atomicadd,
    cuda_atomiccas,
    cuda_atomicexch,
    cuda_shfl,
    cuda_syncthreads,
    cuda_syncwarp,
    cuda_threadfence,
    ext_cross_system,
    ext_divergence,
    ext_fault_tolerance,
    ext_reduction_strategies,
    ext_sanitizer,
    listing1,
    multigpu_sync,
    omp_atomic_array,
    omp_atomic_update,
    omp_atomic_write,
    omp_barrier,
    omp_critical,
    omp_flush,
    table1,
)


@dataclass(frozen=True)
class ExperimentDef:
    """One reproducible experiment.

    Attributes:
        exp_id: Index key ("fig1" ... "fig15", "table1", "listing1", ...).
        figure: The paper figure/table/section it reproduces.
        title: Human-readable description.
        kind: "openmp", "cuda", or "meta".
        run: Produces the payload (sweeps/outcomes), given a protocol.
        claims: Maps the payload to trend-check verdicts.
        sweeps: Extracts flat sweep results for CSV/chart output.
    """

    exp_id: str
    figure: str
    title: str
    kind: str
    run: Callable[[MeasurementProtocol | None], object]
    claims: Callable[[object], list[TrendCheck]]
    sweeps: Callable[[object], list[SweepResult]]


def _dict_sweeps(payload: object) -> list[SweepResult]:
    assert isinstance(payload, dict)
    return list(payload.values())


def _single_sweep(payload: object) -> list[SweepResult]:
    assert isinstance(payload, SweepResult)
    return [payload]


def _nested_sweeps(payload: object) -> list[SweepResult]:
    assert isinstance(payload, dict)
    out: list[SweepResult] = []
    for value in payload.values():
        if isinstance(value, SweepResult):
            out.append(value)
        else:
            out.extend(value.values())
    return out


def _build() -> dict[str, ExperimentDef]:
    defs = [
        ExperimentDef(
            "table1", "Table I", "System specifications", "meta",
            lambda proto=None: table1.run_table1(),
            table1.claims_table1,
            lambda payload: []),
        ExperimentDef(
            "fig1", "Fig. 1", "OpenMP barrier throughput", "openmp",
            lambda proto=None: omp_barrier.run_fig1(protocol=proto),
            omp_barrier.claims_fig1,
            _single_sweep),
        ExperimentDef(
            "fig2", "Fig. 2", "OpenMP atomic update on a shared variable",
            "openmp",
            lambda proto=None: omp_atomic_update.run_fig2(protocol=proto),
            omp_atomic_update.claims_fig2,
            _single_sweep),
        ExperimentDef(
            "fig2-capture", "§V-A2",
            "OpenMP atomic capture ~ atomic update", "openmp",
            lambda proto=None: {
                "update": omp_atomic_update.run_fig2(protocol=proto),
                "capture": omp_atomic_update.run_fig2_capture(
                    protocol=proto)},
            lambda payload: omp_atomic_update.claims_fig2_capture(
                payload["update"], payload["capture"]),
            _dict_sweeps),
        ExperimentDef(
            "fig3", "Fig. 3",
            "OpenMP atomic update on private array elements (strides)",
            "openmp",
            lambda proto=None: omp_atomic_array.run_fig3(protocol=proto),
            omp_atomic_array.claims_fig3,
            _dict_sweeps),
        ExperimentDef(
            "fig4", "Fig. 4", "OpenMP atomic write on two systems",
            "openmp",
            lambda proto=None: omp_atomic_write.run_fig4_both_systems(
                protocol=proto),
            omp_atomic_write.claims_fig4,
            _dict_sweeps),
        ExperimentDef(
            "omp-read", "§V-A2", "OpenMP atomic read has no overhead",
            "openmp",
            lambda proto=None: omp_atomic_write.run_atomic_read(
                protocol=proto),
            omp_atomic_write.claims_atomic_read,
            _single_sweep),
        ExperimentDef(
            "fig5", "Fig. 5", "OpenMP critical-section addition", "openmp",
            lambda proto=None: omp_critical.run_fig5(protocol=proto),
            omp_critical.claims_fig5,
            _single_sweep),
        ExperimentDef(
            "fig6", "Fig. 6", "OpenMP flush at several strides", "openmp",
            lambda proto=None: omp_flush.run_fig6(protocol=proto),
            omp_flush.claims_fig6,
            _dict_sweeps),
        ExperimentDef(
            "fig7", "Fig. 7", "CUDA __syncthreads()", "cuda",
            lambda proto=None: cuda_syncthreads.run_fig7(protocol=proto),
            cuda_syncthreads.claims_fig7,
            _dict_sweeps),
        ExperimentDef(
            "fig8", "Fig. 8", "CUDA __syncwarp() on two systems", "cuda",
            lambda proto=None: cuda_syncwarp.run_fig8_both_systems(
                protocol=proto),
            cuda_syncwarp.claims_fig8,
            _nested_sweeps),
        ExperimentDef(
            "fig9", "Fig. 9", "CUDA atomicAdd() on a shared variable",
            "cuda",
            lambda proto=None: cuda_atomicadd.run_fig9(protocol=proto),
            cuda_atomicadd.claims_fig9,
            _dict_sweeps),
        ExperimentDef(
            "fig10", "Fig. 10", "CUDA atomicAdd() on private elements",
            "cuda",
            lambda proto=None: cuda_atomicadd.run_fig10(protocol=proto),
            cuda_atomicadd.claims_fig10,
            _dict_sweeps),
        ExperimentDef(
            "fig11", "Fig. 11", "CUDA atomicCAS() on a shared variable",
            "cuda",
            lambda proto=None: cuda_atomiccas.run_fig11(protocol=proto),
            cuda_atomiccas.claims_fig11,
            _dict_sweeps),
        ExperimentDef(
            "fig12", "Fig. 12", "CUDA atomicCAS() on private elements",
            "cuda",
            lambda proto=None: cuda_atomiccas.run_fig12(protocol=proto),
            cuda_atomiccas.claims_fig12,
            _dict_sweeps),
        ExperimentDef(
            "fig13", "Fig. 13", "CUDA atomicExch()", "cuda",
            lambda proto=None: cuda_atomicexch.run_fig13(protocol=proto),
            cuda_atomicexch.claims_fig13,
            _dict_sweeps),
        ExperimentDef(
            "fig14", "Fig. 14", "CUDA __threadfence()", "cuda",
            lambda proto=None: cuda_threadfence.run_fig14(protocol=proto),
            cuda_threadfence.claims_fig14,
            _dict_sweeps),
        ExperimentDef(
            "fence-block", "§V-B3", "CUDA __threadfence_block()", "cuda",
            lambda proto=None: cuda_threadfence.run_fence_block(
                protocol=proto),
            cuda_threadfence.claims_fence_block,
            _dict_sweeps),
        ExperimentDef(
            "fence-system", "§V-B3", "CUDA __threadfence_system()", "cuda",
            lambda proto=None: {
                "device": cuda_threadfence.run_fig14(protocol=proto),
                "system": cuda_threadfence.run_fence_system(
                    protocol=proto)},
            lambda payload: cuda_threadfence.claims_fence_system(
                payload["device"], payload["system"]),
            _nested_sweeps),
        ExperimentDef(
            "fig15", "Fig. 15", "CUDA __shfl_sync()", "cuda",
            lambda proto=None: cuda_shfl.run_fig15(protocol=proto),
            cuda_shfl.claims_fig15,
            _dict_sweeps),
        ExperimentDef(
            "fig15-variants", "§V-B4", "Shuffle variants identical", "cuda",
            lambda proto=None: cuda_shfl.run_shfl_variants(protocol=proto),
            cuda_shfl.claims_shfl_variants,
            _single_sweep),
        ExperimentDef(
            "vote", "§V-B4", "Warp votes; ballot unrecordable", "cuda",
            lambda proto=None: cuda_shfl.run_votes(protocol=proto),
            cuda_shfl.claims_votes,
            _single_sweep),
        ExperimentDef(
            "listing1", "Listing 1", "Five reduction implementations",
            "cuda",
            lambda proto=None: listing1.run_listing1(),
            listing1.claims_listing1,
            lambda payload: []),
        ExperimentDef(
            "ext-divergence", "§VI [10]",
            "Branch divergence cost is constant (Bialas & Strzelecki)",
            "extension",
            lambda proto=None: ext_divergence.run_divergence(),
            ext_divergence.claims_divergence,
            lambda payload: []),
        ExperimentDef(
            "ext-cross-system", "§F (artifact)",
            "Headline trends hold on all three systems",
            "extension",
            lambda proto=None: ext_cross_system.run_cross_system(proto),
            ext_cross_system.claims_cross_system,
            _dict_sweeps),
        ExperimentDef(
            "ext-faults", "§IV (robustness)",
            "Protocol recovers under injected faults; degradation is "
            "flagged", "extension",
            lambda proto=None: ext_fault_tolerance.run_fault_tolerance(
                proto),
            ext_fault_tolerance.claims_fault_tolerance,
            _single_sweep),
        ExperimentDef(
            "ext-sanitizer", "§III (well-formedness)",
            "Static sync sanitizer detects every seeded defect class",
            "extension",
            lambda proto=None: ext_sanitizer.run_sanitizer(),
            ext_sanitizer.claims_sanitizer,
            lambda payload: []),
        ExperimentDef(
            "mg-sync", "§VII [Zhang et al.]",
            "Multi-GPU barrier and atomic scope family",
            "extension",
            lambda proto=None: {
                "barrier": multigpu_sync.run_mg_barrier(protocol=proto),
                "atomic": multigpu_sync.run_mg_atomic(protocol=proto)},
            lambda payload: multigpu_sync.claims_multigpu(
                payload["barrier"], payload["atomic"]),
            _dict_sweeps),
        ExperimentDef(
            "ext-reduce", "§V-A5",
            "Reduction strategies: privatized > atomic > critical",
            "extension",
            lambda proto=None:
                ext_reduction_strategies.run_reduction_strategies(),
            ext_reduction_strategies.claims_reduction_strategies,
            lambda payload: []),
    ]
    return {d.exp_id: d for d in defs}


EXPERIMENTS: dict[str, ExperimentDef] = _build()


def get_experiment(exp_id: str) -> ExperimentDef:
    """Look up an experiment by id.

    Raises:
        KeyError: with the list of valid ids.
    """
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; valid ids: "
                       f"{sorted(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id]


def experiments_of_kind(kind: str) -> list[ExperimentDef]:
    """All experiments of one kind ("openmp", "cuda", or "meta")."""
    return [d for d in EXPERIMENTS.values() if d.kind == kind]
