"""Extension: the paper's trends hold on all three systems.

The artifact's evaluation criterion is that "the same general trends
[are] evident on a majority of similar hardware" and the paper only shows
non-System-3 panels when they differ.  This experiment re-runs the
headline trend checks on *every* system and verifies they all hold:

* Fig. 1's barrier decay-then-plateau on all three CPUs;
* Fig. 2's integer-over-floating-point atomic gap on all three CPUs;
* Fig. 7's block-count-independent ``__syncthreads()`` on all three GPUs;
* Fig. 9's warp-aggregated flat int curve on all three GPUs.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    decreasing_then_stable,
    flat_up_to,
    series_above,
)
from repro.common.datatypes import DTYPES
from repro.compiler.ops import PrimitiveKind
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.affinity import Affinity
from repro.cpu.presets import cpu_preset
from repro.experiments.base import (
    cuda_atomic_scalar_spec,
    cuda_syncthreads_spec,
    omp_atomic_update_scalar_spec,
    omp_barrier_spec,
    sweep_cuda,
    sweep_omp,
)
from repro.gpu.presets import gpu_preset

SYSTEMS = (1, 2, 3)


def run_cross_system(protocol: MeasurementProtocol | None = None
                     ) -> dict[str, SweepResult]:
    """Headline sweeps on every system (CPU and GPU)."""
    payload: dict[str, SweepResult] = {}
    int_dtype = DTYPES[0]
    float_dtype = DTYPES[2]
    for system in SYSTEMS:
        machine = cpu_preset(system)
        payload[f"barrier/{system}"] = sweep_omp(
            machine, {"barrier": omp_barrier_spec()},
            name=f"cross/barrier/system{system}", affinity=Affinity.SPREAD,
            protocol=protocol)
        payload[f"atomic/{system}"] = sweep_omp(
            machine,
            {"int": omp_atomic_update_scalar_spec(int_dtype),
             "float": omp_atomic_update_scalar_spec(float_dtype)},
            name=f"cross/atomic/system{system}", protocol=protocol)
        device = gpu_preset(system)
        for blocks in (1, device.spec.sm_count):
            payload[f"syncthreads/{system}/{blocks}"] = sweep_cuda(
                device, {"syncthreads": cuda_syncthreads_spec()},
                name=f"cross/syncthreads/system{system}/b{blocks}",
                block_count=blocks, protocol=protocol)
        payload[f"atomicadd/{system}"] = sweep_cuda(
            device, {"int": cuda_atomic_scalar_spec(
                PrimitiveKind.ATOMIC_ADD, int_dtype)},
            name=f"cross/atomicadd/system{system}", block_count=2,
            protocol=protocol)
    return payload


def claims_cross_system(payload: dict[str, SweepResult]
                        ) -> list[TrendCheck]:
    """Verify the headline trends on every system's sweeps."""
    checks: list[TrendCheck] = []
    for system in SYSTEMS:
        barrier = payload[f"barrier/{system}"].series_by_label("barrier")
        checks.append(check(
            f"System {system}: barrier decays then plateaus (Fig. 1 trend)",
            decreasing_then_stable(barrier, knee_x=8, stable_tol=0.5)))
        atomic = payload[f"atomic/{system}"]
        checks.append(check(
            f"System {system}: int atomics beat float atomics "
            "(Fig. 2 trend)",
            series_above(atomic.series_by_label("int"),
                         atomic.series_by_label("float"), min_ratio=1.1,
                         frac=0.7)))
        device = gpu_preset(system)
        one = payload[f"syncthreads/{system}/1"] \
            .series_by_label("syncthreads")
        full = payload[f"syncthreads/{system}/{device.spec.sm_count}"] \
            .series_by_label("syncthreads")
        checks.append(check(
            f"System {system}: __syncthreads() independent of block count "
            "(Fig. 7 trend)", one.throughputs == full.throughputs))
        add = payload[f"atomicadd/{system}"].series_by_label("int")
        checks.append(check(
            f"System {system}: warp-aggregated int atomicAdd flat past "
            "the warp size (Fig. 9 trend)",
            flat_up_to(add, knee_x=64, tol=0.05)))
    return checks
