"""Fig. 4: OpenMP atomic write, plus the atomic-read non-result (§V-A2).

Paper findings for the write: the familiar exponentially-decreasing trend;
*no* data-type effect (no arithmetic is involved and 64-bit CPUs store
8 bytes in one transaction); System 3's AMD part shows notable jitter
compared with System 2.

For the read: the measured difference between an atomic read and a plain
read is within the timer's accuracy — atomic reads are free.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    geometric_mean_ratio,
    is_roughly_nonincreasing,
    noisiness,
)
from repro.common.datatypes import DTYPES
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import (
    omp_atomic_read_spec,
    omp_atomic_write_spec,
    sweep_omp,
)


def run_fig4(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None) -> SweepResult:
    """Atomic write on one system (call twice for the two-system figure)."""
    machine = machine or cpu_preset(3)
    specs = {dt.name: omp_atomic_write_spec(dt) for dt in DTYPES}
    return sweep_omp(machine, specs, name=f"fig4/{machine.name}",
                     protocol=protocol)


def run_fig4_both_systems(protocol: MeasurementProtocol | None = None
                          ) -> dict[int, SweepResult]:
    """The figure's two panels: System 3 (noisy AMD) and System 2."""
    return {3: run_fig4(cpu_preset(3), protocol),
            2: run_fig4(cpu_preset(2), protocol)}


def run_atomic_read(machine: CpuMachine | None = None,
                    protocol: MeasurementProtocol | None = None
                    ) -> SweepResult:
    """Atomic read vs plain read (§V-A2, no figure)."""
    machine = machine or cpu_preset(3)
    specs = {dt.name: omp_atomic_read_spec(dt) for dt in DTYPES}
    return sweep_omp(machine, specs, name="omp-read", protocol=protocol)


def claims_fig4(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 4 statements."""
    sys3, sys2 = panels[3], panels[2]
    size_ratio = geometric_mean_ratio(sys2.series_by_label("int"),
                                      sys2.series_by_label("double"))
    amd_noise = max(noisiness(s) for s in sys3.series)
    intel_noise = max(noisiness(s) for s in sys2.series)
    return [
        check("exponentially decreasing trend (on the cleaner system)",
              is_roughly_nonincreasing(
                  sys2.series_by_label("int").finite_throughputs(),
                  tol=0.35)),
        check("data-type size has no observable effect on atomic write",
              0.7 <= size_ratio <= 1.4,
              detail=f"int/double={size_ratio:.2f}"),
        check("System 3 (AMD) shows notably more jitter than System 2",
              amd_noise > 1.5 * intel_noise,
              detail=f"AMD noise={amd_noise:.3f}, "
                     f"Intel noise={intel_noise:.3f}"),
    ]


def claims_atomic_read(sweep: SweepResult) -> list[TrendCheck]:
    """Atomic reads carry no measurable overhead."""
    checks = []
    for series in sweep.series:
        within = all(p.result.within_timer_accuracy or
                     (p.result.per_op_time is not None and
                      abs(p.result.per_op_time) < 2.0)
                     for p in series.points)
        checks.append(check(
            f"atomic read overhead within timer accuracy ({series.label})",
            within))
    return checks
