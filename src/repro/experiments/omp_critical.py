"""Fig. 5: addition on one shared variable under an OpenMP critical section.

Paper findings: the trend resembles the atomic counterpart (Fig. 2) but
throughput drops more quickly and is lower — critical sections should only
be used when no alternative exists.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    is_roughly_nonincreasing,
    series_above,
)
from repro.common.datatypes import INT
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import (
    omp_atomic_update_scalar_spec,
    omp_critical_spec,
    sweep_omp,
)


def run_fig5(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None) -> SweepResult:
    """Critical-section add alongside the equivalent atomic, for contrast."""
    machine = machine or cpu_preset(3)
    specs = {
        "critical": omp_critical_spec(INT),
        "atomic": omp_atomic_update_scalar_spec(INT),
    }
    return sweep_omp(machine, specs, name="fig5", affinity=Affinity.SPREAD,
                     protocol=protocol)


def claims_fig5(sweep: SweepResult) -> list[TrendCheck]:
    """Verify the paper's Fig. 5 statements."""
    critical = sweep.series_by_label("critical")
    atomic = sweep.series_by_label("atomic")

    # "drops more quickly": relative decline from the 2-thread value to the
    # plateau is steeper for the critical section.
    def decline(series) -> float:
        first = series.throughput_at(2)
        tail = series.finite_throughputs()[-5:]
        return first / (sum(tail) / len(tail))

    return [
        check("critical-section throughput is lower than the atomic's",
              series_above(atomic, critical, min_ratio=1.5)),
        check("critical-section throughput drops more quickly",
              decline(critical) > decline(atomic),
              detail=f"critical decline={decline(critical):.1f}x, "
                     f"atomic decline={decline(atomic):.1f}x"),
        check("throughput decreases with thread count",
              is_roughly_nonincreasing(critical.finite_throughputs(),
                                       tol=0.35)),
    ]
