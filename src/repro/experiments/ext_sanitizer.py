"""Extension: validate the static sync sanitizer against seeded defects.

The dynamic detectors (``cuda/race.py``, ``openmp/race.py``) are
validated by injecting faults and checking they fire; this experiment
does the same for the *static* pass.  Every rule in
:mod:`repro.sanitize` is run against its seeded-defect corpus entry
(:mod:`repro.sanitize.corpus`): the bad kernel must produce exactly the
expected rule at the expected severity and nothing else, and the clean
twin must be silent.  On top of the corpus, the whole shipped kernel
surface (workloads, reductions, experiments, examples) is scanned and
must report zero errors and warnings — the zero-false-positive
guarantee the pre-launch ``lint=`` check depends on — and the op-IR
layer is validated with a deadlocking and an unbalanced lock stream.

The deterministic :func:`summary_text` rendering of the payload is part
of the golden reference corpus (``results/reference``), so any rule
drift — a rule that stops firing, fires at a different severity, or
starts flagging shipped kernels — shows up in ``golden --verify``.
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check
from repro.common.datatypes import INT
from repro.compiler.ops import Op, PrimitiveKind
from repro.sanitize import sanitize_ops, sanitize_paths
from repro.sanitize.__main__ import default_paths
from repro.sanitize.corpus import CORPUS, corpus_reports


def _lock_op(kind: PrimitiveKind, name: str) -> Op:
    return Op(kind=kind, dtype=INT, label=name)


def _ops_payload() -> dict:
    """Exercise the op-IR checks: an ABBA cycle, an unbalanced stream,
    and a well-formed lock pair."""
    acq = lambda n: _lock_op(PrimitiveKind.OMP_LOCK_ACQUIRE, n)  # noqa: E731
    rel = lambda n: _lock_op(PrimitiveKind.OMP_LOCK_RELEASE, n)  # noqa: E731
    abba = sanitize_ops((acq("a"), acq("b"), rel("b"), rel("a"),
                         acq("b"), acq("a"), rel("a"), rel("b")),
                        source="ops:abba")
    unbalanced = sanitize_ops((acq("a"),), source="ops:unbalanced")
    balanced = sanitize_ops((acq("a"), rel("a")), source="ops:balanced")
    return {
        "abba_errors": len(abba.errors),
        "unbalanced_warnings": len(unbalanced.warnings),
        "balanced_clean": balanced.clean and not balanced.advice,
    }


def run_sanitizer() -> dict:
    """Run every rule over its corpus pair plus the shipped surface.

    Returns:
        A payload dict: per-rule corpus outcomes, surface scan counts,
        and op-IR check outcomes.  Everything in it is deterministic.
    """
    rules: dict[str, dict] = {}
    for case_id in sorted(CORPUS):
        case = CORPUS[case_id]
        bad, clean = corpus_reports(case_id)
        fired = [f for f in bad.findings if f.rule == case.rule]
        rules[case_id] = {
            "expected_severity": case.severity.value,
            "fired": len(fired),
            "severities": sorted({f.severity.value for f in fired}),
            "cross_rule": len(bad.findings) - len(fired),
            "clean_findings": len(clean.findings),
        }
    surface = sanitize_paths(default_paths())
    return {
        "rules": rules,
        "surface": {
            "errors": len(surface.errors),
            "warnings": len(surface.warnings),
            "clean": surface.clean,
        },
        "ops": _ops_payload(),
    }


def claims_sanitizer(payload: dict) -> list[TrendCheck]:
    """The detection and zero-false-positive claims."""
    checks: list[TrendCheck] = []
    for rule, row in sorted(payload["rules"].items()):
        checks.append(check(
            f"rule {rule} fires on its seeded defect "
            f"({row['fired']} finding(s))", row["fired"] >= 1))
        checks.append(check(
            f"rule {rule} reports severity {row['expected_severity']}",
            row["severities"] == [row["expected_severity"]]))
        checks.append(check(
            f"rule {rule} stays silent on the clean twin",
            row["clean_findings"] == 0))
        checks.append(check(
            f"rule {rule}'s seeded defect trips no other rule",
            row["cross_rule"] == 0))
    checks.append(check(
        "shipped workloads/reductions/experiments/examples are "
        "sanitizer-clean (zero errors, zero warnings)",
        payload["surface"]["clean"]
        and payload["surface"]["errors"] == 0
        and payload["surface"]["warnings"] == 0))
    checks.append(check(
        "op-IR pass flags the ABBA lock cycle",
        payload["ops"]["abba_errors"] >= 1))
    checks.append(check(
        "op-IR pass flags the unbalanced lock stream",
        payload["ops"]["unbalanced_warnings"] >= 1))
    checks.append(check(
        "op-IR pass accepts the balanced lock stream",
        payload["ops"]["balanced_clean"]))
    return checks


def summary_text(payload: dict) -> str:
    """Deterministic rule-drift summary for the golden corpus.

    Deliberately excludes the surface *kernel count* (adding a workload
    is not rule drift) but includes the surface clean verdict (a new
    false positive is).
    """
    lines = ["ext-sanitizer rule validation",
             "rule,expected_severity,fired,severities,cross_rule,"
             "clean_findings"]
    for rule, row in sorted(payload["rules"].items()):
        lines.append(
            f"{rule},{row['expected_severity']},{row['fired']},"
            f"{'+'.join(row['severities'])},{row['cross_rule']},"
            f"{row['clean_findings']}")
    lines.append(
        "surface_clean,"
        + ("yes" if payload["surface"]["clean"] else "no"))
    lines.append(
        "ops,abba_errors={a},unbalanced_warnings={u},"
        "balanced_clean={b}".format(
            a=payload["ops"]["abba_errors"],
            u=payload["ops"]["unbalanced_warnings"],
            b="yes" if payload["ops"]["balanced_clean"] else "no"))
    return "\n".join(lines) + "\n"
