"""Golden reference results.

The artifact ships the raw results from its three test systems
(``./results/system*/``).  This module is the reproduction's equivalent:
a corpus of reference CSVs for headline sweeps, generated with the
default protocol (fully deterministic), checked into ``results/reference``
and guarded by a regression test — any accidental cost-model or protocol
drift shows up as a corpus mismatch, with intentional recalibration
requiring an explicit ``--write``.

Usage::

    python -m repro.experiments.golden --verify   # compare against disk
    python -m repro.experiments.golden --write    # regenerate the corpus
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable

from repro.core.results import SweepResult
from repro.faults.scenario import use_faults

#: Headline sweeps in the corpus: corpus id -> producer of one sweep.
GOLDEN_SWEEPS: dict[str, Callable[[], SweepResult]] = {}

#: Text artifacts in the corpus: corpus id -> producer of the exact
#: file contents (stored as ``<id>.txt``).  Same drift discipline as
#: the CSV sweeps, for deterministic non-sweep payloads.
GOLDEN_TEXTS: dict[str, Callable[[], str]] = {}


def _register(corpus_id: str):
    def wrap(func: Callable[[], SweepResult]):
        GOLDEN_SWEEPS[corpus_id] = func
        return func
    return wrap


def _register_text(corpus_id: str):
    def wrap(func: Callable[[], str]):
        GOLDEN_TEXTS[corpus_id] = func
        return func
    return wrap


@_register("fig1_barrier")
def _fig1() -> SweepResult:
    from repro.experiments.omp_barrier import run_fig1
    return run_fig1()


@_register("fig2_atomic_update")
def _fig2() -> SweepResult:
    from repro.experiments.omp_atomic_update import run_fig2
    return run_fig2()


@_register("fig3_stride8")
def _fig3() -> SweepResult:
    from repro.experiments.omp_atomic_array import run_fig3
    return run_fig3()[8]


@_register("fig5_critical")
def _fig5() -> SweepResult:
    from repro.experiments.omp_critical import run_fig5
    return run_fig5()


@_register("fig7_syncthreads")
def _fig7() -> SweepResult:
    from repro.experiments.cuda_syncthreads import run_fig7
    return run_fig7()[1]


@_register("fig9_atomicadd_b2")
def _fig9() -> SweepResult:
    from repro.experiments.cuda_atomicadd import run_fig9
    return run_fig9()[2]


@_register("fig11_atomiccas_b1")
def _fig11() -> SweepResult:
    from repro.experiments.cuda_atomiccas import run_fig11
    return run_fig11()[1]


@_register("fig15_shfl_full")
def _fig15() -> SweepResult:
    from repro.experiments.cuda_shfl import run_fig15
    return run_fig15()["full"]


@_register("mg_barrier")
def _mg_barrier() -> SweepResult:
    from repro.experiments.multigpu_sync import run_mg_barrier
    return run_mg_barrier()


@_register("mg_atomic")
def _mg_atomic() -> SweepResult:
    from repro.experiments.multigpu_sync import run_mg_atomic
    return run_mg_atomic()


@_register_text("ext_sanitizer_summary")
def _ext_sanitizer() -> str:
    from repro.experiments.ext_sanitizer import run_sanitizer, summary_text
    return summary_text(run_sanitizer())


def default_corpus_dir() -> Path:
    """``results/reference`` next to the repository's source tree."""
    return Path(__file__).resolve().parents[3] / "results" / "reference"


def write_golden(root: Path) -> list[Path]:
    """(Re)generate the corpus under ``root``.

    The corpus is pinned fault-free: an active fault scenario (e.g. a
    campaign running under ``--faults`` in the same process) is masked
    for the duration of the regeneration.
    """
    root.mkdir(parents=True, exist_ok=True)
    written = []
    with use_faults(None):
        for corpus_id, producer in GOLDEN_SWEEPS.items():
            path = root / f"{corpus_id}.csv"
            path.write_text(producer().to_csv())
            written.append(path)
        for corpus_id, text_producer in GOLDEN_TEXTS.items():
            path = root / f"{corpus_id}.txt"
            path.write_text(text_producer())
            written.append(path)
    return written


def verify_golden(root: Path,
                  timings: dict[str, float] | None = None) -> list[str]:
    """Regenerate every corpus sweep and diff against disk.

    Runs fault-free regardless of any active fault scenario (the corpus
    is the fault-free oracle).

    Args:
        root: Corpus directory.
        timings: If given, filled with per-corpus regeneration seconds
            (so corpus drift and perf drift diagnose from one run).

    Returns:
        Mismatch descriptions (empty when the corpus is clean).
    """
    problems = []
    entries: list[tuple[str, str, Callable[[], str]]] = [
        (corpus_id, f"{corpus_id}.csv",
         (lambda p=producer: p().to_csv()))
        for corpus_id, producer in GOLDEN_SWEEPS.items()]
    entries.extend(
        (corpus_id, f"{corpus_id}.txt", text_producer)
        for corpus_id, text_producer in GOLDEN_TEXTS.items())
    for corpus_id, filename, produce in entries:
        path = root / filename
        if not path.exists():
            problems.append(f"{corpus_id}: missing {path}")
            continue
        expected = path.read_text()
        start = time.perf_counter()
        with use_faults(None):
            actual = produce()
        if timings is not None:
            timings[corpus_id] = time.perf_counter() - start
        if actual != expected:
            exp_lines = expected.splitlines()
            act_lines = actual.splitlines()
            first_diff = next(
                (i for i, (a, b) in enumerate(zip(act_lines, exp_lines))
                 if a != b), min(len(act_lines), len(exp_lines)))
            problems.append(
                f"{corpus_id}: drift at line {first_diff + 1} "
                f"(expected {exp_lines[first_diff] if first_diff < len(exp_lines) else '<eof>'!r}, "
                f"got {act_lines[first_diff] if first_diff < len(act_lines) else '<eof>'!r})")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry: ``--write`` regenerates, default verifies."""
    argv = argv if argv is not None else sys.argv[1:]
    root = default_corpus_dir()
    if argv and argv[0] == "--write":
        written = write_golden(root)
        print(f"wrote {len(written)} reference files under {root}")
        return 0
    timings: dict[str, float] = {}
    problems = verify_golden(root, timings=timings)
    for corpus_id, seconds in timings.items():
        print(f"  {corpus_id:<24s} {seconds * 1e3:8.1f} ms")
    if timings:
        print(f"  {'total':<24s} {sum(timings.values()) * 1e3:8.1f} ms")
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}")
        return 1
    print(f"corpus clean: {len(GOLDEN_SWEEPS)} sweeps + "
          f"{len(GOLDEN_TEXTS)} text artifacts match {root}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
