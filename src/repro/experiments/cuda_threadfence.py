"""Fig. 14 and §V-B3: the ``__threadfence*()`` family.

Paper findings: the device-wide fence's throughput is fairly constant
regardless of thread count, block count, or stride (the cost is draining
the load/store buffers).  ``__threadfence_system()`` behaves like the
device fence but erratically (PCIe round trips).  ``__threadfence_block()``
measures at or near zero above the warp size and at strides above 2,
because the accesses it orders were not going to be reordered anyway.
"""

from __future__ import annotations

import math

from repro.analysis.trends import TrendCheck, check, is_roughly_constant, \
    noisiness
from repro.common.datatypes import INT
from repro.compiler.ops import Scope
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import cuda_fence_spec, sweep_cuda

STRIDES = (1, 32)


def _fence_panels(device: GpuDevice, scope: Scope,
                  protocol: MeasurementProtocol | None,
                  figure: str) -> dict[tuple[int, int], SweepResult]:
    panels = {}
    for blocks in (1, device.spec.sm_count):
        for stride in STRIDES:
            specs = {"fence": cuda_fence_spec(scope, INT, stride)}
            panels[(blocks, stride)] = sweep_cuda(
                device, specs,
                name=f"{figure}/blocks={blocks}/stride={stride}",
                block_count=blocks, protocol=protocol)
    return panels


def run_fig14(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[tuple[int, int], SweepResult]:
    """Device-wide ``__threadfence()`` panels."""
    device = device or gpu_preset(3)
    return _fence_panels(device, Scope.DEVICE, protocol, "fig14")


def run_fence_block(device: GpuDevice | None = None,
                    protocol: MeasurementProtocol | None = None
                    ) -> dict[tuple[int, int], SweepResult]:
    """``__threadfence_block()`` panels (§V-B3, no figure)."""
    device = device or gpu_preset(3)
    return _fence_panels(device, Scope.BLOCK, protocol, "fence-block")


def run_fence_system(device: GpuDevice | None = None,
                     protocol: MeasurementProtocol | None = None
                     ) -> dict[tuple[int, int], SweepResult]:
    """``__threadfence_system()`` panels (§V-B3, no figure)."""
    device = device or gpu_preset(3)
    return _fence_panels(device, Scope.SYSTEM, protocol, "fence-system")


def claims_fig14(panels: dict[tuple[int, int], SweepResult]
                 ) -> list[TrendCheck]:
    """Verify the paper's Fig. 14 statements."""
    all_throughputs: list[float] = []
    per_panel_flat = []
    for sweep in panels.values():
        ts = sweep.series_by_label("fence").finite_throughputs()
        per_panel_flat.append(is_roughly_constant(ts, tol=0.1))
        all_throughputs.extend(ts)
    return [
        check("fence throughput constant across thread counts",
              all(per_panel_flat)),
        check("fence throughput constant across block counts and strides",
              is_roughly_constant(all_throughputs, tol=0.1)),
    ]


def claims_fence_block(panels: dict[tuple[int, int], SweepResult]
                       ) -> list[TrendCheck]:
    """Verify the §V-B3 block-fence statements."""
    near_zero = []
    small_flat = []
    for (blocks, stride), sweep in panels.items():
        for p in sweep.series_by_label("fence").points:
            cost = p.result.per_op_time
            if cost is None:
                continue
            if p.x > 32 and stride > 2:
                near_zero.append(abs(cost) < 2.0)
            elif p.x <= 32:
                small_flat.append(cost > 2.0)
    return [
        check("above the warp size and strides above 2, measured runtimes "
              "are at or near zero", bool(near_zero) and all(near_zero)),
        check("within the warp size the fence has a small constant cost",
              bool(small_flat) and all(small_flat)),
    ]


def claims_fence_system(device_panels: dict[tuple[int, int], SweepResult],
                        system_panels: dict[tuple[int, int], SweepResult]
                        ) -> list[TrendCheck]:
    """System fence ~ device fence in shape, but more erratic."""
    dev_noise = []
    sys_noise = []
    slower = []
    for key in device_panels:
        dev_series = device_panels[key].series_by_label("fence")
        sys_series = system_panels[key].series_by_label("fence")
        dev_noise.append(noisiness(dev_series))
        sys_noise.append(noisiness(sys_series))
        dev_mean = _mean(dev_series.finite_throughputs())
        sys_mean = _mean(sys_series.finite_throughputs())
        slower.append(sys_mean < dev_mean)
    return [
        check("system fence is slower than the device fence (PCIe)",
              all(slower)),
        check("system fence is more erratic than the device fence",
              _mean(sys_noise) > _mean(dev_noise),
              detail=f"system noise={_mean(sys_noise):.3f}, "
                     f"device noise={_mean(dev_noise):.3f}"),
    ]


def _mean(values: list[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else float("nan")
