"""Figs. 9 and 10: ``atomicAdd()`` on a shared scalar and on private
array elements.

Paper findings for the scalar (Fig. 9, block counts 2 and 64): the int
curve is flat past the warp size thanks to warp-aggregated atomics (the
2-block configuration stays flat to 64 threads); there is a clear gap
between int and the other three types; ull beats the floating-point types
but trails int (32-bit GPU datapaths).

For the array (Fig. 10, strides 1/32, blocks 1/128): no aggregation
benefit; higher block counts lower per-thread throughput (fixed total
atomic rate); at one block the trend is stride-independent, while at many
blocks the stride changes the curve.
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    flat_up_to,
    geometric_mean_ratio,
    saturates,
    series_above,
)
from repro.common.datatypes import DTYPES, INT
from repro.compiler.ops import PrimitiveKind
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import (
    cuda_atomic_array_spec,
    cuda_atomic_scalar_spec,
    sweep_cuda,
)

ARRAY_STRIDES = (1, 32)


def run_fig9(device: GpuDevice | None = None,
             protocol: MeasurementProtocol | None = None
             ) -> dict[int, SweepResult]:
    """Scalar atomicAdd at the figure's block counts: 2 and SMs/2."""
    device = device or gpu_preset(3)
    block_counts = (2, device.spec.sm_count // 2)
    specs = {dt.name: cuda_atomic_scalar_spec(PrimitiveKind.ATOMIC_ADD, dt)
             for dt in DTYPES}
    return {blocks: sweep_cuda(device, specs,
                               name=f"fig9/blocks={blocks}",
                               block_count=blocks, protocol=protocol)
            for blocks in block_counts}


def run_fig10(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[tuple[int, int], SweepResult]:
    """Array atomicAdd panels: (blocks, stride) in {1, SMs} x {1, 32}."""
    device = device or gpu_preset(3)
    panels = {}
    for blocks in (1, device.spec.sm_count):
        for stride in ARRAY_STRIDES:
            specs = {dt.name: cuda_atomic_array_spec(
                PrimitiveKind.ATOMIC_ADD, dt, stride) for dt in DTYPES}
            panels[(blocks, stride)] = sweep_cuda(
                device, specs, name=f"fig10/blocks={blocks}/stride={stride}",
                block_count=blocks, protocol=protocol)
    return panels


def claims_fig9(panels: dict[int, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 9 statements."""
    blocks = sorted(panels)
    two = panels[blocks[0]]
    half_sm = panels[blocks[1]]
    int2 = two.series_by_label("int")
    return [
        check("int flat past the warp size at 2 blocks (warp aggregation), "
              "up to 64 threads",
              flat_up_to(int2, knee_x=64, tol=0.05)),
        check("gap between int and the other three types",
              series_above(int2, two.series_by_label("ull"), min_ratio=1.3,
                           frac=0.6)
              and series_above(int2, two.series_by_label("float"),
                               min_ratio=1.3, frac=0.6)),
        check("ull faster than floating-point but slower than int",
              series_above(two.series_by_label("ull"),
                           two.series_by_label("float"), min_ratio=1.2,
                           frac=0.6)),
        check("half-SM block count yields lower absolute throughput",
              series_above(int2, half_sm.series_by_label("int"),
                           min_ratio=1.5, frac=0.6)),
        check("int flat up to the warp size even at many blocks",
              flat_up_to(half_sm.series_by_label("int"), knee_x=32,
                         tol=0.05)),
    ]


def claims_fig10(panels: dict[tuple[int, int], SweepResult],
                 device: GpuDevice | None = None) -> list[TrendCheck]:
    """Verify the paper's Fig. 10 statements."""
    device = device or gpu_preset(3)
    many = device.spec.sm_count
    one_s1 = panels[(1, 1)].series_by_label(INT.name)
    one_s32 = panels[(1, 32)].series_by_label(INT.name)
    many_s1 = panels[(many, 1)].series_by_label(INT.name)
    many_s32 = panels[(many, 32)].series_by_label(INT.name)
    stride_ratio_one = geometric_mean_ratio(one_s1, one_s32)
    stride_ratio_many = geometric_mean_ratio(many_s1, many_s32)
    return [
        check("higher block count lowers per-thread throughput",
              series_above(one_s1, many_s1, min_ratio=2.0, frac=0.6)),
        check("at 1 block the trend is the same regardless of stride",
              0.9 <= stride_ratio_one <= 1.1,
              detail=f"stride-1/stride-32 ratio at 1 block = "
                     f"{stride_ratio_one:.2f}"),
        check("at many blocks the stride changes the curve",
              not 0.95 <= stride_ratio_many <= 1.05,
              detail=f"stride-1/stride-32 ratio at {many} blocks = "
                     f"{stride_ratio_many:.2f}"),
        check("the downward trend reflects a fixed total atomic rate "
              "(aggregate throughput saturates)",
              saturates(many_s32, multiplier=many)),
    ]
