"""Fig. 2: OpenMP atomic update on a single shared variable.

Paper findings: same trend as the barrier (decrease, then stable beyond
~8 threads); integer types faster than floating-point; word size (32 vs
64 bit) does not matter on 64-bit CPUs.  Atomic capture behaves nearly
identically (§V-A2, no figure).
"""

from __future__ import annotations

from repro.analysis.trends import (
    TrendCheck,
    check,
    decreasing_then_stable,
    geometric_mean_ratio,
    series_above,
)
from repro.common.datatypes import DTYPES
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import cpu_preset
from repro.experiments.base import (
    omp_atomic_capture_scalar_spec,
    omp_atomic_update_scalar_spec,
    sweep_omp,
)


def run_fig2(machine: CpuMachine | None = None,
             protocol: MeasurementProtocol | None = None) -> SweepResult:
    """Atomic update on one shared variable, all four data types."""
    machine = machine or cpu_preset(3)
    specs = {dt.name: omp_atomic_update_scalar_spec(dt) for dt in DTYPES}
    return sweep_omp(machine, specs, name="fig2", protocol=protocol)


def run_fig2_capture(machine: CpuMachine | None = None,
                     protocol: MeasurementProtocol | None = None
                     ) -> SweepResult:
    """Atomic capture counterpart (§V-A2: nearly identical to update)."""
    machine = machine or cpu_preset(3)
    specs = {dt.name: omp_atomic_capture_scalar_spec(dt) for dt in DTYPES}
    return sweep_omp(machine, specs, name="fig2-capture", protocol=protocol)


def claims_fig2(sweep: SweepResult) -> list[TrendCheck]:
    """Verify the paper's Fig. 2 statements."""
    int_s = sweep.series_by_label("int")
    ull_s = sweep.series_by_label("ull")
    float_s = sweep.series_by_label("float")
    double_s = sweep.series_by_label("double")
    word_ratio_int = geometric_mean_ratio(int_s, ull_s)
    word_ratio_fp = geometric_mean_ratio(float_s, double_s)
    return [
        check("same decrease-then-plateau trend as the barrier",
              decreasing_then_stable(int_s, knee_x=8)),
        check("integer types faster than floating-point types",
              series_above(int_s, float_s, min_ratio=1.1)
              and series_above(ull_s, double_s, min_ratio=1.1)),
        check("word size does not affect performance (int ~ ull, "
              "float ~ double)",
              0.75 <= word_ratio_int <= 1.3 and
              0.75 <= word_ratio_fp <= 1.3,
              detail=f"int/ull={word_ratio_int:.2f}, "
                     f"float/double={word_ratio_fp:.2f}"),
    ]


def claims_fig2_capture(update: SweepResult,
                        capture: SweepResult) -> list[TrendCheck]:
    """Capture ~ update, per §V-A2."""
    checks = []
    for dt in DTYPES:
        ratio = geometric_mean_ratio(capture.series_by_label(dt.name),
                                     update.series_by_label(dt.name))
        checks.append(check(
            f"atomic capture ~ atomic update for {dt.name}",
            0.8 <= ratio <= 1.25, detail=f"capture/update={ratio:.2f}"))
    return checks
