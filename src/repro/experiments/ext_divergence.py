"""Extension: the cost of thread divergence (Bialas & Strzelecki).

The paper's timing methodology is "heavily inspired" by Bialas &
Strzelecki's micro-benchmark of CUDA branch divergence, whose headline
finding is that "the cost of a diverging branch is essentially constant"
on a given architecture.  This extension experiment replicates that
finding on the functional kernel interpreter: kernels with a varying
number of two-way divergent branches are executed, and the added cost per
branch is checked for constancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trends import TrendCheck, check, is_roughly_constant
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig

_SHARED = {"s": (1, np.dtype(np.int64))}


@dataclass(frozen=True)
class DivergencePoint:
    """Measured cost of a kernel with ``n_branches`` divergent branches.

    Attributes:
        n_branches: Divergent two-way branches in the kernel.
        elapsed_cycles: Runtime on the default (batched) dispatcher.
        divergent_passes: Diverged warp passes the interpreter observed.
        reference_cycles: Runtime of the same launch on the scalar
            reference dispatcher — must equal ``elapsed_cycles``.
    """

    n_branches: int
    elapsed_cycles: float
    divergent_passes: int
    reference_cycles: float = 0.0


def _kernel_with_branches(n_branches: int):
    def kernel(t):
        for _ in range(n_branches):
            if t.lane % 2 == 0:
                yield t.alu(1)
            else:
                yield t.shared_read("s", 0)
        # A uniform tail so every kernel does some common work.
        yield t.alu(4)

    return kernel


def run_divergence(device: GpuDevice | None = None,
                   branch_counts: tuple[int, ...] = (0, 2, 4, 8, 16),
                   ) -> list[DivergencePoint]:
    """Execute kernels with increasing numbers of divergent branches."""
    if device is None:
        from repro.experiments.listing1 import mini_gpu
        device = mini_gpu(sm_count=2)
    cuda = Cuda(device)
    reference = Cuda(device, fast=False)
    points = []
    for n in branch_counts:
        result = cuda.launch(_kernel_with_branches(n), LaunchConfig(1, 32),
                             shared_decls=_SHARED)
        ref = reference.launch(_kernel_with_branches(n),
                               LaunchConfig(1, 32), shared_decls=_SHARED)
        points.append(DivergencePoint(
            n_branches=n, elapsed_cycles=result.elapsed_cycles,
            divergent_passes=result.stats.divergent_passes,
            reference_cycles=ref.elapsed_cycles))
    return points


def claims_divergence(points: list[DivergencePoint]) -> list[TrendCheck]:
    """Verify the Bialas & Strzelecki finding on the reproduced data."""
    by_n = {p.n_branches: p for p in points}
    ns = sorted(by_n)
    per_branch = []
    base = by_n[ns[0]]
    for n in ns[1:]:
        per_branch.append(
            (by_n[n].elapsed_cycles - base.elapsed_cycles)
            / (n - ns[0]))
    return [
        check("diverged kernels are slower than uniform ones",
              all(by_n[n].elapsed_cycles > base.elapsed_cycles
                  for n in ns[1:])),
        check("the cost of a diverging branch is essentially constant",
              is_roughly_constant(per_branch, tol=0.05),
              detail=f"per-branch cycles: "
                     f"{[round(c, 1) for c in per_branch]}"),
        check("every divergent branch is observed by the interpreter",
              all(by_n[n].divergent_passes == n for n in ns)),
        check("batched and scalar dispatch agree cycle-for-cycle",
              all(p.elapsed_cycles == p.reference_cycles
                  for p in points)),
    ]
