"""Fig. 15 and §V-B4: warp shuffles and warp votes.

Paper findings: ``__shfl_sync()`` behaves like ``__syncwarp()`` (it
implies one); 64-bit types need two 32-bit shuffle instructions, so their
throughput drops at half the thread count of the 32-bit types; the up,
down, and xor variants perform identically.  The vote functions behave
like ``__syncwarp()`` at slightly lower throughput, and ``__ballot_sync``
could not be reliably recorded (an optimization eliminated it).
"""

from __future__ import annotations

from repro.analysis.trends import TrendCheck, check, geometric_mean_ratio
from repro.common.datatypes import DTYPES, INT
from repro.compiler.ops import PrimitiveKind
from repro.core.protocol import MeasurementProtocol
from repro.core.results import SweepResult
from repro.gpu.device import GpuDevice
from repro.gpu.presets import gpu_preset
from repro.experiments.base import (
    cuda_shfl_spec,
    cuda_syncwarp_spec,
    cuda_vote_spec,
    sweep_cuda,
)

SHFL_VARIANTS = (
    PrimitiveKind.SHFL_SYNC,
    PrimitiveKind.SHFL_UP_SYNC,
    PrimitiveKind.SHFL_DOWN_SYNC,
    PrimitiveKind.SHFL_XOR_SYNC,
)


def run_fig15(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None
              ) -> dict[str, SweepResult]:
    """``__shfl_sync()`` at full and double block counts, four dtypes."""
    device = device or gpu_preset(3)
    sms = device.spec.sm_count
    specs = {dt.name: cuda_shfl_spec(PrimitiveKind.SHFL_SYNC, dt)
             for dt in DTYPES}
    return {
        "full": sweep_cuda(device, specs, name="fig15/full",
                           block_count=sms, protocol=protocol),
        "double": sweep_cuda(device, specs, name="fig15/double",
                             block_count=2 * sms, protocol=protocol),
    }


def run_shfl_variants(device: GpuDevice | None = None,
                      protocol: MeasurementProtocol | None = None
                      ) -> SweepResult:
    """The four shuffle variants side by side (int, full blocks)."""
    device = device or gpu_preset(3)
    specs = {kind.value: cuda_shfl_spec(kind, INT)
             for kind in SHFL_VARIANTS}
    return sweep_cuda(device, specs, name="fig15-variants",
                      block_count=device.spec.sm_count, protocol=protocol)


def run_votes(device: GpuDevice | None = None,
              protocol: MeasurementProtocol | None = None) -> SweepResult:
    """Votes vs syncwarp; ballot built the way the authors' test was
    (result unused), so the optimizer removes it."""
    device = device or gpu_preset(3)
    specs = {
        "syncwarp": cuda_syncwarp_spec(),
        "all_sync": cuda_vote_spec(PrimitiveKind.VOTE_ALL),
        "any_sync": cuda_vote_spec(PrimitiveKind.VOTE_ANY),
        "ballot_sync": cuda_vote_spec(PrimitiveKind.VOTE_BALLOT,
                                      result_used=False),
    }
    return sweep_cuda(device, specs, name="vote",
                      block_count=device.spec.sm_count, protocol=protocol)


def _knee_of(series) -> float:
    peak = max(series.finite_throughputs())
    knee = 0.0
    for p in series.points:
        if p.throughput >= 0.99 * peak:
            knee = max(knee, p.x)
    return knee


def claims_fig15(panels: dict[str, SweepResult]) -> list[TrendCheck]:
    """Verify the paper's Fig. 15 statements."""
    full = panels["full"]
    int_knee = _knee_of(full.series_by_label("int"))
    double_knee = _knee_of(full.series_by_label("double"))
    ratio32 = geometric_mean_ratio(full.series_by_label("int"),
                                   full.series_by_label("float"))
    return [
        check("64-bit types drop at half the thread count of 32-bit types",
              double_knee == int_knee / 2,
              detail=f"int knee={int_knee:g}, double knee={double_knee:g}"),
        check("32-bit types beat 64-bit types (one shuffle instruction "
              "instead of two)",
              geometric_mean_ratio(full.series_by_label("int"),
                                   full.series_by_label("ull")) > 1.5),
        check("same-width types perform identically",
              0.95 <= ratio32 <= 1.05, detail=f"int/float={ratio32:.2f}"),
    ]


def claims_shfl_variants(sweep: SweepResult) -> list[TrendCheck]:
    """Up/down/xor variants identical to the basic shuffle."""
    base = sweep.series_by_label(PrimitiveKind.SHFL_SYNC.value)
    checks = []
    for kind in SHFL_VARIANTS[1:]:
        ratio = geometric_mean_ratio(sweep.series_by_label(kind.value), base)
        checks.append(check(
            f"{kind.value} performs identically to shfl_sync",
            0.99 <= ratio <= 1.01, detail=f"ratio={ratio:.3f}"))
    return checks


def claims_votes(sweep: SweepResult) -> list[TrendCheck]:
    """Verify the §V-B4 vote statements."""
    sync = sweep.series_by_label("syncwarp")
    all_s = sweep.series_by_label("all_sync")
    any_s = sweep.series_by_label("any_sync")
    ballot = sweep.series_by_label("ballot_sync")
    ballot_unrecordable = all(p.result.unrecordable for p in ballot.points)
    return [
        check("vote functions behave like __syncwarp() at slightly lower "
              "throughput",
              0.5 <= geometric_mean_ratio(all_s, sync) < 1.0
              and 0.5 <= geometric_mean_ratio(any_s, sync) < 1.0),
        check("__ballot_sync() is unrecordable (eliminated by the "
              "optimizer)", ballot_unrecordable),
    ]
