"""Chrome/Perfetto ``trace_events`` serialization helpers.

The Trace Event Format (the JSON consumed by Perfetto and
``chrome://tracing``) models a trace as a flat list of events with
integer ``pid``/``tid`` tracks.  This module is the one place that
format is spelled out; both interpreter trace classes
(:meth:`repro.cuda.trace.Trace.to_chrome_trace`,
:meth:`repro.openmp.trace.CpuTrace.to_chrome_trace`) and the recorder
exporter (:mod:`repro.obs.export`) delegate here, so GPU warp passes,
OpenMP requests, and wall-clock spans all land in one file and render
on one timeline.

Timestamps: ``ts``/``dur`` are microseconds by convention.  Wall-clock
spans are converted from seconds; modeled timelines keep their native
unit (1 trace-µs = 1 modeled cycle/ns — the absolute scale of a modeled
clock is arbitrary, only the shape matters) and say so in their track
names.
"""

from __future__ import annotations


def complete_event(name: str, pid: int, tid: int, ts: float,
                   dur: float, cat: str = "",
                   args: dict | None = None) -> dict:
    """One ``ph: "X"`` (complete) trace event."""
    record = {"name": name, "ph": "X", "pid": pid, "tid": tid,
              "ts": ts, "dur": dur}
    if cat:
        record["cat"] = cat
    if args:
        record["args"] = args
    return record


def instant_event(name: str, pid: int, tid: int, ts: float,
                  args: dict | None = None) -> dict:
    """One ``ph: "i"`` (instant) trace event."""
    record = {"name": name, "ph": "i", "s": "t", "pid": pid, "tid": tid,
              "ts": ts}
    if args:
        record["args"] = args
    return record


def metadata_events(pid: int, process_name: str,
                    thread_names: dict[int, str] | None = None
                    ) -> list[dict]:
    """``ph: "M"`` records naming one pid track and its tid rows."""
    events = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
               "args": {"name": process_name}}]
    for tid, name in (thread_names or {}).items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": name}})
    return events


def rows_to_chrome(rows: list[tuple], pid: int, unit: str,
                   source: str = "") -> list[dict]:
    """Convert normalized timeline rows into trace events.

    Args:
        rows: ``(track, label, start, end)`` tuples — ``track`` is a
            human-readable row name (``"block 0 / warp 1"``,
            ``"thread 3"``) in the modeled clock's units.
        pid: The pid track these rows render under.
        unit: The modeled clock unit, shown in the process name.
        source: Optional track-group label prefixed to the process
            name (``"cuda"``, ``"openmp"``).

    Returns:
        Metadata events (process/thread names) followed by one complete
        event per row, in row order.
    """
    tids: dict[str, int] = {}
    events: list[dict] = []
    for track, label, start, end in rows:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
        events.append(complete_event(label, pid, tid, start,
                                     end - start, cat=source or "model"))
    title = f"{source} timeline ({unit})" if source \
        else f"timeline ({unit})"
    return metadata_events(
        pid, title, {tid: track for track, tid in tids.items()}) + events


def chrome_payload(events: list[dict]) -> dict:
    """Wrap trace events in the standard top-level JSON object."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}
