"""Unified observability: spans, counters, and exportable timelines.

Zero-dependency (stdlib-only) tracing/metrics layer shared by the
measurement engine, both kernel interpreters, the fault injector, and
the campaign runner.  Three pieces:

* **Counters/gauges** (:mod:`repro.obs.metrics`) — process-wide,
  always on, monotonic.  ``fast passes + scalar fallbacks == total
  passes`` style identities are part of their contract; the bench
  suite's engagement tripwires assert on their deltas.
* **Spans/events** (:mod:`repro.obs.recorder`) — hierarchical timed
  sections and instant markers, recorded only while a
  :class:`Recorder` is installed (default: none, a strict no-op).
* **Exporters** (:mod:`repro.obs.export`) — JSONL event log,
  Chrome/Perfetto ``trace_events`` JSON (wall-clock spans plus
  attached CUDA/OpenMP modeled timelines on one file), and a
  Prometheus-style text snapshot.  ``python -m repro.obs.report``
  summarizes a JSONL log.

Surface it from the CLI with
``syncperf ... --obs out.jsonl --obs-trace out.trace.json
--obs-metrics out.prom``.  See ``docs/observability.md``.
"""

from repro.obs.context import (
    TraceContext,
    TraceStore,
    current_context,
    maybe_context,
    stitched_chrome,
    traced_execution,
    use_context,
)
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.hist import LatencyHistogram
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    counter,
    counter_value,
    counters_delta,
    counters_snapshot,
    gauge,
)
from repro.obs.recorder import (
    Recorder,
    attach_timeline,
    event,
    get_recorder,
    recording,
    set_recorder,
    span,
)

__all__ = [
    "FLIGHT",
    "FlightRecorder",
    "LatencyHistogram",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Recorder",
    "TraceContext",
    "TraceStore",
    "attach_timeline",
    "count",
    "counter",
    "counter_value",
    "counters_delta",
    "counters_snapshot",
    "current_context",
    "event",
    "gauge",
    "get_recorder",
    "maybe_context",
    "recording",
    "set_recorder",
    "span",
    "stitched_chrome",
    "traced_execution",
    "use_context",
]


def count(name: str, n: int = 1) -> None:
    """Bump the process-wide counter ``name`` by ``n`` (convenience for
    call sites too cold to bind a :class:`Counter` object)."""
    REGISTRY.counter(name).add(n)
