"""Mergeable log-bucketed latency histograms.

The service's latency story used to be two gauges recomputed by
sorting a 512-sample window on every request — O(n log n) per
observation, a bounded window that forgets history, and nothing a
second process could combine with.  :class:`LatencyHistogram` replaces
that with the standard fixed-bucket design:

* **O(1) observe** — a binary search over ~28 geometric bucket bounds
  plus three adds under a lock;
* **mergeable** — two histograms over the same bounds combine by
  element-wise addition (:meth:`merge`), and :meth:`diff` subtracts a
  baseline snapshot, so client (loadgen) and server distributions, or
  a run window of a long-lived daemon, reconcile exactly;
* **quantiles at read time** — :meth:`percentile` interpolates within
  the covering bucket, computed only when someone asks (``/healthz``,
  the dashboard), never on the hot path;
* **Prometheus exposition** — :meth:`prometheus_lines` renders the
  standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
  triple, and :meth:`from_prometheus` parses it back, which is how the
  load generator audits the daemon's exposition byte-for-byte.

Default bounds cover 1 µs to ~2 minutes in milliseconds (factor-2
growth), which brackets everything from a cache hit to a deadline-kill
retry ladder; everything above the last bound lands in the implicit
``+Inf`` bucket.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

#: Default bucket upper bounds, in ms: 0.001 * 2**i for i in 0..27.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(
    0.001 * (2.0 ** i) for i in range(28))

_BUCKET_RE = re.compile(
    r'^(?P<name>[A-Za-z0-9_:]+)_bucket\{le="(?P<le>[^"]+)"\}\s+'
    r'(?P<value>\d+(?:\.\d+)?)\s*$')


def _fmt_bound(bound: float) -> str:
    """Canonical ``le`` label for a bound (round-trips via ``float``)."""
    return repr(bound)


class LatencyHistogram:
    """A thread-safe, mergeable histogram over fixed log-spaced buckets.

    Args:
        bounds: Strictly increasing bucket *upper* bounds; a final
            implicit ``+Inf`` bucket catches the overflow.  All merge/
            diff partners must share the exact bounds.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must strictly increase")
        #: Per-bucket (non-cumulative) counts; last slot is +Inf.
        self.counts = [0] * (len(self.bounds) + 1)
        #: Total observations.
        self.count = 0
        #: Sum of observed values.
        self.sum = 0.0
        self._lock = threading.Lock()

    # ------------------------------ writes ------------------------------ #

    def observe(self, value: float) -> None:
        """Record one observation (O(log buckets), no allocation)."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (element-wise add)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        snapshot = other.snapshot()
        with self._lock:
            for index, n in enumerate(snapshot["counts"]):
                self.counts[index] += n
            self.count += snapshot["count"]
            self.sum += snapshot["sum"]

    # ------------------------------ reads ------------------------------- #

    def snapshot(self) -> dict:
        """A consistent point-in-time copy (JSON-safe)."""
        with self._lock:
            return {"bounds": list(self.bounds),
                    "counts": list(self.counts),
                    "count": self.count,
                    "sum": self.sum}

    @classmethod
    def from_snapshot(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`snapshot` output."""
        hist = cls(tuple(payload["bounds"]))
        counts = list(payload["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("snapshot counts do not match bounds")
        hist.counts = counts
        hist.count = int(payload["count"])
        hist.sum = float(payload["sum"])
        return hist

    def diff(self, baseline: "LatencyHistogram") -> "LatencyHistogram":
        """This histogram minus a ``baseline`` snapshot of it.

        The window view a long-lived daemon needs: observe forever,
        subtract the start-of-run baseline, reconcile the window.
        """
        if baseline.bounds != self.bounds:
            raise ValueError("cannot diff histograms with different "
                             "bucket bounds")
        current, base = self.snapshot(), baseline.snapshot()
        window = LatencyHistogram(self.bounds)
        window.counts = [c - b for c, b in
                         zip(current["counts"], base["counts"])]
        if any(n < 0 for n in window.counts):
            raise ValueError("baseline is not a prefix of this "
                             "histogram")
        window.count = current["count"] - base["count"]
        window.sum = current["sum"] - base["sum"]
        return window

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1), interpolated within its bucket.

        The first bucket interpolates from 0; the ``+Inf`` bucket
        reports its lower bound (no finite upper edge to blend to).
        Returns 0.0 on an empty histogram.
        """
        snapshot = self.snapshot()
        total = snapshot["count"]
        if total <= 0:
            return 0.0
        rank = max(1.0, q * total)
        cumulative = 0
        for index, n in enumerate(snapshot["counts"]):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) \
                    else lower
                fraction = (rank - cumulative) / n
                return round(lower + fraction * (upper - lower), 3)
            cumulative += n
        return round(self.bounds[-1], 3)  # pragma: no cover - defensive

    def percentiles(self, *qs: float) -> tuple[float, ...]:
        """Several quantiles from one consistent snapshot pass."""
        return tuple(self.percentile(q) for q in qs)

    # --------------------------- Prometheus ----------------------------- #

    def prometheus_lines(self, name: str) -> list[str]:
        """Standard Prometheus histogram exposition lines.

        Cumulative ``<name>_bucket{le="..."}`` per bound plus
        ``+Inf``, then ``<name>_sum`` and ``<name>_count``.
        """
        snapshot = self.snapshot()
        lines = [f"# TYPE {name} histogram"]
        cumulative = 0
        for bound, n in zip(self.bounds, snapshot["counts"]):
            cumulative += n
            lines.append(
                f'{name}_bucket{{le="{_fmt_bound(bound)}"}} {cumulative}')
        cumulative += snapshot["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {snapshot['sum']!r}")
        lines.append(f"{name}_count {snapshot['count']}")
        return lines

    @classmethod
    def from_prometheus(cls, text: str,
                        name: str) -> "LatencyHistogram":
        """Parse one histogram back out of a text exposition.

        The inverse of :meth:`prometheus_lines` — used by the load
        generator to reconcile the daemon's served distribution against
        its own.  Raises ``ValueError`` when the series is absent or
        the cumulative counts are not monotone.
        """
        bounds: list[float] = []
        cumulative: list[float] = []
        total = None
        span_sum = None
        for line in text.splitlines():
            line = line.strip()
            match = _BUCKET_RE.match(line)
            if match and match.group("name") == name:
                le = match.group("le")
                value = float(match.group("value"))
                if le == "+Inf":
                    cumulative.append(value)
                else:
                    bounds.append(float(le))
                    cumulative.append(value)
                continue
            if line.startswith(f"{name}_sum "):
                span_sum = float(line.split()[-1])
            elif line.startswith(f"{name}_count "):
                total = float(line.split()[-1])
        if not bounds or total is None or span_sum is None:
            raise ValueError(f"no histogram series {name!r} in text")
        if len(cumulative) != len(bounds) + 1:
            raise ValueError(f"{name}: missing +Inf bucket")
        hist = cls(tuple(bounds))
        previous = 0.0
        for index, value in enumerate(cumulative):
            if value < previous:
                raise ValueError(f"{name}: non-monotone cumulative "
                                 f"bucket at index {index}")
            hist.counts[index] = int(value - previous)
            previous = value
        hist.count = int(total)
        hist.sum = span_sum
        if hist.count != sum(hist.counts):
            raise ValueError(f"{name}: _count disagrees with buckets")
        return hist
