"""Process-wide counters and gauges.

Counters are the always-on half of the observability layer: monotonic
integers that the instrumented hot seams (engine kernels, interpreter
dispatch loops, the RNG pool, fault injection, campaign checkpointing)
bump regardless of whether a :class:`~repro.obs.recorder.Recorder` is
installed.  They are deliberately cheap — an attribute increment plus a
``None`` check — and the hot loops accumulate locally and flush one
``add`` per block/region, so disabled observability stays within noise
of the uninstrumented paths (the ``python -m repro.bench`` regression
gate pins that down).

Gauges are last-value-wins floats for levels rather than totals
(e.g. worker counts).

When a recorder *is* installed, every ``add``/``set`` is forwarded to it
through a one-slot subscriber hook, giving the JSONL event log a
replayable stream of deltas and the recorder its run-scoped totals.
The hook lives here (rather than the recorder importing us back) to
keep the dependency graph acyclic: this module imports nothing from
:mod:`repro`.

Naming convention: dotted lowercase paths, ``<layer>.<what>`` — e.g.
``engine.attempts``, ``interp.cuda.uniform_passes``,
``campaign.checkpoint_writes``.  See ``docs/observability.md`` for the
full taxonomy.
"""

from __future__ import annotations

from typing import Callable, Iterator

#: One-slot subscriber: ``(kind, name, value)`` with kind ``"count"``
#: (value = delta) or ``"gauge"`` (value = new level).  Installed by
#: :func:`repro.obs.recorder.set_recorder`; ``None`` keeps metric
#: updates registry-only.
_SUBSCRIBER: list[Callable[[str, str, float], None] | None] = [None]


def set_subscriber(
        callback: Callable[[str, str, float], None] | None) -> None:
    """Install (or clear, with ``None``) the metric-update subscriber."""
    _SUBSCRIBER[0] = callback


class Counter:
    """A process-wide monotonic counter.

    Obtain instances through :func:`counter` (get-or-create by name) so
    every caller shares one total; hot paths may bind the returned
    object once and call :meth:`add` directly.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (and notify an installed recorder)."""
        self.value += n
        subscriber = _SUBSCRIBER[0]
        if subscriber is not None:
            subscriber("count", self.name, n)


class Gauge:
    """A process-wide last-value-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level (and notify an installed recorder)."""
        self.value = value
        subscriber = _SUBSCRIBER[0]
        if subscriber is not None:
            subscriber("gauge", self.name, value)


class MetricsRegistry:
    """The process-wide metric table (name -> :class:`Counter`/
    :class:`Gauge`).

    One instance, :data:`REGISTRY`, serves the whole process; totals are
    monotonic for the process lifetime, so callers interested in one
    run's activity sample before/after and take deltas (what the bench
    tripwires and the recorder's run-scoped totals both do).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            metric = Counter(name)
            self._counters[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = Gauge(name)
            self._gauges[name] = metric
        return metric

    def counters(self) -> dict[str, int]:
        """Snapshot of every counter total, sorted by name."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def gauges(self) -> dict[str, float]:
        """Snapshot of every gauge level, sorted by name."""
        return {name: self._gauges[name].value
                for name in sorted(self._gauges)}

    def __iter__(self) -> Iterator[str]:
        """Iterate counter names, then gauge names."""
        yield from self._counters
        yield from self._gauges


#: The process-wide registry every instrumented module shares.
REGISTRY = MetricsRegistry()


def counters_snapshot(
        prefixes: tuple[str, ...] | None = None) -> dict[str, int]:
    """Snapshot counter totals, optionally filtered by name prefixes.

    The before-half of a delta window: snapshot, do work, call
    :func:`counters_delta` with the snapshot to get exactly what the
    work bumped.  Per-request attribution and the forked workers'
    shipped deltas are both built on this pair.
    """
    return {name: metric.value
            for name, metric in REGISTRY._counters.items()
            if prefixes is None or name.startswith(prefixes)}


def counters_delta(before: dict[str, int],
                   prefixes: tuple[str, ...] | None = None
                   ) -> dict[str, int]:
    """Non-zero counter movement since a :func:`counters_snapshot`."""
    deltas: dict[str, int] = {}
    for name, metric in REGISTRY._counters.items():
        if prefixes is not None and not name.startswith(prefixes):
            continue
        delta = metric.value - before.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


def counter(name: str) -> Counter:
    """Get or create a process-wide counter (see :data:`REGISTRY`)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a process-wide gauge (see :data:`REGISTRY`)."""
    return REGISTRY.gauge(name)


def counter_value(name: str) -> int:
    """Current total of a counter (0 if never touched)."""
    return REGISTRY.counter(name).value
