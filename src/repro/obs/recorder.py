"""The span/event recorder behind ``syncperf --obs``.

A :class:`Recorder` collects, in memory and in order:

* **spans** — hierarchical timed sections opened with :func:`span`
  (``with span("engine.measure", spec=...)``), each carrying wall-clock
  start/end (relative to the recorder's epoch), a parent link, and
  free-form attributes;
* **events** — instant markers (:func:`event`), e.g. one per
  ``measure_robust`` escalation retry;
* **counter/gauge deltas** — forwarded from
  :mod:`repro.obs.metrics` while the recorder is installed, so the
  event log carries a replayable stream whose sums reconcile with the
  final snapshot;
* **timelines** — modeled-time interpreter traces
  (:class:`repro.cuda.trace.Trace` warp passes,
  :class:`repro.openmp.trace.CpuTrace` requests) attached through
  :func:`attach_timeline` so GPU and OpenMP activity export onto one
  Chrome/Perfetto file next to the wall-clock spans.

The default is **no recorder**: every module-level helper here reads one
global and returns immediately when it is ``None``, so instrumented
paths stay bit-identical and within noise of their uninstrumented
behaviour.  Install one for a block with::

    from repro.obs import Recorder, recording, span

    rec = Recorder()
    with recording(rec):
        with span("campaign", experiments=3):
            ...

Recorders are process-local: campaign workers (``--jobs N``) and forked
block executors inherit a copy at fork time and their recordings die
with them — run with ``jobs=1`` when a complete span tree matters.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import context as _context
from repro.obs import metrics as _metrics

#: The installed recorder (``None`` = observability off, the default).
_RECORDER: "Recorder | None" = None


class Recorder:
    """An in-memory sink for spans, events, and metric deltas.

    Args:
        clock: Monotonic seconds source (injectable for deterministic
            tests); defaults to :func:`time.perf_counter`.  The first
            reading becomes the epoch: every recorded timestamp is
            seconds since recorder creation.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        #: Every record, in completion order (spans append when closed).
        self.events: list[dict] = []
        #: Run-scoped counter totals (sums of forwarded deltas).
        self.counters: dict[str, int] = {}
        #: Run-scoped gauge levels (last forwarded value).
        self.gauges: dict[str, float] = {}
        #: Attached modeled-time timelines:
        #: ``(source, rows, unit)`` with rows ``(track, label, t0, t1)``.
        self.timelines: list[tuple[str, list[tuple], str]] = []
        self._stack: list[int] = []
        self._open: dict[int, dict] = {}
        self._next_id = 1

    # ----------------------------- spans ------------------------------- #

    def _now(self) -> float:
        return self._clock() - self.epoch

    def begin_span(self, name: str, attrs: dict | None = None) -> int:
        """Open a span; returns its id (pass to :meth:`end_span`)."""
        sid = self._next_id
        self._next_id += 1
        record = {
            "type": "span",
            "sid": sid,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "t0": self._now(),
            "t1": None,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        ctx = _context.current_context()
        if ctx is not None:
            record["trace_id"] = ctx.trace_id
        self._open[sid] = record
        self._stack.append(sid)
        return sid

    def end_span(self, sid: int, **attrs: object) -> None:
        """Close an open span (extra attrs merge into the record)."""
        record = self._open.pop(sid, None)
        if record is None:
            return
        record["t1"] = self._now()
        if attrs:
            record.setdefault("attrs", {}).update(attrs)
        if self._stack and self._stack[-1] == sid:
            self._stack.pop()
        else:  # out-of-order close: drop it from wherever it sits
            try:
                self._stack.remove(sid)
            except ValueError:
                pass
        self.events.append(record)

    def spans(self) -> list[dict]:
        """Completed span records, in completion order."""
        return [e for e in self.events if e["type"] == "span"]

    def add_remote_spans(self, records: list[dict] | None) -> None:
        """Stitch in completed span records from another process.

        The records come from :func:`repro.obs.context.span_records`
        in a forked worker's reply frame.  Span ids are re-keyed into
        this recorder's id space (remote parents are remapped when the
        parent shipped in the same batch, dropped otherwise) so remote
        and local spans can never collide.  Each stitched record is
        marked ``"remote": True`` and keeps its foreign ``role``,
        ``pid``, and clock — the Chrome exporter renders each remote
        ``(role, pid)`` pair as its own normalized track.
        """
        batch = [dict(record) for record in records or ()
                 if record.get("type") == "span"
                 and record.get("t1") is not None]
        # Children complete (and therefore ship) before their parents,
        # so allocate every new sid first, then remap parent links.
        mapping: dict[object, int] = {}
        for merged in batch:
            original = merged.get("sid")
            sid = self._next_id
            self._next_id += 1
            if original is not None:
                mapping[original] = sid
            merged["sid"] = sid
        for merged in batch:
            merged["parent"] = mapping.get(merged.get("parent"))
            merged["remote"] = True
            self.events.append(merged)

    # ------------------------- events & metrics ------------------------ #

    def add_event(self, name: str, attrs: dict | None = None) -> None:
        """Record one instant event."""
        record = {"type": "event", "name": name, "t": self._now()}
        if attrs:
            record["attrs"] = dict(attrs)
        self.events.append(record)

    def on_metric(self, kind: str, name: str, value: float) -> None:
        """Metric subscriber hook (installed by :func:`set_recorder`)."""
        if kind == "count":
            self.counters[name] = self.counters.get(name, 0) + int(value)
            self.events.append({"type": "count", "name": name,
                                "delta": int(value), "t": self._now()})
        else:
            self.gauges[name] = value
            self.events.append({"type": "gauge", "name": name,
                                "value": value, "t": self._now()})

    # ---------------------------- timelines ---------------------------- #

    def add_timeline(self, source: str, rows: list[tuple],
                     unit: str) -> None:
        """Attach one modeled-time timeline.

        Args:
            source: Track-group label (``"cuda"``, ``"openmp"``).
            rows: ``(track, label, start, end)`` tuples in the modeled
                clock (see ``timeline_rows()`` on the trace classes).
            unit: The modeled clock's unit (``"cycles"``, ``"ns"``).
        """
        self.timelines.append((source, list(rows), unit))
        self.events.append({"type": "timeline", "source": source,
                            "unit": unit, "rows": len(rows),
                            "t": self._now()})


# --------------------------- module controls --------------------------- #


def get_recorder() -> Recorder | None:
    """The installed recorder, or ``None`` (observability off)."""
    return _RECORDER


def set_recorder(recorder: Recorder | None) -> None:
    """Install ``recorder`` process-wide (``None`` uninstalls).

    Also wires/unwires the :mod:`repro.obs.metrics` subscriber so
    counter deltas stream into the recorder's event log.
    """
    global _RECORDER
    _RECORDER = recorder
    _metrics.set_subscriber(
        recorder.on_metric if recorder is not None else None)


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of the block."""
    previous = _RECORDER
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Recorder | None]:
    """Open a hierarchical span for the duration of the block.

    No-op (yields ``None``) when no recorder is installed; otherwise
    yields the recorder so the body can attach events to the same sink.
    """
    recorder = _RECORDER
    if recorder is None:
        yield None
        return
    sid = recorder.begin_span(name, attrs or None)
    try:
        yield recorder
    finally:
        recorder.end_span(sid)


def event(name: str, **attrs: object) -> None:
    """Record one instant event (no-op when no recorder is installed)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.add_event(name, attrs or None)


def attach_timeline(source: str, timeline: object,
                    unit: str) -> None:
    """Attach an interpreter trace to the installed recorder (no-op
    when none is installed).

    ``timeline`` is anything exposing ``timeline_rows()`` —
    :class:`repro.cuda.trace.Trace` or
    :class:`repro.openmp.trace.CpuTrace`.
    """
    recorder = _RECORDER
    if recorder is not None:
        recorder.add_timeline(source, timeline.timeline_rows(), unit)
