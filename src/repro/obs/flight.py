"""Always-on bounded flight recorder for post-mortem dumps.

Spans need an installed recorder; counters have no per-request memory.
Between the two sits the question a crashed worker leaves behind:
*what were the last N things the service did before this?*  The
:class:`FlightRecorder` answers it — a fixed-capacity ring of small
event dicts that is always on (a deque append under a lock, cheap
enough for every dispatch), is never exported during healthy
operation, and is dumped to a JSON file only when something dies: the
worker pool writes one on every crash / hang / deadline kill, and the
chaos harness audits that the dump exists and parses.

One process-wide instance, :data:`FLIGHT`, mirrors the metrics
registry design; forked workers inherit a copy whose records die with
them (the parent-side supervisor view is the one that matters for
post-mortems — it saw the dispatch, the fate, and the kill).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path

#: Schema tag of a flight-record dump file.
FLIGHT_SCHEMA = "syncperf-flight/v1"

#: Default ring capacity (records, not bytes).
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A bounded, thread-safe ring buffer of recent operational events.

    Args:
        capacity: Ring size; the oldest record silently falls off.
        clock: Wall-clock source (injectable for deterministic tests).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock=time.time) -> None:
        self._records: deque[dict] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self._clock = clock
        self._seq = 0
        self._dumps = 0

    def record(self, kind: str, **attrs: object) -> None:
        """Append one event (``kind`` plus free-form attributes)."""
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "t": self._clock(),
                      "kind": kind}
            record.update(attrs)
            self._records.append(record)

    def snapshot(self) -> list[dict]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def clear(self) -> None:
        """Drop every record (the sequence keeps counting)."""
        with self._lock:
            self._records.clear()

    def dump(self, directory: str | Path, reason: str) -> Path:
        """Write the ring to a uniquely-named JSON file and return it.

        The write is atomic (temp + rename) so a dump racing a second
        crash never leaves a torn file for the auditor to choke on.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._dumps += 1
            dump_id = self._dumps
            records = [dict(record) for record in self._records]
        safe_reason = "".join(c if c.isalnum() or c in "-_" else "-"
                              for c in reason) or "unknown"
        path = directory / (f"flight-{os.getpid()}-{dump_id:04d}-"
                            f"{safe_reason}.json")
        payload = {"schema": FLIGHT_SCHEMA, "reason": reason,
                   "pid": os.getpid(), "dumped_at": self._clock(),
                   "records": records}
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, default=str)
                       + "\n")
        os.replace(tmp, path)
        return path


#: The process-wide flight recorder every service layer reports into.
FLIGHT = FlightRecorder()


def load_flight_dump(path: str | Path) -> dict:
    """Read a dump file back, validating its schema tag.

    Raises ``ValueError`` on a torn or foreign file — the chaos
    harness treats that as a contract violation.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(f"{path}: not a {FLIGHT_SCHEMA} dump")
    if not isinstance(payload.get("records"), list):
        raise ValueError(f"{path}: dump has no records list")
    return payload
