"""Cross-process trace context: propagation, storage, and stitching.

A :class:`TraceContext` is the tiny, wire-serializable identity of one
logical request — ``trace_id`` (shared by every process that touches
the request), ``span_id`` (the caller's position in the tree), and
free-form string ``baggage``.  The service front-end mints one per
traced ``/measure`` submission (or accepts the client's via the
``"trace"`` request field), carries it through the daemon thread with
:func:`use_context`, ships it inside worker job frames and persistent
pool plan/job frames, and restores it on the far side with
:func:`TraceContext.from_wire`.

Processes don't share a recorder, so remote spans travel as plain
record dicts: a forked worker runs its measurement under a private
:class:`~repro.obs.recorder.Recorder` (see :func:`traced_execution`),
converts the completed spans with :func:`span_records` — stamping
``trace_id``, ``role``, and ``pid`` — and ships the list back in its
reply frame.  The parent stitches them into its own recorder
(:meth:`Recorder.add_remote_spans`) and/or a :class:`TraceStore`, from
which ``GET /trace/<id>`` serves the whole cross-process tree and
:func:`stitched_chrome` renders it for ``chrome://tracing``.

Everything here is additive and default-off: with no context current,
:func:`current_context` returns ``None`` and every call site skips the
machinery, preserving the recorder-off byte-identity contract.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.chrome import chrome_payload, complete_event, metadata_events

#: Hex digits in a trace id (128-bit, W3C-traceparent sized).
TRACE_ID_BYTES = 16
#: Hex digits in a span id (64-bit).
SPAN_ID_BYTES = 8


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one logical request.

    Attributes:
        trace_id: Shared by every span of the request, across processes.
        span_id: The current hop's id (children record it as parent).
        baggage: Small string-keyed annotations that ride along
            (e.g. the loadgen lane); never interpreted by the service.
    """

    trace_id: str
    span_id: str
    baggage: dict = field(default_factory=dict)

    @classmethod
    def new(cls, baggage: dict | None = None) -> "TraceContext":
        """Mint a fresh root context."""
        return cls(_new_id(TRACE_ID_BYTES), _new_id(SPAN_ID_BYTES),
                   dict(baggage or {}))

    def child(self) -> "TraceContext":
        """A child hop: same trace, fresh span id, inherited baggage."""
        return TraceContext(self.trace_id, _new_id(SPAN_ID_BYTES),
                            dict(self.baggage))

    def to_wire(self) -> dict:
        """JSON/pickle-safe wire form (inverse of :meth:`from_wire`)."""
        wire = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.baggage:
            wire["baggage"] = dict(self.baggage)
        return wire

    @classmethod
    def from_wire(cls, wire: object) -> "TraceContext | None":
        """Parse a wire dict; returns ``None`` for anything malformed.

        Lenient by design: a torn or foreign ``"trace"`` field must
        degrade to "untraced", never fail the measurement.
        """
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = wire.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            span_id = _new_id(SPAN_ID_BYTES)
        baggage = wire.get("baggage")
        if not isinstance(baggage, dict):
            baggage = {}
        return cls(trace_id, span_id, dict(baggage))


# --------------------------- current context --------------------------- #

_LOCAL = threading.local()


def current_context() -> TraceContext | None:
    """The thread's current trace context, or ``None`` (untraced)."""
    return getattr(_LOCAL, "context", None)


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as the thread's current context for the block.

    Always restores the previous context on exit — including on
    exceptions — so one request's identity can never leak into the
    next request handled by the same thread or worker process.
    """
    previous = getattr(_LOCAL, "context", None)
    _LOCAL.context = ctx
    try:
        yield ctx
    finally:
        _LOCAL.context = previous


def maybe_context(ctx: TraceContext | None):
    """``use_context(ctx)`` when traced, a no-op context otherwise."""
    return use_context(ctx) if ctx is not None else nullcontext()


# ------------------------ remote span shipping ------------------------- #


def span_records(recorder, ctx: TraceContext, role: str) -> list[dict]:
    """The recorder's completed spans as shippable remote records.

    Each record is stamped with the trace id, a ``role`` (which process
    kind produced it: ``"worker"``, ``"pool"``, ``"daemon"``, …) and
    the producing ``pid``, so the stitched view can group tracks by
    origin.  Records already stamped (nested remote spans a worker
    itself stitched in) keep their original role/pid.
    """
    pid = os.getpid()
    records = []
    for span in recorder.spans():
        record = dict(span)
        record.setdefault("trace_id", ctx.trace_id)
        record.setdefault("role", role)
        record.setdefault("pid", pid)
        records.append(record)
    return records


def traced_execution(ctx: TraceContext | None, role: str, name: str,
                     fn, **attrs: object):
    """Run ``fn()`` under ``ctx`` inside a private recorder.

    The remote-side half of cross-process tracing: installs ``ctx``
    and a fresh :class:`~repro.obs.recorder.Recorder` (so every span
    the execution opens is captured without a caller-visible recorder),
    wraps the call in a root span ``name``, and returns
    ``(result, records)`` where ``records`` are shippable span dicts
    (see :func:`span_records`).

    With ``ctx is None`` this is exactly ``(fn(), None)`` — no
    recorder, no spans, byte-identical to the untraced path.  Context
    and recorder are restored even when ``fn`` raises, so a crashing
    request cannot leak its identity into the next one.
    """
    if ctx is None:
        return fn(), None
    from repro.obs.recorder import Recorder, recording, span
    recorder = Recorder()
    with use_context(ctx), recording(recorder):
        with span(name, **attrs):
            result = fn()
    return result, span_records(recorder, ctx, role)


# ----------------------------- trace store ----------------------------- #


class TraceStore:
    """Bounded in-memory store of stitched traces, by trace id.

    The backing for ``GET /trace/<id>``: the service appends every
    process's span records under the request's trace id; the oldest
    traces are evicted once ``max_traces`` distinct ids are held, so a
    long-lived daemon stays bounded.  Thread-safe.
    """

    def __init__(self, max_traces: int = 512) -> None:
        self.max_traces = max(1, max_traces)
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        self._lock = threading.Lock()

    def add(self, trace_id: str, records: list[dict] | None) -> None:
        """Append span records under ``trace_id`` (no-op when empty)."""
        if not trace_id or not records:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                self._traces[trace_id] = list(records)
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            else:
                spans.extend(records)
                self._traces.move_to_end(trace_id)

    def get(self, trace_id: str) -> list[dict] | None:
        """The stitched span records of one trace, or ``None``."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def trace_ids(self) -> list[str]:
        """Held trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# --------------------------- stitched export --------------------------- #


def trace_roles(records: list[dict]) -> list[str]:
    """The distinct producing roles in a stitched trace, sorted."""
    return sorted({record.get("role", "?") for record in records})


def stitched_chrome(records: list[dict]) -> dict:
    """A stitched cross-process trace as Chrome ``trace_events`` JSON.

    Each producing ``(role, pid)`` pair renders as its own pid track.
    Every process recorded wall-clock offsets against its *own*
    recorder epoch, so the tracks share a scale (seconds) but not a
    zero; each track is normalized to its earliest span so the viewer
    lines the hops up without pretending to cross-process clock sync.
    """
    tracks: OrderedDict[tuple[str, object], list[dict]] = OrderedDict()
    for record in records:
        if record.get("t1") is None:
            continue
        key = (record.get("role", "?"), record.get("pid", 0))
        tracks.setdefault(key, []).append(record)
    events: list[dict] = []
    for index, ((role, pid), spans) in enumerate(tracks.items(), start=1):
        epoch = min(span["t0"] for span in spans)
        events.extend(metadata_events(
            index, f"{role} (pid {pid}, own clock)", {0: role}))
        for span in spans:
            args = dict(span.get("attrs") or {})
            if span.get("trace_id"):
                args["trace_id"] = span["trace_id"]
            events.append(complete_event(
                span["name"], index, 0, (span["t0"] - epoch) * 1e6,
                (span["t1"] - span["t0"]) * 1e6, cat="trace",
                args=args or None))
    return chrome_payload(events)
