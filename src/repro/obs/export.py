"""Exporters: JSONL event log, Chrome trace, Prometheus snapshot.

Three serializations of one :class:`~repro.obs.recorder.Recorder`:

* :func:`write_jsonl` — the full-fidelity event log, one JSON object
  per line (schema ``syncperf-obs/v1``): a header, every span/event/
  counter-delta/timeline record in completion order, and a trailing
  run-scoped totals record.  :func:`replay_jsonl` reads one back and
  re-derives the totals from the deltas — the round-trip identity the
  exporter tests pin down.
* :func:`chrome_trace` / :func:`write_chrome_trace` — wall-clock spans
  and instants plus every attached interpreter timeline as Chrome
  ``trace_events`` JSON (open in https://ui.perfetto.dev).
* :func:`prometheus_text` / :func:`write_metrics` — a Prometheus-style
  plain-text counter/gauge snapshot (``syncperf_`` prefix, dots
  mapped to underscores).

All writes go through a write-to-temp + ``os.replace`` so a kill mid
export never leaves a torn file next to campaign artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.chrome import (
    chrome_payload,
    complete_event,
    instant_event,
    metadata_events,
    rows_to_chrome,
)
from repro.obs.recorder import Recorder

#: Schema tag of the JSONL event log.
JSONL_SCHEMA = "syncperf-obs/v1"

#: pid of the wall-clock span track in Chrome exports; attached
#: modeled timelines take consecutive pids above it.
SPAN_PID = 1


def _atomic_write(path: Path, text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


# ------------------------------- JSONL --------------------------------- #


def jsonl_records(recorder: Recorder) -> list[dict]:
    """The event log as a list of records (header, events, totals)."""
    return [
        {"type": "header", "schema": JSONL_SCHEMA},
        *recorder.events,
        {"type": "totals", "counters": dict(sorted(
            recorder.counters.items())),
         "gauges": dict(sorted(recorder.gauges.items()))},
    ]


def write_jsonl(recorder: Recorder, path: str | Path) -> Path:
    """Write the JSONL event log; returns the path written."""
    lines = [json.dumps(record, sort_keys=True)
             for record in jsonl_records(recorder)]
    return _atomic_write(Path(path), "\n".join(lines) + "\n")


def replay_jsonl(path: str | Path) -> dict:
    """Re-derive a run's totals by replaying its JSONL event log.

    Returns:
        ``{"counters": {...}, "gauges": {...}, "spans": [...],
        "events": [...], "totals": {...}}`` where ``counters`` are
        summed from the delta stream and ``totals`` is the trailing
        snapshot record (so callers can assert the two reconcile).

    Raises:
        ValueError: Missing/foreign header, or unparsable lines.
    """
    records = []
    with open(path) as handle:
        for n, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{n}: not a JSON record: {exc}") from exc
    if not records or records[0].get("type") != "header" or \
            records[0].get("schema") != JSONL_SCHEMA:
        raise ValueError(
            f"{path}: missing {JSONL_SCHEMA!r} header record")
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    spans, events, totals = [], [], {}
    for record in records[1:]:
        kind = record.get("type")
        if kind == "count":
            name = record["name"]
            counters[name] = counters.get(name, 0) + record["delta"]
        elif kind == "gauge":
            gauges[record["name"]] = record["value"]
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
        elif kind == "totals":
            totals = record
    return {"counters": counters, "gauges": gauges, "spans": spans,
            "events": events, "totals": totals}


# ---------------------------- Chrome trace ------------------------------ #


def chrome_trace(recorder: Recorder) -> dict:
    """The recorder as a Chrome ``trace_events`` payload.

    Wall-clock spans render on pid :data:`SPAN_PID` (nested spans rely
    on the viewer's stacking of overlapping complete events on one
    tid); each attached interpreter timeline gets its own pid track so
    modeled clocks never mix with wall time.  Remote spans stitched in
    from other processes (:meth:`Recorder.add_remote_spans`) group
    into one extra track per producing ``(role, pid)`` pair above the
    timelines — each normalized to its own earliest span, because a
    foreign recorder's epoch is not this one's.
    """
    events = metadata_events(SPAN_PID, "syncperf spans (wall clock)",
                             {0: "spans"})
    remote: list[dict] = []
    for record in recorder.events:
        kind = record["type"]
        if kind == "span" and record["t1"] is not None:
            if record.get("remote"):
                remote.append(record)
                continue
            events.append(complete_event(
                record["name"], SPAN_PID, 0, record["t0"] * 1e6,
                (record["t1"] - record["t0"]) * 1e6, cat="span",
                args=record.get("attrs")))
        elif kind == "event":
            events.append(instant_event(
                record["name"], SPAN_PID, 0, record["t"] * 1e6,
                args=record.get("attrs")))
    for offset, (source, rows, unit) in enumerate(recorder.timelines):
        events.extend(rows_to_chrome(rows, SPAN_PID + 1 + offset,
                                     unit, source))
    tracks: dict[tuple, list[dict]] = {}
    for record in remote:
        key = (record.get("role", "remote"), record.get("pid", 0))
        tracks.setdefault(key, []).append(record)
    base_pid = SPAN_PID + 1 + len(recorder.timelines)
    for index, ((role, pid), records) in enumerate(
            sorted(tracks.items(), key=lambda item: str(item[0]))):
        track = base_pid + index
        epoch = min(r["t0"] for r in records)
        events.extend(metadata_events(
            track, f"remote {role} (pid {pid}, own clock)", {0: role}))
        for record in records:
            events.append(complete_event(
                record["name"], track, 0, (record["t0"] - epoch) * 1e6,
                (record["t1"] - record["t0"]) * 1e6, cat="remote-span",
                args=record.get("attrs")))
    return chrome_payload(events)


def write_chrome_trace(recorder: Recorder, path: str | Path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    return _atomic_write(Path(path),
                         json.dumps(chrome_trace(recorder)) + "\n")


# ----------------------------- Prometheus ------------------------------- #


def _metric_name(name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"syncperf_{safe}"


def prometheus_text(counters: dict[str, int],
                    gauges: dict[str, float] | None = None) -> str:
    """Render counter/gauge snapshots in Prometheus text format."""
    lines: list[str] = []
    for name in sorted(counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    for name in sorted(gauges or {}):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]:g}")
    return "\n".join(lines) + "\n"


def write_metrics(recorder: Recorder, path: str | Path) -> Path:
    """Write the recorder's run-scoped metrics snapshot; returns the
    path written."""
    return _atomic_write(
        Path(path), prometheus_text(recorder.counters, recorder.gauges))
