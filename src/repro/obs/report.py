"""Profile summaries of JSONL observability logs.

``python -m repro.obs.report out.jsonl`` prints, for a log written by
``syncperf --obs out.jsonl`` (or :func:`repro.obs.export.write_jsonl`):

* the top spans by **inclusive** wall time (time between enter and
  exit) and **exclusive** wall time (inclusive minus time spent in
  direct child spans), aggregated by span name;
* the run's counter table and gauge levels;
* the recorded instant events, grouped by name.

The summary is computed from the replayed event stream — the same
records the exporter round-trip tests validate — so it works on any
log regardless of which process wrote it.
"""

from __future__ import annotations

import sys

from repro.obs.export import replay_jsonl


def span_profile(spans: list[dict]) -> list[dict]:
    """Aggregate span records by name.

    Returns:
        One row per span name, sorted by inclusive seconds descending:
        ``{"name", "count", "inclusive_s", "exclusive_s"}``.
    """
    child_time: dict[int, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and record["t1"] is not None:
            child_time[parent] = child_time.get(parent, 0.0) + \
                (record["t1"] - record["t0"])
    rows: dict[str, dict] = {}
    for record in spans:
        if record["t1"] is None:
            continue
        inclusive = record["t1"] - record["t0"]
        exclusive = inclusive - child_time.get(record["sid"], 0.0)
        row = rows.setdefault(record["name"],
                              {"name": record["name"], "count": 0,
                               "inclusive_s": 0.0, "exclusive_s": 0.0})
        row["count"] += 1
        row["inclusive_s"] += inclusive
        row["exclusive_s"] += max(exclusive, 0.0)
    return sorted(rows.values(), key=lambda r: -r["inclusive_s"])


def summarize(path: str, top: int = 15) -> str:
    """Render the profile summary of one JSONL log as text."""
    replay = replay_jsonl(path)
    lines = [f"observability report — {path}", ""]

    profile = span_profile(replay["spans"])
    if profile:
        lines.append(f"{'span':<32s} {'count':>7s} {'incl':>10s} "
                     f"{'excl':>10s}")
        for row in profile[:top]:
            lines.append(
                f"{row['name']:<32s} {row['count']:>7d} "
                f"{row['inclusive_s']:>9.4f}s "
                f"{row['exclusive_s']:>9.4f}s")
    else:
        lines.append("no spans recorded")
    lines.append("")

    counters = replay["counters"]
    if counters:
        lines.append(f"{'counter':<44s} {'total':>12s}")
        for name in sorted(counters):
            lines.append(f"{name:<44s} {counters[name]:>12d}")
    else:
        lines.append("no counters recorded")
    for name in sorted(replay["gauges"]):
        lines.append(f"{name:<44s} {replay['gauges'][name]:>12g} (gauge)")

    by_name: dict[str, int] = {}
    for record in replay["events"]:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    if by_name:
        lines.append("")
        lines.append(f"{'event':<44s} {'occurrences':>12s}")
        for name in sorted(by_name):
            lines.append(f"{name:<44s} {by_name[name]:>12d}")

    totals = replay["totals"].get("counters", {})
    if totals and totals != counters:
        lines.append("")
        lines.append("WARNING: replayed counter sums do not match the "
                     "log's totals record")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry: ``python -m repro.obs.report <log.jsonl> [--top N]``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a syncperf --obs JSONL event log.")
    parser.add_argument("log", help="JSONL log written by syncperf --obs")
    parser.add_argument("--top", type=int, default=15,
                        help="span rows to show (default 15)")
    args = parser.parse_args(argv)
    try:
        print(summarize(args.log, top=args.top))
    except (OSError, ValueError) as exc:
        print(f"repro.obs.report: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
