"""Profile summaries of JSONL observability logs.

``python -m repro.obs.report out.jsonl`` prints, for a log written by
``syncperf --obs out.jsonl`` (or :func:`repro.obs.export.write_jsonl`):

* the top spans by **inclusive** wall time (time between enter and
  exit) and **exclusive** wall time (inclusive minus time spent in
  direct child spans), aggregated by span name;
* the run's counter table and gauge levels;
* the recorded instant events, grouped by name.

The summary is computed from the replayed event stream — the same
records the exporter round-trip tests validate — so it works on any
log regardless of which process wrote it.

``python -m repro.obs.report --service host:port`` instead targets a
live service daemon: it fetches ``/healthz`` and ``/metrics``, prints
a compact ops summary (workers, breakers, latency percentiles, top
counters), and with ``--out page.html`` writes the same self-contained
SVG dashboard the daemon serves at ``/dashboard``.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import replay_jsonl
from repro.obs.hist import LatencyHistogram


def span_profile(spans: list[dict]) -> list[dict]:
    """Aggregate span records by name.

    Returns:
        One row per span name, sorted by inclusive seconds descending:
        ``{"name", "count", "inclusive_s", "exclusive_s"}``.
    """
    child_time: dict[int, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and record["t1"] is not None:
            child_time[parent] = child_time.get(parent, 0.0) + \
                (record["t1"] - record["t0"])
    rows: dict[str, dict] = {}
    for record in spans:
        if record["t1"] is None:
            continue
        inclusive = record["t1"] - record["t0"]
        exclusive = inclusive - child_time.get(record["sid"], 0.0)
        row = rows.setdefault(record["name"],
                              {"name": record["name"], "count": 0,
                               "inclusive_s": 0.0, "exclusive_s": 0.0})
        row["count"] += 1
        row["inclusive_s"] += inclusive
        row["exclusive_s"] += max(exclusive, 0.0)
    return sorted(rows.values(), key=lambda r: -r["inclusive_s"])


def summarize(path: str, top: int = 15) -> str:
    """Render the profile summary of one JSONL log as text."""
    replay = replay_jsonl(path)
    lines = [f"observability report — {path}", ""]

    profile = span_profile(replay["spans"])
    if profile:
        lines.append(f"{'span':<32s} {'count':>7s} {'incl':>10s} "
                     f"{'excl':>10s}")
        for row in profile[:top]:
            lines.append(
                f"{row['name']:<32s} {row['count']:>7d} "
                f"{row['inclusive_s']:>9.4f}s "
                f"{row['exclusive_s']:>9.4f}s")
    else:
        lines.append("no spans recorded")
    lines.append("")

    counters = replay["counters"]
    if counters:
        lines.append(f"{'counter':<44s} {'total':>12s}")
        for name in sorted(counters):
            lines.append(f"{name:<44s} {counters[name]:>12d}")
    else:
        lines.append("no counters recorded")
    for name in sorted(replay["gauges"]):
        lines.append(f"{name:<44s} {replay['gauges'][name]:>12g} (gauge)")

    by_name: dict[str, int] = {}
    for record in replay["events"]:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    if by_name:
        lines.append("")
        lines.append(f"{'event':<44s} {'occurrences':>12s}")
        for name in sorted(by_name):
            lines.append(f"{name:<44s} {by_name[name]:>12d}")

    totals = replay["totals"].get("counters", {})
    if totals and totals != counters:
        lines.append("")
        lines.append("WARNING: replayed counter sums do not match the "
                     "log's totals record")
    return "\n".join(lines)


def fetch_service(target: str, timeout: float = 10.0) -> dict:
    """Fetch ``/healthz`` (JSON) and ``/metrics`` (text) from a daemon.

    Args:
        target: ``host:port`` of a running service daemon.
        timeout: Per-request socket timeout in seconds.

    Returns:
        ``{"health": dict, "metrics_text": str}``.
    """
    import http.client
    host, _, port_text = target.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--service wants host:port, got {target!r}")
    out: dict = {}
    for path, key in (("/healthz", "health"), ("/metrics",
                                               "metrics_text")):
        conn = http.client.HTTPConnection(host, int(port_text),
                                          timeout=timeout)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            raw = response.read().decode()
            if response.status != 200:
                raise ValueError(f"GET {path} -> {response.status}")
        finally:
            conn.close()
        out[key] = json.loads(raw) if key == "health" else raw
    return out


def _parse_counters(metrics_text: str) -> dict[str, float]:
    """Pull ``syncperf_*`` scalar samples out of a text exposition."""
    counters: dict[str, float] = {}
    for line in metrics_text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition(" ")
        if "{" in name:  # histogram buckets are parsed separately
            continue
        try:
            counters[name] = float(value)
        except ValueError:  # pragma: no cover - defensive
            continue
    return counters


def service_summary(target: str, top: int = 15,
                    out_html: str | None = None) -> str:
    """Render the live-service ops summary (and optional dashboard).

    Args:
        target: ``host:port`` of a running daemon.
        top: Counter rows to show.
        out_html: When set, also write the SVG dashboard page here.
    """
    fetched = fetch_service(target)
    health, metrics_text = fetched["health"], fetched["metrics_text"]
    counters = _parse_counters(metrics_text)
    try:
        hist = LatencyHistogram.from_prometheus(
            metrics_text, "syncperf_service_latency_ms")
    except ValueError:
        hist = LatencyHistogram()

    lines = [f"service report — {target}", "",
             f"version {health.get('version', '?')}  "
             f"workers {health.get('workers', 0)}  "
             f"restarts {health.get('worker_restarts', 0)}  "
             f"requests {hist.count}",
             f"latency p50 {hist.percentile(0.50)} ms  "
             f"p99 {hist.percentile(0.99)} ms"]
    breakers = health.get("breakers") or {}
    if breakers:
        lines.append("breakers: " + ", ".join(
            f"{stream}={state}"
            for stream, state in sorted(breakers.items())))
    for worker in health.get("workers_detail", []):
        lines.append(f"worker pid {worker.get('pid')}  "
                     f"alive {worker.get('alive')}  "
                     f"heartbeat {worker.get('heartbeat_age_s')}s ago")
    lines.append("")
    ranked = sorted(counters.items(), key=lambda kv: -kv[1])
    lines.append(f"{'metric':<52s} {'value':>12s}")
    for name, value in ranked[:top]:
        lines.append(f"{name:<52s} {value:>12g}")

    if out_html is not None:
        from pathlib import Path

        from repro.obs.dashboard import render_dashboard
        dotted = {}
        for name, value in counters.items():
            if name.startswith("syncperf_"):
                stem = name[len("syncperf_"):]
                family, _, rest = stem.partition("_")
                dotted[f"{family}.{rest}"] = value
        page = render_dashboard(health, dotted, hist,
                                title=f"measurement service {target}")
        Path(out_html).write_text(page)
        lines.append("")
        lines.append(f"dashboard written to {out_html}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry: ``python -m repro.obs.report <log.jsonl> [--top N]``
    or ``python -m repro.obs.report --service host:port [--out x.html]``.
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a syncperf --obs JSONL event log, or a "
                    "live service daemon with --service.")
    parser.add_argument("log", nargs="?",
                        help="JSONL log written by syncperf --obs")
    parser.add_argument("--top", type=int, default=15,
                        help="span/counter rows to show (default 15)")
    parser.add_argument("--service", metavar="HOST:PORT",
                        help="report on a live daemon instead of a log")
    parser.add_argument("--out", metavar="PAGE.html",
                        help="with --service: also write the SVG "
                             "dashboard page here")
    args = parser.parse_args(argv)
    if (args.log is None) == (args.service is None):
        parser.error("pass exactly one of <log.jsonl> or --service")
    try:
        if args.service:
            print(service_summary(args.service, top=args.top,
                                  out_html=args.out))
        else:
            print(summarize(args.log, top=args.top))
    except (OSError, ValueError) as exc:
        print(f"repro.obs.report: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
