"""Self-contained SVG/HTML service ops dashboard.

One HTML page, zero external assets: the latency histogram, the
dispatch-tier mix, the serving-path mix, and breaker/worker health
tables, all rendered through :func:`repro.analysis.svg_chart.
render_bar_svg` and inlined.  Two producers share it:

* the daemon's ``GET /dashboard`` renders straight from the live
  service object;
* ``python -m repro.obs.report --service host:port`` fetches
  ``/metrics`` + ``/healthz`` over HTTP and writes the same page
  offline (``--out``).
"""

from __future__ import annotations

import html

from repro.analysis.svg_chart import ChartLayout, render_bar_svg
from repro.obs.hist import LatencyHistogram

#: Dispatch-tier evidence counters charted in the tier-mix panel.
TIER_MIX_COUNTERS = (
    ("replay", "dispatch.hit"),
    ("shape", "dispatch.shape_hit"),
    ("disk", "dispatch.disk_hit"),
    ("lift", "dispatch.compile"),
    ("fallback", "dispatch.fallback"),
)

#: Serving-path counters charted in the serving-mix panel.
SERVING_MIX_COUNTERS = (
    ("served", "service.served"),
    ("degraded", "service.degraded"),
    ("failed", "service.failed"),
    ("cache hit", "service.cache_hit"),
    ("stale", "service.cache_stale_served"),
    ("coalesced", "service.coalesced"),
)

_STYLE = """
body { font-family: sans-serif; margin: 24px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin-bottom: 4px; }
table { border-collapse: collapse; font-size: 13px; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f2f2f2; }
.panel { display: inline-block; vertical-align: top; margin: 0 18px
         18px 0; }
.muted { color: #777; font-size: 12px; }
"""


def latency_chart(hist: LatencyHistogram,
                  title: str = "latency (ms)") -> str:
    """The histogram's populated bucket range as a bar chart SVG."""
    snapshot = hist.snapshot()
    counts = snapshot["counts"]
    nonzero = [i for i, n in enumerate(counts) if n]
    if not nonzero:
        return render_bar_svg(["(empty)"], [0], title=title,
                              y_label="requests")
    lo, hi = min(nonzero), max(nonzero)
    labels, values = [], []
    for index in range(lo, hi + 1):
        if index < len(snapshot["bounds"]):
            labels.append(f"≤{snapshot['bounds'][index]:g}")
        else:
            labels.append("+Inf")
        values.append(counts[index])
    layout = ChartLayout(width=max(360, 640), height=300)
    return render_bar_svg(labels, values, title=title,
                          y_label="requests", layout=layout)


def mix_chart(counters: dict[str, float],
              mapping: tuple[tuple[str, str], ...],
              title: str, color: str = "#E69F00") -> str:
    """One labeled counter family as a bar chart SVG."""
    labels = [label for label, _ in mapping]
    values = [counters.get(name, 0) for _, name in mapping]
    layout = ChartLayout(width=420, height=300)
    return render_bar_svg(labels, values, title=title, y_label="count",
                          layout=layout, color=color)


def _table(headers: list[str], rows: list[list[object]]) -> str:
    cells = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(v))}</td>" for v in row)
        + "</tr>"
        for row in rows)
    return f"<table><tr>{cells}</tr>{body}</table>"


def render_dashboard(health: dict, counters: dict[str, float],
                     hist: LatencyHistogram,
                     title: str = "measurement service") -> str:
    """The full dashboard page as an HTML string.

    Args:
        health: A ``/healthz``-shaped dict (breakers, workers_detail,
            restart_reasons, latency percentiles).
        counters: Dotted-name counter values/deltas (``service.*``,
            ``dispatch.*``, ``cache.*``).
        hist: The served-latency histogram (whole-run or a window).
        title: Page heading.
    """
    breakers = health.get("breakers", {}) or {}
    breaker_rows = [[stream, state]
                    for stream, state in sorted(breakers.items())]
    worker_rows = [[w.get("pid"), "yes" if w.get("alive") else "NO",
                    w.get("heartbeat_age_s")]
                   for w in health.get("workers_detail", [])]
    restart_rows = [[reason, count] for reason, count in sorted(
        (health.get("restart_reasons") or {}).items())]
    parts = [
        "<!doctype html>",
        "<html><head><meta charset=\"utf-8\"/>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class=\"muted\">version {health.get('version', '?')} · "
        f"{health.get('workers', 0)} workers · "
        f"{health.get('worker_restarts', 0)} restarts · "
        f"p50 {health.get('latency_p50_ms', 0)} ms · "
        f"p99 {health.get('latency_p99_ms', 0)} ms</p>",
        f"<div class=\"panel\">{latency_chart(hist)}</div>",
        f"<div class=\"panel\">"
        f"{mix_chart(counters, TIER_MIX_COUNTERS, 'dispatch tier mix')}"
        f"</div>",
        f"<div class=\"panel\">"
        f"{mix_chart(counters, SERVING_MIX_COUNTERS, 'serving mix', color='#009E73')}"
        f"</div>",
        "<div class=\"panel\"><h2>circuit breakers</h2>",
        _table(["stream", "state"], breaker_rows)
        if breaker_rows else "<p class=\"muted\">none opened</p>",
        "</div>",
        "<div class=\"panel\"><h2>workers</h2>",
        _table(["pid", "alive", "heartbeat age (s)"], worker_rows)
        if worker_rows else "<p class=\"muted\">inline mode</p>",
        "</div>",
        "<div class=\"panel\"><h2>worker restarts</h2>",
        _table(["reason", "count"], restart_rows)
        if restart_rows else "<p class=\"muted\">none</p>",
        "</div>",
        "</body></html>",
    ]
    return "\n".join(parts)
