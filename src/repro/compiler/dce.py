"""Dead-code elimination over op sequences.

Mirrors what ``g++ -O3`` / ``nvcc -O3`` do to a micro-benchmark loop body:
an instruction whose result is never consumed and that has no side effect
(no store, no synchronization semantics) is removed.  The measurement
framework runs every baseline/test body through this pass before pricing
it, so a carelessly written spec measures nothing — the same trap the paper
describes and fell into with ``__ballot_sync()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.compiler.ops import Op, PrimitiveKind


@dataclass(frozen=True)
class DceResult:
    """Outcome of dead-code elimination on one loop body.

    Attributes:
        kept: Ops that survive optimization, in original order.
        removed: Ops that were eliminated.
    """

    kept: tuple[Op, ...]
    removed: tuple[Op, ...]

    @property
    def eliminated_everything_measured(self) -> bool:
        """True when no op survived at all (an unrecordable body)."""
        return not self.kept


def eliminate_dead_ops(body: list[Op] | tuple[Op, ...]) -> DceResult:
    """Apply dead-code elimination to a loop body.

    Args:
        body: Ops executed once per (unrolled) loop iteration.

    Returns:
        The surviving and removed ops.  Order of surviving ops is preserved.
    """
    return _eliminate_cached(tuple(body))


#: Barrier kinds for the redundancy pass: two adjacent barriers of the
#: same kind with nothing observable between them are one barrier.
_BARRIER_KINDS = frozenset({
    PrimitiveKind.OMP_BARRIER,
    PrimitiveKind.SYNCTHREADS,
    PrimitiveKind.SYNCTHREADS_COUNT,
    PrimitiveKind.SYNCTHREADS_AND,
    PrimitiveKind.SYNCTHREADS_OR,
})

#: Fence kinds ordered by the scope they cover (wider covers narrower).
_FENCE_RANK = {
    PrimitiveKind.THREADFENCE_BLOCK: 0,
    PrimitiveKind.OMP_FLUSH: 1,
    PrimitiveKind.THREADFENCE: 1,
    PrimitiveKind.THREADFENCE_SYSTEM: 2,
}


def redundant_sync_ops(
        body: list[Op] | tuple[Op, ...]) -> tuple[tuple[int, Op], ...]:
    """Find synchronization ops a peephole pass proves unobservable.

    Two patterns, mirroring what ``nvcc``/``g++`` peepholes delete:
    a barrier immediately following an identical barrier (no memory op
    between them, and barriers whose result feeds the program — the
    ``_count``/``_and``/``_or`` flavors with ``result_used`` — are
    exempt), and a fence immediately following a fence of equal or
    wider scope.

    Args:
        body: Ops executed in program order.

    Returns:
        ``(index, op)`` pairs of the redundant ops, in order.
    """
    out: list[tuple[int, Op]] = []
    for i in range(1, len(body)):
        prev, op = body[i - 1], body[i]
        if op.kind in _BARRIER_KINDS and prev.kind is op.kind \
                and not (op.produces_value and op.result_used):
            out.append((i, op))
        elif op.kind in _FENCE_RANK and prev.kind in _FENCE_RANK \
                and _FENCE_RANK[op.kind] <= _FENCE_RANK[prev.kind]:
            out.append((i, op))
    return tuple(out)


@lru_cache(maxsize=4096)
def _eliminate_cached(body: tuple[Op, ...]) -> DceResult:
    # Ops are frozen/hashable and the pass is pure, so identical bodies
    # (specs rebuild the same tuples across sweeps) share one result.
    kept: list[Op] = []
    removed: list[Op] = []
    for op in body:
        if op.is_eliminable:
            removed.append(op)
        else:
            kept.append(op)
    return DceResult(kept=tuple(kept), removed=tuple(removed))
