"""Dead-code elimination over op sequences.

Mirrors what ``g++ -O3`` / ``nvcc -O3`` do to a micro-benchmark loop body:
an instruction whose result is never consumed and that has no side effect
(no store, no synchronization semantics) is removed.  The measurement
framework runs every baseline/test body through this pass before pricing
it, so a carelessly written spec measures nothing — the same trap the paper
describes and fell into with ``__ballot_sync()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.compiler.ops import Op


@dataclass(frozen=True)
class DceResult:
    """Outcome of dead-code elimination on one loop body.

    Attributes:
        kept: Ops that survive optimization, in original order.
        removed: Ops that were eliminated.
    """

    kept: tuple[Op, ...]
    removed: tuple[Op, ...]

    @property
    def eliminated_everything_measured(self) -> bool:
        """True when no op survived at all (an unrecordable body)."""
        return not self.kept


def eliminate_dead_ops(body: list[Op] | tuple[Op, ...]) -> DceResult:
    """Apply dead-code elimination to a loop body.

    Args:
        body: Ops executed once per (unrolled) loop iteration.

    Returns:
        The surviving and removed ops.  Order of surviving ops is preserved.
    """
    return _eliminate_cached(tuple(body))


@lru_cache(maxsize=4096)
def _eliminate_cached(body: tuple[Op, ...]) -> DceResult:
    # Ops are frozen/hashable and the pass is pure, so identical bodies
    # (specs rebuild the same tuples across sweeps) share one result.
    kept: list[Op] = []
    removed: list[Op] = []
    for op in body:
        if op.is_eliminable:
            removed.append(op)
        else:
            kept.append(op)
    return DceResult(kept=tuple(kept), removed=tuple(removed))
