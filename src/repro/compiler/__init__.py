"""Compiler model: the op IR and a dead-code-elimination pass.

The paper's Section III stresses that a timing harness "must ensure that the
synchronization primitive we are timing is compiled into actual machine code"
— i.e. that the optimizer does not delete it.  We reproduce that concern
with a tiny IR (:mod:`repro.compiler.ops`) and a DCE pass
(:mod:`repro.compiler.dce`) that removes value-producing, side-effect-free
ops whose results are unused.  The measurement framework runs every spec
through this pass; a spec whose measured op gets eliminated is reported as
*unrecordable*, which is exactly what happened to the authors'
``__ballot_sync()`` test.
"""

from repro.compiler.ops import (
    Op,
    PrimitiveKind,
    Scope,
    op_atomic,
    op_barrier,
    op_fence,
    op_plain_update,
)
from repro.compiler.dce import eliminate_dead_ops

__all__ = [
    "Op",
    "PrimitiveKind",
    "Scope",
    "op_atomic",
    "op_barrier",
    "op_fence",
    "op_plain_update",
    "eliminate_dead_ops",
]
