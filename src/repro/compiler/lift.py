"""Loop lifting: compile steady kernels into replayable block plans.

The dispatcher (:mod:`repro.compiler.dispatcher`) wants to skip the
generator machinery entirely for kernels whose *control flow* does not
depend on the values they read — the "steady" kernels that dominate the
paper's characterization sweeps.  This module provides the two halves
of that bet:

* **Purity analysis** (:func:`kernel_purity`): a conservative AST
  whitelist proving a kernel generator touches nothing outside its
  thread context, its (immutable) closure cells, and the interpreter's
  memory requests.  Only pure kernels may be memoized or lifted — an
  impure kernel could consult ambient state the cache key cannot see.
* **Symbolic capture** (:func:`capture_block_plan`): run one block of
  the kernel once with :class:`Sym` placeholders fed back for every
  value a read/atomic would produce.  Arithmetic on a ``Sym`` builds an
  expression tree; *using* one where a concrete value is required — a
  branch, an index, an ``int()``/``bool()`` conversion — raises
  :class:`CaptureEscape`, proving the kernel is *not* steady, and the
  dispatcher falls back to the batched fast tier.  A capture that runs
  to completion yields a :class:`BlockPlan`: the pass schedule is
  static, so per-warp clocks, stats, step charges, and the ordered list
  of memory effects are recorded once and replayed against fresh data
  with no generator stepping at all.

Every replayed effect reproduces the exact numpy operation sequence of
:func:`repro.cuda.fastpath.run_block_fast` (gathers via ``take``,
duplicate-target writes in lane order, the three atomic serialization
modes), so plan execution is byte-identical to the fast tier — which is
itself pinned byte-identical to the scalar reference by the
differential-fuzz harness.
"""

from __future__ import annotations

import ast
import dis
import enum
import hashlib
import inspect
import marshal
import operator
import textwrap
import types
from dataclasses import fields as _dc_fields

import numpy as np


class CaptureEscape(Exception):
    """Capture met behaviour it cannot prove steady (not an error)."""


# --------------------------------------------------------------------- #
# Symbolic values
# --------------------------------------------------------------------- #

_BINFN = {
    "+": operator.add, "-": operator.sub, "*": operator.mul,
    "/": operator.truediv, "//": operator.floordiv, "%": operator.mod,
    "**": operator.pow, "&": operator.and_, "|": operator.or_,
    "^": operator.xor, "<<": operator.lshift, ">>": operator.rshift,
    "==": operator.eq, "!=": operator.ne, "<": operator.lt,
    "<=": operator.le, ">": operator.gt, ">=": operator.ge,
}
_UNFN = {
    "neg": operator.neg, "pos": operator.pos,
    "invert": operator.invert, "abs": operator.abs,
}


class Sym:
    """A placeholder for one lane's yet-unknown read/atomic result.

    Arithmetic builds an expression tree (evaluated per lane with exact
    Python semantics at plan execution); any conversion that would let
    the value steer control flow or indexing raises
    :class:`CaptureEscape`.
    """

    __slots__ = ("node",)

    def __init__(self, node: tuple) -> None:
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sym({self.node!r})"


def _make_binop(opname: str):
    def fwd(self, other):
        other_node = other.node if type(other) is Sym else ("k", other)
        return Sym(("b", opname, self.node, other_node))

    def rev(self, other):
        return Sym(("b", opname, ("k", other), self.node))

    return fwd, rev


for _op, (_fname, _rname) in {
        "+": ("__add__", "__radd__"), "-": ("__sub__", "__rsub__"),
        "*": ("__mul__", "__rmul__"), "/": ("__truediv__", "__rtruediv__"),
        "//": ("__floordiv__", "__rfloordiv__"),
        "%": ("__mod__", "__rmod__"), "**": ("__pow__", "__rpow__"),
        "&": ("__and__", "__rand__"), "|": ("__or__", "__ror__"),
        "^": ("__xor__", "__rxor__"),
        "<<": ("__lshift__", "__rlshift__"),
        ">>": ("__rshift__", "__rrshift__")}.items():
    _f, _r = _make_binop(_op)
    setattr(Sym, _fname, _f)
    setattr(Sym, _rname, _r)
for _op, _fname in {"==": "__eq__", "!=": "__ne__", "<": "__lt__",
                    "<=": "__le__", ">": "__gt__", ">=": "__ge__"}.items():
    setattr(Sym, _fname, _make_binop(_op)[0])


def _make_unop(opname: str):
    def un(self):
        return Sym(("u", opname, self.node))
    return un


Sym.__neg__ = _make_unop("neg")
Sym.__pos__ = _make_unop("pos")
Sym.__invert__ = _make_unop("invert")
Sym.__abs__ = _make_unop("abs")


def _make_escape(name: str):
    def escape(self, *args, **kwargs):
        raise CaptureEscape(f"data-dependent value used via {name}")
    return escape


for _name in ("__bool__", "__index__", "__int__", "__float__",
              "__complex__", "__iter__", "__len__", "__hash__",
              "__getitem__", "__setitem__", "__contains__", "__str__",
              "__format__", "__round__", "__trunc__", "__floor__",
              "__ceil__", "__bytes__", "__divmod__", "__rdivmod__",
              "__getattr__"):
    setattr(Sym, _name, _make_escape(_name))


def _eval_node(node: tuple, env: list):
    """Evaluate a ``Sym`` expression tree against the slot environment.

    Integer arithmetic runs with exact Python semantics (no int64
    wraparound), which is precisely what the reference interpreter's
    per-lane Python expressions produce.
    """
    tag = node[0]
    if tag == "k":
        return node[1]
    if tag == "s":
        return env[node[1]][node[2]]
    if tag == "b":
        return _BINFN[node[1]](_eval_node(node[2], env),
                               _eval_node(node[3], env))
    return _UNFN[node[1]](_eval_node(node[2], env))


def _value_spec(values: list) -> tuple:
    """Encode one pass's per-lane values: constants stay materialized."""
    if any(type(v) is Sym for v in values):
        return ("E", tuple(v.node if type(v) is Sym else ("k", v)
                           for v in values))
    return ("C", list(values))


def _eval_spec(spec: tuple, env: list) -> list:
    if spec[0] == "C":
        return spec[1]
    return [_eval_node(node, env) for node in spec[1]]


# --------------------------------------------------------------------- #
# Purity analysis
# --------------------------------------------------------------------- #

#: Builtins a pure kernel may call: all value-level, effect-free.
PURE_BUILTINS = frozenset({
    "range", "len", "min", "max", "abs", "int", "float", "bool", "round",
    "sum", "any", "all", "enumerate", "zip", "sorted", "reversed",
    "divmod", "tuple", "list", "set", "dict", "frozenset", "str", "repr",
    "pow", "True", "False", "None",
})

_ALLOWED_STMTS = (
    ast.Return, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.For,
    ast.While, ast.If, ast.Expr, ast.Pass, ast.Break, ast.Continue,
)
_ALLOWED_EXPRS = (
    ast.BoolOp, ast.NamedExpr, ast.BinOp, ast.UnaryOp, ast.Lambda,
    ast.IfExp, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp,
    ast.GeneratorExp, ast.Yield, ast.YieldFrom, ast.Compare, ast.Call,
    ast.FormattedValue, ast.JoinedStr, ast.Constant, ast.Attribute,
    ast.Subscript, ast.Starred, ast.Name, ast.List, ast.Tuple, ast.Slice,
)
_ALLOWED_MISC = (
    ast.Load, ast.Store, ast.comprehension, ast.arguments, ast.arg,
    ast.keyword, ast.expr_context, ast.boolop, ast.operator,
    ast.unaryop, ast.cmpop, ast.withitem,
)

_purity_cache: dict = {}


def _collect_bound_names(tree: ast.AST) -> set[str]:
    """Every name the function itself binds (stores, args, targets)."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.Lambda, ast.FunctionDef)):
            args = node.args
            for a in (args.posonlyargs + args.args + args.kwonlyargs):
                bound.add(a.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
    return bound


def _analyze(fn) -> tuple[bool, str]:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return False, "source unavailable"
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        return False, "not a plain function definition"
    func = tree.body[0]
    if func.decorator_list:
        return False, "decorated function"
    if not (func.args.posonlyargs + func.args.args):
        return False, "no context parameter"
    ctx_param = (func.args.posonlyargs + func.args.args)[0].arg

    code = fn.__code__
    allowed_names = (_collect_bound_names(func)
                     | set(code.co_varnames) | set(code.co_freevars)
                     | set(code.co_cellvars) | PURE_BUILTINS)

    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, ast.Attribute):
            if not (isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == ctx_param):
                return False, (f"attribute access outside the context "
                               f"parameter at line {node.lineno}")
        elif isinstance(node, ast.Name):
            if node.id not in allowed_names:
                return False, f"global name {node.id!r} referenced"
        elif isinstance(node, ast.Compare):
            for op in node.ops:
                if isinstance(op, (ast.Is, ast.IsNot)):
                    return False, "identity comparison"
        elif isinstance(node, (_ALLOWED_STMTS + _ALLOWED_EXPRS
                               + _ALLOWED_MISC)):
            continue
        elif not isinstance(node, (ast.Index, ast.ExtSlice)
                            if hasattr(ast, "Index") else ()):
            return False, f"disallowed construct {type(node).__name__}"
    return True, ""


def kernel_purity(fn) -> tuple[bool, str]:
    """Prove (conservatively) that ``fn`` is a pure kernel generator.

    Pure means: the only names reachable are the context parameter,
    locally bound names, closure cells, and a whitelist of effect-free
    builtins; the only attribute accesses (and method calls) are on the
    context parameter; no imports, try/except, global/nonlocal, nested
    ``def``, or identity comparisons.  Cached per code object.
    """
    code = fn.__code__
    cached = _purity_cache.get(code)
    if cached is None:
        cached = _analyze(fn)
        _purity_cache[code] = cached
    return cached


_IMMUTABLE_SCALARS = (bool, int, float, complex, str, bytes, type(None))


def immutable_value(v, depth: int = 0) -> bool:
    """True when ``v`` is deeply immutable (safe as a closure cell of a
    memoized kernel: the kernel cannot mutate it between launches)."""
    if depth > 4:
        return False
    if isinstance(v, _IMMUTABLE_SCALARS) or isinstance(v, enum.Enum):
        return True
    if isinstance(v, (np.integer, np.floating, np.bool_)) \
            or isinstance(v, np.dtype):
        return True
    if isinstance(v, (tuple, frozenset)):
        return all(immutable_value(x, depth + 1) for x in v)
    return False


# --------------------------------------------------------------------- #
# Plan guards
# --------------------------------------------------------------------- #

_global_loads_cache: dict = {}


def _global_load_names(code) -> frozenset[str]:
    """Names the code object (and nested codes) loads as globals."""
    names = _global_loads_cache.get(code)
    if names is None:
        out: set[str] = set()
        stack = [code]
        while stack:
            c = stack.pop()
            for ins in dis.get_instructions(c):
                if ins.opname == "LOAD_GLOBAL":
                    out.add(ins.argval)
            for const in c.co_consts:
                if isinstance(const, types.CodeType):
                    stack.append(const)
        names = frozenset(out)
        _global_loads_cache[code] = names
    return names


def _freeze_guard_value(v, depth: int = 0, seen=None):
    """Stable value tree of one global a captured plan may have baked in.

    Raises:
        CaptureEscape: the value cannot be compared across launches
            (exotic/mutable-opaque type) — the plan must not be cached.
    """
    if depth > 4:
        raise CaptureEscape("global value nesting too deep")
    if v is None or isinstance(v, (bool, int, float, complex, str, bytes)):
        return ("k", v)
    if isinstance(v, enum.Enum):
        return ("enum", type(v).__qualname__, v.name)
    if isinstance(v, (np.integer, np.floating, np.bool_)):
        return ("np", v.dtype.str, v.item())
    if isinstance(v, np.dtype):
        return ("dtype", v.str)
    if isinstance(v, (tuple, list)):
        return ("seq", tuple(_freeze_guard_value(x, depth + 1, seen)
                             for x in v))
    if isinstance(v, (set, frozenset)):
        return ("set", tuple(sorted(
            (_freeze_guard_value(x, depth + 1, seen) for x in v),
            key=repr)))
    if isinstance(v, dict):
        return ("map", tuple(sorted(
            ((k, _freeze_guard_value(x, depth + 1, seen))
             for k, x in v.items()), key=repr)))
    if isinstance(v, np.ndarray):
        return ("nd", v.dtype.str, v.shape,
                hashlib.blake2b(v.tobytes(), digest_size=16).digest())
    if isinstance(v, types.FunctionType):
        if seen is None:
            seen = set()
        if id(v) in seen:
            return ("fn-cycle",)
        seen.add(id(v))
        try:
            code_digest = hashlib.blake2b(
                marshal.dumps(v.__code__), digest_size=16).digest()
            cells = tuple(
                _freeze_guard_value(c.cell_contents, depth + 1, seen)
                for c in (v.__closure__ or ()))
            defaults = tuple(_freeze_guard_value(x, depth + 1, seen)
                             for x in (v.__defaults__ or ()))
        finally:
            seen.discard(id(v))
        return ("fn", code_digest, cells, defaults)
    raise CaptureEscape(f"unguardable global {type(v).__name__}")


def freeze_function_globals(fn) -> tuple:
    """Frozen (name, value) pairs for every module global ``fn`` loads.

    The shape key covers the kernel's code, closure, and defaults, but a
    kernel admitted under ``force`` mode (no static purity proof) may
    also read module globals whose *values* get baked into a captured
    plan as constants.  This signature is captured at lift time and
    re-frozen before every replay, so a changed global — same shapes,
    semantically different behavior — falsifies the candidate plan.

    Raises:
        CaptureEscape: a referenced global cannot be frozen.
    """
    g = fn.__globals__
    pairs = []
    for name in sorted(_global_load_names(fn.__code__)):
        if name in g:
            pairs.append((name, _freeze_guard_value(g[name])))
    return tuple(pairs)


class PlanGuard:
    """Lift-time predicate validating a candidate plan against inputs.

    Captured together with the plan (and persisted beside it in the
    on-disk store); :meth:`validate` must pass before any shape-keyed
    replay.  It re-checks the two channels the structural digest cannot
    watch by itself:

    * the **array set** — names, element counts, dtypes — the capture
      assumed (every recorded index was bounds-checked against these);
    * the kernel's **module globals** (see
      :func:`freeze_function_globals`) — same shape, semantically
      different control flow must not replay.
    """

    __slots__ = ("globals_sig", "arrays")

    def __init__(self, globals_sig: tuple, arrays: tuple) -> None:
        self.globals_sig = globals_sig
        self.arrays = arrays

    def __getstate__(self):
        return (self.globals_sig, self.arrays)

    def __setstate__(self, state):
        self.globals_sig, self.arrays = state

    def validate(self, fn, memory) -> bool:
        """True when the plan is sound for ``fn`` over ``memory`` now."""
        if len(memory) != len(self.arrays):
            return False
        for name, size, dt in self.arrays:
            arr = memory.get(name)
            if not isinstance(arr, np.ndarray) or arr.size != size \
                    or arr.dtype.str != dt:
                return False
        try:
            return freeze_function_globals(fn) == self.globals_sig
        except CaptureEscape:
            return False


def build_plan_guard(fn, memory) -> PlanGuard:
    """Capture a :class:`PlanGuard` for ``fn`` over ``memory``.

    Raises:
        CaptureEscape: when a referenced global defies freezing — the
            plan would not be falsifiable, so it must not be cached.
    """
    arrays = tuple(sorted(
        (name, int(arr.size), arr.dtype.str)
        for name, arr in memory.items()))
    return PlanGuard(freeze_function_globals(fn), arrays)


# --------------------------------------------------------------------- #
# Compiled block plans
# --------------------------------------------------------------------- #

class BlockPlan:
    """One block's precompiled pass schedule.

    Attributes:
        cycles: The block's modeled runtime (static for steady kernels).
        steps: Interpreter step charges the block consumes.
        n_slots: Value-slot count for the effect environment.
        effects: Ordered memory effects (tuples; see the executor).
        stats: Nonzero ``LaunchStats`` field deltas as (name, delta).
    """

    __slots__ = ("cycles", "steps", "n_slots", "effects", "stats", "fp")

    def __init__(self, cycles: float, steps: int, n_slots: int,
                 effects: list, stats: tuple) -> None:
        self.cycles = cycles
        self.steps = steps
        self.n_slots = n_slots
        self.effects = effects
        self.stats = stats
        self.fp = None

    def __getstate__(self):
        return (self.cycles, self.steps, self.n_slots, self.effects,
                self.stats)

    def __setstate__(self, state):
        (self.cycles, self.steps, self.n_slots, self.effects,
         self.stats) = state
        self.fp = None

    def footprint(self):
        """The plan's global-memory footprint (memoized).

        Effect index lists are static, so the
        :class:`~repro.cuda.race.BlockFootprint` the fast tier would
        record per block is derivable without executing anything — that
        is what lets the pool verify chunk disjointness *before*
        dispatching plans to workers.  Atomics count as writes (their
        returned old value makes overlap order-visible), matching
        :meth:`BlockFootprint.record_pass`.
        """
        fp = self.fp
        if fp is None:
            from repro.cuda.race import BlockFootprint
            fp = BlockFootprint()
            for eff in self.effects:
                tag = eff[0]
                if tag == "r":
                    _, in_shared, var, idx_np, _ = eff
                    if not in_shared:
                        fp.reads.setdefault(var, set()).update(
                            idx_np.tolist())
                elif tag == "w":
                    if not eff[1]:
                        fp.writes.setdefault(eff[2], set()).update(eff[4])
                else:  # "a"
                    if not eff[2]:
                        fp.writes.setdefault(eff[3], set()).update(eff[5])
            self.fp = fp
        return fp

    def execute(self, memory: dict[str, np.ndarray],
                shared_decls: dict[str, tuple[int, np.dtype]],
                stats) -> float:
        """Replay the recorded effects against live memory.

        Mirrors the fast tier's numpy operation sequence exactly, so the
        resulting bytes match a generator-stepped execution.
        """
        shared = {name: np.zeros(size, dtype=dt)
                  for name, (size, dt) in shared_decls.items()}
        gflats: dict[str, np.ndarray] = {}
        sflats: dict[str, np.ndarray] = {}
        env: list = [None] * self.n_slots

        def flat_of(in_shared: bool, var: str) -> np.ndarray:
            flats = sflats if in_shared else gflats
            flat = flats.get(var)
            if flat is None:
                flat = (shared[var] if in_shared
                        else memory[var]).reshape(-1)
                flats[var] = flat
            return flat

        for eff in self.effects:
            tag = eff[0]
            if tag == "r":  # read (global or shared)
                _, in_shared, var, idx_np, slot = eff
                env[slot] = flat_of(in_shared, var).take(idx_np).tolist()
            elif tag == "w":  # write (global or shared)
                _, in_shared, var, idx_np, idx_list, vspec, distinct = eff
                flat = flat_of(in_shared, var)
                values = _eval_spec(vspec, env)
                if distinct:
                    np.put(flat, idx_np, values)
                else:
                    # Duplicate targets: lane order decides the survivor.
                    for i, v in zip(idx_list, values):
                        flat[i] = v
            else:  # "a": atomic
                self._execute_atomic(eff, env, flat_of)
        for name, delta in self.stats:
            setattr(stats, name, getattr(stats, name) + delta)
        return self.cycles

    @staticmethod
    def _execute_atomic(eff, env, flat_of) -> None:
        (_, token, in_shared, var, idx_np, idx_list, slot, vspec,
         cspec, mode) = eff
        flat = flat_of(in_shared, var)
        values = _eval_spec(vspec, env)
        if mode == "d":
            # All-distinct targets: gather, vectorized update, scatter.
            old_arr = flat[idx_np]
            olds = old_arr.tolist()
            if token == "cas":
                varr = np.asarray(values)
                carr = np.asarray(_eval_spec(cspec, env))
                new = np.where(old_arr == carr, varr, old_arr)
            elif token == "exch":
                new = np.asarray(values)
            else:
                varr = np.asarray(values)
                if token == "add":
                    new = old_arr + varr
                elif token == "sub":
                    new = old_arr - varr
                elif token == "max":
                    new = np.maximum(old_arr, varr)
                elif token == "min":
                    new = np.minimum(old_arr, varr)
                elif token == "and":
                    new = old_arr & varr
                elif token == "or":
                    new = old_arr | varr
                elif token == "xor":
                    new = old_arr ^ varr
                elif token == "inc":
                    new = np.where(old_arr >= varr, 0, old_arr + 1)
                else:  # dec
                    new = np.where((old_arr == 0) | (old_arr > varr),
                                   varr, old_arr - 1)
            flat[idx_np] = new
            env[slot] = olds
        elif mode == "i":
            # Colliding integer add/sub: one load/store per address.
            running: dict[int, int] = {}
            get = running.get
            olds = []
            if token == "add":
                for i, v in zip(idx_list, values):
                    old = get(i)
                    if old is None:
                        old = flat[i].item()
                    olds.append(old)
                    running[i] = old + v
            else:
                for i, v in zip(idx_list, values):
                    old = get(i)
                    if old is None:
                        old = flat[i].item()
                    olds.append(old)
                    running[i] = old - v
            for i, value in running.items():
                flat[i] = value
            env[slot] = olds
        else:
            # Colliding targets: lane order is the serialization order.
            olds = []
            if token == "cas":
                compares = _eval_spec(cspec, env)
                for i, v, c in zip(idx_list, values, compares):
                    old = flat[i].item()
                    olds.append(old)
                    if old == c:
                        flat[i] = v
            else:
                for i, v in zip(idx_list, values):
                    old = flat[i].item()
                    olds.append(old)
                    if token == "add":
                        flat[i] = old + v
                    elif token == "sub":
                        flat[i] = old - v
                    elif token == "max":
                        flat[i] = max(old, v)
                    elif token == "min":
                        flat[i] = min(old, v)
                    elif token == "and":
                        flat[i] = old & v
                    elif token == "or":
                        flat[i] = old | v
                    elif token == "xor":
                        flat[i] = old ^ v
                    elif token == "inc":
                        flat[i] = 0 if old >= v else old + 1
                    elif token == "dec":
                        flat[i] = v if (old == 0 or old > v) else old - 1
                    else:  # exch
                        flat[i] = v
            env[slot] = olds


# --------------------------------------------------------------------- #
# Symbolic capture of one block
# --------------------------------------------------------------------- #

#: Per-block effect ceiling: plans beyond this are not worth the memory.
EFFECT_CAP = 150_000


def _concrete_index(idx) -> int:
    if type(idx) is Sym:
        raise CaptureEscape("data-dependent memory index")
    if not isinstance(idx, (int, np.integer)):
        raise CaptureEscape(f"non-integer index {type(idx).__name__}")
    return int(idx)


def capture_block_plan(cuda, kernel, launch, ctx, block_idx: int,
                       mem_info: dict[str, tuple[int, np.dtype]],
                       shared_decls: dict[str, tuple[int, np.dtype]],
                       step_cap: int) -> BlockPlan:
    """Dry-run one block with symbolic values and record its plan.

    Raises:
        CaptureEscape: when the kernel is not steady (control flow,
            indices, variants, or collectives depend on data), goes out
            of bounds, or exceeds ``step_cap``/:data:`EFFECT_CAP` — the
            caller falls back to the ordinary fast tier.
    """
    from repro.common.datatypes import DTYPES, INT
    from repro.compiler.ops import Op, PrimitiveKind, Scope
    from repro.cuda import requests as rq
    from repro.cuda.interpreter import (
        _ATOMIC_KIND_OF, _BARRIER_KIND_OF, _COLLECTIVE_KIND_OF,
        _FENCE_KIND_OF, KernelThread, LaunchStats, _Lane, _LaneState)
    from repro.gpu.spec import WARP_SIZE
    from repro.mem.layout import SharedScalar

    _ATOMIC_TOKEN = {
        rq.AtomicAdd: "add", rq.AtomicSub: "sub", rq.AtomicMax: "max",
        rq.AtomicMin: "min", rq.AtomicAnd: "and", rq.AtomicOr: "or",
        rq.AtomicXor: "xor", rq.AtomicInc: "inc", rq.AtomicDec: "dec",
        rq.AtomicCas: "cas", rq.AtomicExch: "exch",
    }

    device = cuda.device
    params = device.params
    alu_cycles = params.alu_cycles
    global_load_cycles = params.global_load_cycles
    uncoalesced = params.uncoalesced_penalty_cycles

    shared_info = {name: (size, np.dtype(dt))
                   for name, (size, dt) in shared_decls.items()}
    stats = LaunchStats()
    effects: list = []
    n_slots = 0
    steps_total = 0

    n = launch.block_threads
    warps: list[list] = []
    for wstart in range(0, n, WARP_SIZE):
        lanes = []
        for t in range(wstart, min(wstart + WARP_SIZE, n)):
            kt = KernelThread(t, block_idx, n, launch.grid_blocks)
            lanes.append(_Lane(gen=kernel(kt), lane_id=t - wstart))
        warps.append(lanes)
    warp_clocks = [0.0] * len(warps)
    issuing_warps: dict[tuple, set[int]] = {}
    resident_blocks = min(
        launch.grid_blocks,
        ctx.occ.active_sms * ctx.occ.blocks_per_sm_resident)

    RUNNING = _LaneState.RUNNING
    DONE = _LaneState.DONE
    BARRIER = _LaneState.BARRIER

    total_lanes = sum(len(lanes) for lanes in warps)
    done_lanes = 0
    barrier_waiting = False

    op_cost_cache: dict = {}
    atomic_cost_cache: dict = {}

    def op_cost(kind) -> float:
        c = op_cost_cache.get(kind)
        if c is None:
            c = device.op_cost(Op(kind=kind), ctx)
            op_cost_cache[kind] = c
        return c

    def atomic_cost(kind, np_dtype, scope, n_addresses, n_lanes,
                    n_warps) -> float:
        key = (kind, np_dtype, scope, n_addresses, n_lanes, n_warps)
        c = atomic_cost_cache.get(key)
        if c is None:
            dtype = INT
            for dt in DTYPES:
                if dt.np_dtype == np_dtype:
                    dtype = dt
                    break
            op = Op(kind=kind, dtype=dtype, target=SharedScalar(dtype),
                    scope=scope)
            c = device.atomic_issue_cost(
                op, ctx, n_addresses=n_addresses, n_lanes=n_lanes,
                issuing_warps=n_warps, resident_blocks=resident_blocks)
            atomic_cost_cache[key] = c
        return c

    def new_slot() -> int:
        nonlocal n_slots
        slot = n_slots
        n_slots += 1
        return slot

    def bind_results(glanes, slot: int) -> None:
        for pos, lane in enumerate(glanes):
            lane.pending = Sym(("s", slot, pos))

    def var_and_indices(reqs, info):
        var = reqs[0].var
        if type(var) is Sym or not isinstance(var, str):
            raise CaptureEscape("data-dependent variable name")
        entry = info.get(var)
        if entry is None:
            raise CaptureEscape(f"undeclared variable {var!r}")
        size, dtype = entry
        idx = []
        for r in reqs:
            if r.var != var:
                raise CaptureEscape("mixed-variable memory pass")
            i = _concrete_index(r.idx)
            if not 0 <= i < size:
                raise CaptureEscape("out-of-bounds access")
            idx.append(i)
        return var, dtype, idx

    def sector_cost(idx, itemsize) -> float:
        sectors = {i * itemsize // 32 for i in idx}
        cost = global_load_cycles
        if len(sectors) > 1:
            cost += uncoalesced * (len(sectors) - 1)
        return cost

    def handle_pass(warp_id, lanes, glanes, reqs) -> float:
        """Record one uniform pass; returns its cost."""
        nonlocal barrier_waiting
        cls = reqs[0].__class__
        for r in reqs:
            if r.__class__ is not cls:
                raise CaptureEscape("divergent (mixed-class) pass")

        if cls is rq.Alu:
            return alu_cycles * max([r.n for r in reqs])
        if cls is rq.GlobalRead or cls is rq.SharedRead:
            in_shared = cls is rq.SharedRead
            info = shared_info if in_shared else mem_info
            var, dtype, idx = var_and_indices(reqs, info)
            slot = new_slot()
            effects.append(("r", in_shared, var,
                            np.array(idx, dtype=np.intp), slot))
            bind_results(glanes, slot)
            if in_shared:
                stats.shared_accesses += len(idx)
                return alu_cycles
            stats.global_accesses += len(idx)
            return sector_cost(idx, dtype.itemsize)
        if cls is rq.GlobalWrite or cls is rq.SharedWrite:
            in_shared = cls is rq.SharedWrite
            info = shared_info if in_shared else mem_info
            var, dtype, idx = var_and_indices(reqs, info)
            distinct = len(set(idx)) == len(idx)
            effects.append(("w", in_shared, var,
                            np.array(idx, dtype=np.intp), idx,
                            _value_spec([r.value for r in reqs]),
                            distinct))
            if in_shared:
                stats.shared_accesses += len(idx)
                return alu_cycles
            stats.global_accesses += len(idx)
            return sector_cost(idx, dtype.itemsize)
        if cls is rq.Syncwarp:
            stats.syncwarps += len(reqs)
            return op_cost(PrimitiveKind.SYNCWARP)
        if cls is rq.Threadfence:
            stats.fences += len(reqs)
            cost = 0.0
            for r in reqs:
                c = op_cost(_FENCE_KIND_OF[r.scope])
                if c > cost:
                    cost = c
            return cost
        if cls is rq.Activemask:
            mask = 0
            for other in lanes:
                if other.state is not DONE:
                    mask |= 1 << other.lane_id
            for lane in glanes:
                lane.pending = mask
            return alu_cycles
        if cls is rq.Syncthreads:
            for lane, r in zip(glanes, reqs):
                lane.state = BARRIER
                lane.barrier_request = r
            barrier_waiting = True
            return 0.0
        if cls in _BARRIER_KIND_OF or cls in _COLLECTIVE_KIND_OF:
            raise CaptureEscape(
                f"unsupported primitive {cls.__name__} in steady capture")
        if cls in _ATOMIC_TOKEN:
            return handle_atomic(warp_id, glanes, reqs, cls)
        raise CaptureEscape(f"unknown request class {cls.__name__}")

    def handle_atomic(warp_id, glanes, reqs, cls) -> float:
        first = reqs[0]
        scope = first.scope
        for r in reqs:
            if r.scope is not scope:
                raise CaptureEscape("mixed-scope atomic pass")
        var = first.var
        if type(var) is Sym or not isinstance(var, str):
            raise CaptureEscape("data-dependent variable name")
        in_shared = var in shared_info
        info = shared_info if in_shared else mem_info
        var, dtype, idx = var_and_indices(reqs, info)
        n_lanes = len(idx)
        effective_scope = Scope.BLOCK if in_shared else scope
        if effective_scope is Scope.BLOCK:
            stats.block_atomics += n_lanes
        else:
            stats.global_atomics += n_lanes
        n_addresses = len(set(idx))
        token = _ATOMIC_TOKEN[cls]
        if n_addresses == n_lanes:
            mode = "d"
        elif token in ("add", "sub") and dtype.kind in "iu":
            mode = "i"
        else:
            mode = "s"
        vspec = _value_spec([r.value for r in reqs])
        cspec = _value_spec([r.compare for r in reqs]) \
            if cls is rq.AtomicCas else None
        slot = new_slot()
        effects.append(("a", token, in_shared, var,
                        np.array(idx, dtype=np.intp), idx, slot, vspec,
                        cspec, mode))
        bind_results(glanes, slot)
        kind = _ATOMIC_KIND_OF[cls]
        seen = issuing_warps.setdefault((kind, var), set())
        seen.add(warp_id)
        return atomic_cost(kind, dtype, effective_scope, n_addresses,
                           n_lanes, len(seen))

    while done_lanes < total_lanes:
        progressed = False
        for warp_id, lanes in enumerate(warps):
            glanes = []
            reqs = []
            n_steps = 0
            for lane in lanes:
                if lane.state is not RUNNING:
                    continue
                n_steps += 1
                try:
                    request = lane.gen.send(lane.pending)
                except StopIteration:
                    lane.state = DONE
                    done_lanes += 1
                    continue
                lane.pending = None
                glanes.append(lane)
                reqs.append(request)
            if n_steps:
                steps_total += n_steps
                if steps_total > step_cap:
                    raise CaptureEscape("step budget reached in capture")
                progressed = True
            if not reqs:
                continue
            if len(effects) > EFFECT_CAP:
                raise CaptureEscape("plan too large")
            cost = handle_pass(warp_id, lanes, glanes, reqs)
            if cost > 0:
                warp_clocks[warp_id] += cost
        if barrier_waiting:
            waiting = []
            n_live = 0
            n_total = 0
            for lanes in warps:
                for lane in lanes:
                    n_total += 1
                    state = lane.state
                    if state is BARRIER:
                        waiting.append(lane)
                        n_live += 1
                    elif state is not DONE:
                        n_live += 1
            if waiting and len(waiting) == n_live:
                if n_live < n_total:
                    raise CaptureEscape("barrier with returned threads")
                stats.syncthreads += 1
                cost = op_cost(_BARRIER_KIND_OF[rq.Syncthreads])
                sync_time = max(warp_clocks) + cost
                for w in range(len(warp_clocks)):
                    warp_clocks[w] = sync_time
                for lane in waiting:
                    lane.state = RUNNING
                    lane.pending = None
                    lane.barrier_request = None
                barrier_waiting = False
                progressed = True
        if not progressed:
            raise CaptureEscape("deadlock during capture")

    stat_deltas = tuple(
        (f.name, getattr(stats, f.name)) for f in _dc_fields(stats)
        if getattr(stats, f.name))
    return BlockPlan(
        cycles=max(warp_clocks) if warp_clocks else 0.0,
        steps=steps_total,
        n_slots=n_slots,
        effects=effects,
        stats=stat_deltas,
    )


# --------------------------------------------------------------------- #
# Compiled OpenMP region plans
# --------------------------------------------------------------------- #

#: Values a captured OpenMP effect may materialize as a constant.
_PLAN_SCALARS = (bool, int, float, np.integer, np.floating, np.bool_)


def _plan_value_node(v) -> tuple:
    if type(v) is Sym:
        return v.node
    if isinstance(v, _PLAN_SCALARS):
        return ("k", v)
    raise CaptureEscape(
        f"unsupported value type {type(v).__name__} in region capture")


class RegionPlan:
    """One OpenMP parallel region's precompiled schedule.

    The capture proves the region *steady* — request order, indices,
    lock/barrier structure, and costs independent of shared-memory
    content — so everything but the data values is static: per-thread
    clocks, the elapsed time, barrier/request counts, and the ordered
    effect list.  :meth:`execute` replays the effects against fresh
    arrays with the exact scalar operation sequence of the reference
    scheduler (``.item()`` loads, Python-semantics arithmetic via the
    ``Sym`` expression trees, element stores), so results are
    byte-identical to a generator-stepped region.

    Effects (store-buffer drains are already serialized into plain
    writes at their flush points, in buffer insertion order):

    * ``("r", var, idx, slot)`` — load ``var[idx]`` into ``slot``
      (plain reads that hit the thread's own store buffer at capture
      time never become effects: their value is forwarded
      symbolically);
    * ``("w", var, idx, node)`` — store an expression to ``var[idx]``;
    * ``("au", var, idx, slot, node)`` — atomic read-modify-write:
      load the old value into ``slot``, store the update expression.
    """

    __slots__ = ("thread_times", "elapsed", "barriers", "requests",
                 "steps", "n_slots", "effects")

    def __init__(self, thread_times: tuple, elapsed: float,
                 barriers: int, requests: int, steps: int,
                 n_slots: int, effects: list) -> None:
        self.thread_times = thread_times
        self.elapsed = elapsed
        self.barriers = barriers
        self.requests = requests
        self.steps = steps
        self.n_slots = n_slots
        self.effects = effects

    def __getstate__(self):
        return (self.thread_times, self.elapsed, self.barriers,
                self.requests, self.steps, self.n_slots, self.effects)

    def __setstate__(self, state):
        (self.thread_times, self.elapsed, self.barriers, self.requests,
         self.steps, self.n_slots, self.effects) = state

    def execute(self, memory: dict[str, np.ndarray]) -> None:
        """Replay the recorded effects against live shared arrays."""
        flats: dict[str, np.ndarray] = {}
        env: list = [None] * self.n_slots

        def flat_of(var: str) -> np.ndarray:
            flat = flats.get(var)
            if flat is None:
                flat = memory[var].reshape(-1)
                flats[var] = flat
            return flat

        for eff in self.effects:
            tag = eff[0]
            if tag == "r":
                _, var, idx, slot = eff
                env[slot] = (flat_of(var)[idx].item(),)
            elif tag == "w":
                _, var, idx, node = eff
                flat_of(var)[idx] = _eval_node(node, env)
            else:  # "au"
                _, var, idx, slot, node = eff
                flat = flat_of(var)
                env[slot] = (flat[idx].item(),)
                flat[idx] = _eval_node(node, env)


def capture_region_plan(omp, body,
                        shared_info: dict[str, tuple[int, np.dtype]],
                        step_cap: int) -> RegionPlan:
    """Dry-run one parallel region with symbolic values and record it.

    Mirrors the reference scheduler's interleaved sweep (which the
    batched rounds of :func:`repro.openmp.fastpath.parallel_fast` are
    equivalent to) with :class:`Sym` placeholders fed back for every
    read/atomic result: store-buffer forwarding, lock
    acquisition/waiting order, and barrier releases all resolve
    concretely for a steady region, while atomic-update functions are
    applied to symbols so their expression trees replay with exact
    Python semantics.

    Raises:
        CaptureEscape: when the region is not steady (data steers
            control flow, indices, or lock names), uses a construct that
            runs arbitrary code against memory (``single``,
            ``critical``), raises, goes out of bounds, or exceeds
            ``step_cap``/:data:`EFFECT_CAP` — the caller falls back to
            the batched fast tier.
    """
    from repro.compiler.ops import PrimitiveKind
    from repro.common.datatypes import DTYPES, INT
    from repro.openmp import requests as rq
    from repro.openmp.fastpath import make_cost_model
    from repro.openmp.interpreter import ThreadContext

    machine = omp.machine
    ctx = omp._ctx
    n = omp.n_threads
    relaxed = omp.relaxed_consistency
    mem_cost, plain_cost = make_cost_model(machine, ctx)

    PLAIN_READ = PrimitiveKind.PLAIN_READ
    PLAIN_UPDATE = PrimitiveKind.PLAIN_UPDATE
    ATOMIC_READ = PrimitiveKind.OMP_ATOMIC_READ
    ATOMIC_WRITE = PrimitiveKind.OMP_ATOMIC_WRITE
    ATOMIC_UPDATE = PrimitiveKind.OMP_ATOMIC_UPDATE
    ATOMIC_CAPTURE = PrimitiveKind.OMP_ATOMIC_CAPTURE

    dtype_by_var: dict[str, object] = {}

    def var_dtype(var: str):
        dt = dtype_by_var.get(var)
        if dt is None:
            dt = INT
            np_dt = shared_info[var][1]
            for d in DTYPES:
                if d.np_dtype == np_dt:
                    dt = d
                    break
            dtype_by_var[var] = dt
        return dt

    effects: list = []
    n_slots = 0

    def new_slot() -> int:
        nonlocal n_slots
        slot = n_slots
        n_slots += 1
        return slot

    gens = [body(ThreadContext(tid, n)) for tid in range(n)]
    clocks = [0.0] * n
    pending: list[object] = [None] * n
    arrival: list[tuple[str, str] | None] = [None] * n
    done = [False] * n
    barriers = 0
    steps = 0
    location_threads: dict[tuple[str, int], set[int]] = {}
    lock_holder: dict[str, int] = {}
    held_locks: list[set[str]] = [set() for _ in range(n)]
    lock_wait: dict[int, str] = {}
    buffers: list[dict[tuple[str, int], object]] = [{} for _ in range(n)]

    def drain(tid: int) -> None:
        buf = buffers[tid]
        if buf:
            for (var, idx), v in buf.items():
                effects.append(("w", var, idx, _plan_value_node(v)))
            buf.clear()

    def charge_mem(tid: int, kind, var: str, idx: int, dtype) -> None:
        touched = location_threads.setdefault((var, idx), set())
        touched.add(tid)
        clocks[tid] += mem_cost(kind, dtype, len(touched) > 1)

    def validate(tid: int, var, idx) -> int:
        if type(var) is Sym or not isinstance(var, str):
            raise CaptureEscape("data-dependent variable name")
        entry = shared_info.get(var)
        if entry is None:
            raise CaptureEscape(f"undeclared shared variable {var!r}")
        i = _concrete_index(idx)
        if not 0 <= i < entry[0]:
            raise CaptureEscape("out-of-bounds access")
        return i

    def lock_name_of(request) -> str:
        name = request.name
        if type(name) is Sym or not isinstance(name, str):
            raise CaptureEscape("data-dependent lock name")
        return name

    def release_arrivals() -> None:
        nonlocal barriers
        barriers += 1
        for t in range(n):
            drain(t)
        sync_time = max(clocks) + plain_cost(PrimitiveKind.OMP_BARRIER)
        for t in range(n):
            clocks[t] = sync_time
            arrival[t] = None
        location_threads.clear()

    while not all(done):
        progressed = False
        if len(effects) > EFFECT_CAP:
            raise CaptureEscape("plan too large")
        for tid in range(n):
            if done[tid] or arrival[tid] is not None:
                continue
            if tid in lock_wait:
                name = lock_wait[tid]
                if name in lock_holder:
                    continue
                del lock_wait[tid]
                lock_holder[name] = tid
                held_locks[tid].add(name)
                clocks[tid] += plain_cost(PrimitiveKind.OMP_LOCK_ACQUIRE)
                progressed = True
                continue
            steps += 1
            if steps > step_cap:
                raise CaptureEscape("step budget reached in capture")
            try:
                request = gens[tid].send(pending[tid])
            except StopIteration:
                if held_locks[tid]:
                    raise CaptureEscape("thread finished holding a lock")
                done[tid] = True
                progressed = True
                continue
            except CaptureEscape:
                raise
            except Exception as exc:
                # The body raised — possibly only because a Sym reached
                # code that needed a concrete value.  The fast tier
                # re-runs with real values and reproduces any genuine
                # error exactly.
                raise CaptureEscape(
                    f"body raised {type(exc).__name__} during capture"
                ) from exc
            pending[tid] = None
            progressed = True
            cls = request.__class__
            if cls is rq.Barrier:
                arrival[tid] = ("barrier", "")
                if any(done):
                    raise CaptureEscape("barrier with finished threads")
                if all(arrival[t] is not None for t in range(n)):
                    release_arrivals()
                continue
            if cls is rq.Single or cls is rq.Critical:
                raise CaptureEscape(
                    f"{cls.__name__} executes arbitrary code on memory")
            if cls is rq.LockAcquire:
                name = lock_name_of(request)
                drain(tid)
                if name in lock_holder:
                    lock_wait[tid] = name
                else:
                    lock_holder[name] = tid
                    held_locks[tid].add(name)
                    clocks[tid] += plain_cost(
                        PrimitiveKind.OMP_LOCK_ACQUIRE)
                continue
            if cls is rq.LockRelease:
                name = lock_name_of(request)
                if lock_holder.get(name) != tid:
                    raise CaptureEscape("release of a lock not held")
                drain(tid)
                del lock_holder[name]
                held_locks[tid].discard(name)
                clocks[tid] += plain_cost(PrimitiveKind.OMP_LOCK_RELEASE)
                continue
            if cls is rq.Read:
                var = request.var
                i = validate(tid, var, request.idx)
                charge_mem(tid, PLAIN_READ, var, i, var_dtype(var))
                buf = buffers[tid]
                if relaxed and (var, i) in buf:
                    pending[tid] = buf[(var, i)]
                else:
                    slot = new_slot()
                    effects.append(("r", var, i, slot))
                    pending[tid] = Sym(("s", slot, 0))
                continue
            if cls is rq.Write:
                var = request.var
                i = validate(tid, var, request.idx)
                charge_mem(tid, PLAIN_UPDATE, var, i, var_dtype(var))
                node = _plan_value_node(request.value)
                if relaxed:
                    buffers[tid][(var, i)] = request.value
                else:
                    effects.append(("w", var, i, node))
                continue
            # Atomics and flushes are flush points under relaxed
            # consistency, exactly as in the reference sweep.
            if relaxed:
                drain(tid)
            if cls is rq.Flush:
                clocks[tid] += plain_cost(PrimitiveKind.OMP_FLUSH)
                continue
            if cls is rq.AtomicRead:
                var = request.var
                i = validate(tid, var, request.idx)
                dtype = request.dtype if request.dtype is not None \
                    else var_dtype(var)
                charge_mem(tid, ATOMIC_READ, var, i, dtype)
                slot = new_slot()
                effects.append(("r", var, i, slot))
                pending[tid] = Sym(("s", slot, 0))
                continue
            if cls is rq.AtomicWrite:
                var = request.var
                i = validate(tid, var, request.idx)
                dtype = request.dtype if request.dtype is not None \
                    else var_dtype(var)
                charge_mem(tid, ATOMIC_WRITE, var, i, dtype)
                effects.append(("w", var, i,
                                _plan_value_node(request.value)))
                continue
            if cls is rq.AtomicCapture or cls is rq.AtomicUpdate:
                var = request.var
                i = validate(tid, var, request.idx)
                dtype = request.dtype if request.dtype is not None \
                    else var_dtype(var)
                is_capture = cls is rq.AtomicCapture
                charge_mem(tid,
                           ATOMIC_CAPTURE if is_capture else ATOMIC_UPDATE,
                           var, i, dtype)
                slot = new_slot()
                old = Sym(("s", slot, 0))
                try:
                    new = request.func(old)
                except CaptureEscape:
                    raise
                except Exception as exc:
                    raise CaptureEscape(
                        "atomic update function is not steady") from exc
                effects.append(("au", var, i, slot,
                                _plan_value_node(new)))
                pending[tid] = (old if request.capture_old else new) \
                    if is_capture else None
                continue
            raise CaptureEscape(
                f"unknown request class {cls.__name__}")
        if not progressed:
            raise CaptureEscape("deadlock during capture")

    for t in range(n):
        drain(t)
    if len(effects) > EFFECT_CAP:
        raise CaptureEscape("plan too large")
    elapsed = max(clocks) if clocks else 0.0
    elapsed += plain_cost(PrimitiveKind.OMP_BARRIER)
    return RegionPlan(
        thread_times=tuple(clocks),
        elapsed=elapsed,
        barriers=barriers,
        requests=steps,
        steps=steps,
        n_slots=n_slots,
        effects=effects,
    )
