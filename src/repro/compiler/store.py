"""Persistent on-disk plan cache for the dispatcher's lifted tier.

Lifted plans (:class:`~repro.compiler.lift.BlockPlan` lists for CUDA,
:class:`~repro.compiler.lift.RegionPlan` for OpenMP) are pure data:
effect lists over slot environments plus their guard predicate.  They
survive pickling, so a plan captured once can warm every later process
— cold measurement-service workers in particular — as long as nothing
the plan depends on changed.

Three things key an entry, all already folded into the shape digest by
the dispatcher: the machine fingerprint (cost parameters), the
structural launch/region signature (kernel code + closure, launch
config, array dtypes/shapes), and :data:`DISPATCH_VERSION` (bumped
whenever plan or effect encoding changes).  The guard predicate rides
along inside the entry and is *re-validated* on every load, so global
state the kernel reads is checked against the current process too.

Entries are written atomically (temp file + fsync + ``os.replace``) and
framed with a magic string plus a SHA-256 payload checksum, the same
torn-entry pattern as :mod:`repro.service.cache`: a partial or corrupt
file reads as a miss, never as wrong data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time

from repro.obs.metrics import counter

#: Bump when BlockPlan/RegionPlan/PlanGuard encoding changes — stale
#: on-disk entries from older encodings then simply never match a key.
DISPATCH_VERSION = 1

_MAGIC = b"syncperf-plan/v1\n"
_CHECKSUM_BYTES = 32

_C_HIT = counter("dispatch.disk_hit")
_C_MISS = counter("dispatch.disk_miss")
_C_WRITE = counter("dispatch.disk_write")
_C_CORRUPT = counter("dispatch.disk_corrupt")
_C_EVICT = counter("cache.evictions")


def default_store_root() -> str:
    """Resolve the plan-store directory from the environment.

    ``SYNCPERF_PLAN_CACHE`` wins; otherwise ``$XDG_CACHE_HOME`` or
    ``~/.cache``, under ``syncperf/plans``.
    """
    override = os.environ.get("SYNCPERF_PLAN_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or \
        os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "syncperf", "plans")


def store_from_env():
    """A :class:`PlanStore` iff ``SYNCPERF_PLAN_CACHE`` is set.

    The dispatcher stays memory-only by default — tests and one-shot
    runs should not write to the user's home directory unasked.  The
    measurement service opts in explicitly (its workers are exactly the
    cold-process case the store exists for).
    """
    root = os.environ.get("SYNCPERF_PLAN_CACHE")
    if not root:
        return None
    return PlanStore(root)


class PlanStore:
    """Atomic, checksummed, bounded directory of pickled plan sets.

    One file per shape digest: ``<digest-hex>.plan`` containing
    ``MAGIC + sha256(payload) + payload`` where payload is the pickled
    ``{"version", "digest", "plans", "guard"}`` dict.  ``load`` returns
    ``None`` on any mismatch (magic, checksum, version, digest) and
    counts ``dispatch.disk_corrupt`` when the file was framed but bad.

    Size is bounded by ``max_entries``; ``save`` evicts the
    oldest-mtime entries beyond the cap (counted as
    ``cache.evictions``).
    """

    def __init__(self, root: str | None = None, max_entries: int = 256,
                 clock=time.time) -> None:
        self.root = root or default_store_root()
        self.max_entries = max_entries
        self.clock = clock

    # ------------------------------------------------------------------ #

    def _path(self, digest: bytes) -> str:
        return os.path.join(self.root, digest.hex() + ".plan")

    def load(self, digest: bytes):
        """Return the ``(plans, guard)`` stored for ``digest`` or None."""
        try:
            with open(self._path(digest), "rb") as fh:
                blob = fh.read()
        except (OSError, ValueError):
            _C_MISS.add(1)
            return None
        if not blob.startswith(_MAGIC):
            _C_MISS.add(1)
            if blob:
                _C_CORRUPT.add(1)
            return None
        body = blob[len(_MAGIC):]
        checksum, payload = body[:_CHECKSUM_BYTES], body[_CHECKSUM_BYTES:]
        if hashlib.sha256(payload).digest() != checksum:
            _C_MISS.add(1)
            _C_CORRUPT.add(1)
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:
            _C_MISS.add(1)
            _C_CORRUPT.add(1)
            return None
        if not isinstance(entry, dict) \
                or entry.get("version") != DISPATCH_VERSION \
                or entry.get("digest") != digest:
            _C_MISS.add(1)
            return None
        _C_HIT.add(1)
        return entry["plans"], entry["guard"]

    def save(self, digest: bytes, plans, guard) -> bool:
        """Persist a plan set; returns False when it cannot be pickled."""
        payload_dict = {
            "version": DISPATCH_VERSION,
            "digest": digest,
            "plans": plans,
            "guard": guard,
        }
        try:
            payload = pickle.dumps(payload_dict,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self._path(digest)
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        _C_WRITE.add(1)
        self._evict()
        return True

    def _evict(self) -> None:
        try:
            names = [n for n in os.listdir(self.root)
                     if n.endswith(".plan")]
        except OSError:
            return
        excess = len(names) - self.max_entries
        if excess <= 0:
            return
        stamped = []
        for name in names:
            path = os.path.join(self.root, name)
            try:
                stamped.append((os.path.getmtime(path), path))
            except OSError:
                continue
        stamped.sort()
        for _, path in stamped[:excess]:
            try:
                os.unlink(path)
                _C_EVICT.add(1)
            except OSError:
                pass

    def entries(self) -> int:
        """Number of plan files currently on disk (0 if absent)."""
        try:
            return sum(1 for n in os.listdir(self.root)
                       if n.endswith(".plan"))
        except OSError:
            return 0
