"""Process-wide JIT-style dispatch cache for the interpreters.

The paper's characterization sweeps re-launch the same interpreted
kernels thousands of times per (primitive, contention, machine) point,
so per-launch interpretation cost dominates.  This module memoizes work
per **signature** — (kernel identity, machine fingerprint, launch
config, memory contents) — the way a JIT dispatcher memoizes a
specialized callable per type signature:

* **Replay tier**: the first successful launch of a signature records
  its outcome (changed memory bytes, per-block cycles, stats, step
  charges); identical re-launches apply the recorded effects without
  stepping a single generator.  Sound because eligibility requires the
  kernel to pass :func:`repro.compiler.lift.kernel_purity` with deeply
  immutable closure cells, and the key covers every remaining input.
* **Lifted tier**: for *steady* pure kernels (control flow independent
  of data — proven dynamically by symbolic capture), a
  :class:`~repro.compiler.lift.BlockPlan` list (CUDA) or
  :class:`~repro.compiler.lift.RegionPlan` (OpenMP) compiled at first
  miss executes fresh data with precompiled effects, no generators.
  Plans are keyed by a **shape digest** — kernel code + closure, launch
  config, machine fingerprint, array dtypes/shapes, but *not* element
  content — so a sweep re-launching the same structure over fresh RNG
  inputs hits this tier on every launch after the first
  (``dispatch.shape_hit``).  A :class:`~repro.compiler.lift.PlanGuard`
  captured at lift time re-validates module globals and array structure
  before every reuse, because the shape digest deliberately excludes
  them-at-runtime; a guard failure recaptures instead of replaying.
  When a :class:`~repro.compiler.store.PlanStore` is configured
  (``SYNCPERF_PLAN_CACHE``), plans persist on disk across processes —
  a cold process warms from disk (``dispatch.disk_hit``) before paying
  a capture.
* **Fast/reference tiers**: everything else falls through to the
  existing batched fast path and scalar reference untouched.

All tiers are byte-identical to the reference interpreter; the
differential-fuzz harness pins this with the dispatcher forced on.

Keys include a **machine fingerprint**: a digest of the machine's
parameter dataclasses, revalidated against the live objects on every
launch, so mutating or swapping machine parameters invalidates cached
entries immediately (stale entries age out of the LRU).

Counters (docs/observability.md): ``dispatch.hit`` / ``dispatch.miss``
(keyed launches served / not served from the replay cache),
``dispatch.shape_hit`` (launches/regions served from cached plans
without recapture), ``dispatch.compile`` (plan compilations),
``dispatch.fallback`` (launches the dispatcher examined but left to
the fast/scalar tiers), ``dispatch.lifted_blocks``,
``dispatch.lifted_regions``, ``dispatch.evictions``, and the disk
tier's ``dispatch.disk_hit`` / ``disk_miss`` / ``disk_write`` /
``disk_corrupt`` (see :mod:`repro.compiler.store`).  When a recorder
is installed the tiers also emit spans — ``dispatch.capture``,
``dispatch.replay``, and ``dispatch.lifted`` (with the plan
``source``) — which traced service requests carry across process
boundaries (docs/observability.md, "Cross-process trace context").

The ``SYNCPERF_DISPATCH`` environment variable (``on`` default,
``off``, ``force``) and the :func:`dispatch_disabled` /
:func:`dispatch_forced` context managers control engagement; ``force``
skips the static purity proof (the dynamic capture guards stay on) and
is meant for the fuzz harness.
"""

from __future__ import annotations

import enum
import hashlib
import marshal
import os
import threading
import types
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import fields as _dc_fields
from dataclasses import is_dataclass

import numpy as np

from repro.compiler import lift
from repro.compiler.store import store_from_env
from repro.obs import span as obs_span
from repro.obs.metrics import counter as _counter

_C_HIT = _counter("dispatch.hit")
_C_MISS = _counter("dispatch.miss")
_C_SHAPE_HIT = _counter("dispatch.shape_hit")
_C_COMPILE = _counter("dispatch.compile")
_C_FALLBACK = _counter("dispatch.fallback")
_C_LIFTED = _counter("dispatch.lifted_blocks")
_C_LIFTED_REGIONS = _counter("dispatch.lifted_regions")
_C_EVICT = _counter("dispatch.evictions")

#: Sentinel marking a signature proven unliftable (capture escaped).
_UNLIFTABLE = object()

#: Capture attempts per kernel code object before giving up for good.
_MAX_CAPTURE_ABORTS = 2


# --------------------------------------------------------------------- #
# Engagement mode
# --------------------------------------------------------------------- #

_MODE_STACK: list[str] = []


def dispatch_mode() -> str:
    """Current engagement mode: ``"on"``, ``"off"``, or ``"force"``."""
    if _MODE_STACK:
        return _MODE_STACK[-1]
    mode = os.environ.get("SYNCPERF_DISPATCH", "on").lower()
    return mode if mode in ("on", "off", "force") else "on"


@contextmanager
def dispatch_disabled():
    """Context: route every launch straight to the fast/scalar tiers."""
    _MODE_STACK.append("off")
    try:
        yield
    finally:
        _MODE_STACK.pop()


@contextmanager
def dispatch_forced():
    """Context: key launches without the static purity proof (dynamic
    capture guards remain).  For the fuzz/equivalence harnesses."""
    _MODE_STACK.append("force")
    try:
        yield
    finally:
        _MODE_STACK.pop()


# --------------------------------------------------------------------- #
# Fingerprints and signatures
# --------------------------------------------------------------------- #

class _Unfingerprintable(Exception):
    pass


def _freeze_state(x, depth: int = 0):
    """Recursively convert parameter objects into a stable value tree."""
    if depth > 8:
        raise _Unfingerprintable("nesting too deep")
    if x is None or isinstance(x, (bool, int, float, str, bytes)):
        return x
    if isinstance(x, enum.Enum):
        return ("enum", type(x).__qualname__, x.name)
    if isinstance(x, np.dtype):
        return ("dtype", x.str)
    if isinstance(x, (np.integer, np.floating, np.bool_)):
        return ("np", x.dtype.str, x.item())
    if isinstance(x, (tuple, list)):
        return ("seq", tuple(_freeze_state(v, depth + 1) for v in x))
    if isinstance(x, (set, frozenset)):
        return ("set", tuple(sorted(
            (_freeze_state(v, depth + 1) for v in x), key=repr)))
    if isinstance(x, dict):
        return ("map", tuple(sorted(
            ((k, _freeze_state(v, depth + 1)) for k, v in x.items()),
            key=repr)))
    if is_dataclass(x) and not isinstance(x, type):
        return ("dc", type(x).__qualname__,
                tuple((f.name, _freeze_state(getattr(x, f.name), depth + 1))
                      for f in _dc_fields(x)))
    if isinstance(x, np.ndarray):
        return ("nd", x.dtype.str, x.shape,
                hashlib.blake2b(x.tobytes(), digest_size=16).digest())
    raise _Unfingerprintable(type(x).__name__)


_fp_cache: dict[int, tuple] = {}


def machine_fingerprint(machine) -> bytes | None:
    """Digest of a machine's full parameter state, or None when the
    machine is not fingerprintable (dispatch then disengages).

    The parameter tree is re-frozen and compared against the cached
    state on every call, so in-place parameter mutation invalidates the
    fingerprint immediately.
    """
    try:
        if hasattr(machine, "spec") and hasattr(machine, "atomics"):
            state = ("gpu", type(machine).__qualname__,
                     _freeze_state(machine.spec),
                     _freeze_state(machine.params),
                     _freeze_state(machine.atomics))
        elif hasattr(machine, "topology") and hasattr(machine, "jitter"):
            state = ("cpu", type(machine).__qualname__,
                     _freeze_state(machine.topology),
                     _freeze_state(machine.params),
                     _freeze_state(machine.jitter))
        else:
            return None
    except _Unfingerprintable:
        return None
    cached = _fp_cache.get(id(machine))
    if cached is not None and cached[0] == state:
        return cached[1]
    digest = hashlib.blake2b(repr(state).encode(), digest_size=16).digest()
    _fp_cache[id(machine)] = (state, digest)
    return digest


_code_digests: dict = {}


def _code_digest(code) -> bytes:
    d = _code_digests.get(code)
    if d is None:
        d = hashlib.blake2b(marshal.dumps(code), digest_size=16).digest()
        _code_digests[code] = d
    return d


class _Unsignable(Exception):
    pass


def _freeze_cell(v, permissive: bool, depth: int = 0, seen=None):
    if depth > 6:
        raise _Unsignable("cell nesting too deep")
    if lift.immutable_value(v):
        return _freeze_state(v)
    if not permissive:
        raise _Unsignable(f"mutable closure cell {type(v).__name__}")
    if isinstance(v, (list, tuple)):
        return ("seq", tuple(_freeze_cell(x, True, depth + 1, seen)
                             for x in v))
    if isinstance(v, dict):
        return ("map", tuple(sorted(
            ((k, _freeze_cell(x, True, depth + 1, seen))
             for k, x in v.items()), key=repr)))
    if isinstance(v, (set, frozenset)):
        return ("set", tuple(sorted(
            (_freeze_cell(x, True, depth + 1, seen) for x in v),
            key=repr)))
    if isinstance(v, np.ndarray):
        return ("nd", v.dtype.str, v.shape,
                hashlib.blake2b(v.tobytes(), digest_size=16).digest())
    if isinstance(v, types.FunctionType):
        return ("fn", function_signature(v, True, depth + 1, seen))
    raise _Unsignable(f"unsignable closure cell {type(v).__name__}")


def function_signature(fn, permissive: bool, depth: int = 0,
                       seen=None) -> tuple:
    """Identity of a kernel/body: code digest + closure/default values.

    Recursive closures (a function whose cell holds itself, directly or
    through another function) are frozen as a cycle marker carrying the
    revisited function's code digest — sound because the cycle shape is
    itself part of the structure being digested.

    Raises:
        _Unsignable: when a closure cell or default cannot be frozen
            (mutable in strict mode, or an exotic type).
    """
    if seen is None:
        seen = set()
    if id(fn) in seen:
        return ("fn-cycle", _code_digest(fn.__code__))
    seen.add(id(fn))
    try:
        cells = tuple(_freeze_cell(cell.cell_contents, permissive,
                                   depth, seen)
                      for cell in (fn.__closure__ or ()))
        defaults = tuple(_freeze_cell(v, permissive, depth, seen)
                         for v in (fn.__defaults__ or ()))
    finally:
        seen.discard(id(fn))
    return (_code_digest(fn.__code__), cells, defaults)


def _shape_digest(sig: tuple) -> bytes:
    """Collapse a structural plan signature into 16 stable bytes.

    The signature holds only primitives, bytes digests, enums, and
    (frozen) dataclasses, all with deterministic ``repr``, so the digest
    is stable across processes — which is what lets it double as the
    on-disk plan-store filename and the pool's plan-shipping key.
    """
    return hashlib.blake2b(repr(sig).encode(), digest_size=16).digest()


class _PlanSet:
    """Cached lifted plans plus their reuse guard and shipping blob.

    ``plans`` is a ``BlockPlan`` list (CUDA) or a single ``RegionPlan``
    (OpenMP); ``guard`` the :class:`~repro.compiler.lift.PlanGuard`
    revalidated before every reuse.  ``blob``/``ship_key`` lazily cache
    the pickled form and its content key for pool shipping — keyed by
    content, not shape digest, so a guard-failure recapture under the
    same shape digest can never collide with a worker's stale copy.
    """

    __slots__ = ("plans", "guard", "blob", "ship_key")

    def __init__(self, plans, guard) -> None:
        self.plans = plans
        self.guard = guard
        self.blob = None
        self.ship_key = None


# --------------------------------------------------------------------- #
# Cache entries
# --------------------------------------------------------------------- #

class _CudaEntry:
    __slots__ = ("writes", "block_cycles", "stats", "steps", "nbytes")

    def __init__(self, writes, block_cycles, stats, steps):
        self.writes = writes
        self.block_cycles = block_cycles
        self.stats = stats
        self.steps = steps
        self.nbytes = sum(len(b) for b in writes.values()) + 256


class _OmpEntry:
    __slots__ = ("writes", "times", "elapsed", "barriers", "requests",
                 "max_steps", "nbytes")

    def __init__(self, writes, times, elapsed, barriers, requests,
                 max_steps):
        self.writes = writes
        self.times = times
        self.elapsed = elapsed
        self.barriers = barriers
        self.requests = requests
        self.max_steps = max_steps
        self.nbytes = sum(len(b) for b in writes.values()) + 256


def _apply_writes(writes: dict[str, bytes],
                  memory: dict[str, np.ndarray]) -> None:
    for var, buf in writes.items():
        arr = memory[var]
        arr.reshape(-1)[:] = np.frombuffer(buf, dtype=arr.dtype)


def _diff_writes(pre: dict[str, bytes],
                 memory: dict[str, np.ndarray]) -> dict[str, bytes]:
    writes = {}
    for var, before in pre.items():
        after = memory[var].tobytes()
        if after != before:
            writes[var] = after
    return writes


# --------------------------------------------------------------------- #
# The dispatcher
# --------------------------------------------------------------------- #

class Dispatcher:
    """Process-wide launch/region memo table with LRU bounds.

    Args:
        max_entries: Replay-entry count ceiling.
        max_bytes: Total recorded-write bytes ceiling.
        max_plans: Compiled block-plan signature ceiling.
        memory_cap: Per-launch total memory bytes above which replay
            is not attempted (hashing would eat the win).
    """

    def __init__(self, max_entries: int = 1024,
                 max_bytes: int = 64 << 20,
                 max_plans: int = 256,
                 memory_cap: int = 8 << 20) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_plans = max_plans
        self.memory_cap = memory_cap
        #: Optional on-disk PlanStore (None = memory only).  The
        #: process-wide DISPATCHER picks it up from SYNCPERF_PLAN_CACHE;
        #: the measurement service sets it explicitly for its workers.
        self.plan_store = store_from_env()
        self._lock = threading.RLock()
        self._entries: OrderedDict = OrderedDict()
        self._bytes = 0
        self._plans: OrderedDict = OrderedDict()
        self._capture_aborts: dict = {}

    # ------------------------------ shared ---------------------------- #

    def clear(self) -> None:
        """Drop every cached entry and compiled plan (tests, bench)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._plans.clear()
            self._capture_aborts.clear()

    def stats(self) -> dict:
        """Cache occupancy snapshot."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "plans": len(self._plans),
            }

    def _get_entry(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def _put_entry(self, key, entry) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._entries and (
                    len(self._entries) > self.max_entries
                    or self._bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                _C_EVICT.add(1)

    def _get_plans(self, plan_key):
        with self._lock:
            plans = self._plans.get(plan_key)
            if plans is not None:
                self._plans.move_to_end(plan_key)
            return plans

    def _put_plans(self, plan_key, plans) -> None:
        with self._lock:
            self._plans[plan_key] = plans
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                _C_EVICT.add(1)

    def _lookup_plans(self, digest: bytes, fn, memory, capture):
        """Plans for one shape digest: memory -> disk -> capture.

        Returns ``(plan_set, source)`` where ``plan_set`` is a
        :class:`_PlanSet` or :data:`_UNLIFTABLE` and ``source`` is
        ``"mem"``, ``"disk"``, ``"fresh"``, or ``None`` (unliftable).
        A cached set whose guard fails — same shape, but a module
        global the kernel reads changed — is recaptured, never
        replayed.
        """
        pset = self._get_plans(digest)
        if pset is _UNLIFTABLE:
            return _UNLIFTABLE, None
        if pset is not None:
            if pset.guard is None or pset.guard.validate(fn, memory):
                return pset, "mem"
            pset = None  # guard falsified: environment changed
        store = self.plan_store
        if store is not None:
            loaded = store.load(digest)
            if loaded is not None:
                plans, guard = loaded
                if guard is None or guard.validate(fn, memory):
                    pset = _PlanSet(plans, guard)
                    self._put_plans(digest, pset)
                    return pset, "disk"
        code = fn.__code__
        if self._capture_aborts.get(code, 0) >= _MAX_CAPTURE_ABORTS:
            self._put_plans(digest, _UNLIFTABLE)
            return _UNLIFTABLE, None
        try:
            with obs_span("dispatch.capture", kernel=fn.__name__):
                plans = capture()
                guard = lift.build_plan_guard(fn, memory)
            _C_COMPILE.add(1)
        except Exception:
            self._capture_aborts[code] = \
                self._capture_aborts.get(code, 0) + 1
            self._put_plans(digest, _UNLIFTABLE)
            return _UNLIFTABLE, None
        pset = _PlanSet(plans, guard)
        self._put_plans(digest, pset)
        if store is not None:
            store.save(digest, plans, guard)
        return pset, "fresh"

    def _digest_memory(self, memory) -> tuple | None:
        """(static signature, content digest, pre-bytes snapshot), or
        None when memory is ineligible (non-arrays, too large)."""
        static = []
        pre = {}
        total = 0
        h = hashlib.blake2b(digest_size=16)
        for name in sorted(memory):
            arr = memory[name]
            if not isinstance(arr, np.ndarray):
                return None
            buf = arr.tobytes()
            total += len(buf)
            if total > self.memory_cap:
                return None
            static.append((name, arr.dtype.str, arr.shape))
            pre[name] = buf
            h.update(name.encode())
            h.update(arr.dtype.str.encode())
            h.update(repr(arr.shape).encode())
            h.update(buf)
        return tuple(static), h.digest(), pre

    # ------------------------------- CUDA ----------------------------- #

    def begin_cuda(self, cuda, kernel, launch, memory, shared_decls):
        """Key one CUDA launch; returns a ticket or None (disengaged).

        Eligibility: dispatch mode on/force, fingerprintable device,
        statically pure kernel with immutable cells (skipped under
        ``force``), all-ndarray memory under the size cap.
        """
        mode = dispatch_mode()
        if mode == "off":
            return None
        fp = machine_fingerprint(cuda.device)
        if fp is None:
            _C_FALLBACK.add(1)
            return None
        forced = mode == "force"
        if not forced and not lift.kernel_purity(kernel)[0]:
            _C_FALLBACK.add(1)
            return None
        try:
            ksig = function_signature(kernel, forced)
        except _Unsignable:
            _C_FALLBACK.add(1)
            return None
        digested = self._digest_memory(memory)
        if digested is None:
            _C_FALLBACK.add(1)
            return None
        static, content, pre = digested
        shared_sig = tuple(sorted(
            (name, size, np.dtype(dt).str)
            for name, (size, dt) in shared_decls.items()))
        plan_key = _shape_digest(
            ("cuda-plan", ksig, launch, shared_sig, fp, static))
        key = ("cuda", ksig, launch, shared_sig, fp, static, content)
        return _CudaTicket(self, cuda, kernel, launch, memory,
                           shared_decls, key, plan_key, pre)

    # ------------------------------ OpenMP ---------------------------- #

    def begin_omp(self, omp, body, shared):
        """Key one OpenMP parallel region; returns a ticket or None."""
        mode = dispatch_mode()
        if mode == "off":
            return None
        fp = machine_fingerprint(omp.machine)
        if fp is None:
            _C_FALLBACK.add(1)
            return None
        forced = mode == "force"
        if not forced and not lift.kernel_purity(body)[0]:
            _C_FALLBACK.add(1)
            return None
        try:
            bsig = function_signature(body, forced)
        except _Unsignable:
            _C_FALLBACK.add(1)
            return None
        shared_map = dict(shared or {})
        digested = self._digest_memory(shared_map)
        if digested is None:
            _C_FALLBACK.add(1)
            return None
        static, content, pre = digested
        plan_key = _shape_digest(
            ("omp-plan", bsig, omp.n_threads, omp.affinity,
             omp.relaxed_consistency, fp, static))
        key = ("omp", bsig, omp.n_threads, omp.affinity,
               omp.relaxed_consistency, fp, static, content)
        return _OmpTicket(self, omp, body, shared_map, key, plan_key, pre)


class _CudaTicket:
    """One keyed CUDA launch: replay -> lifted -> record."""

    __slots__ = ("disp", "cuda", "kernel", "launch", "memory",
                 "shared_decls", "key", "plan_key", "pre", "hit")

    def __init__(self, disp, cuda, kernel, launch, memory, shared_decls,
                 key, plan_key, pre):
        self.disp = disp
        self.cuda = cuda
        self.kernel = kernel
        self.launch = launch
        self.memory = memory
        self.shared_decls = shared_decls
        self.key = key
        self.plan_key = plan_key
        self.pre = pre
        self.hit = False

    def replay(self, stats, budget) -> list[float] | None:
        """Apply a recorded launch, or None on miss."""
        entry = self.disp._get_entry(self.key)
        if entry is None or entry.steps > budget.remaining:
            _C_MISS.add(1)
            return None
        with obs_span("dispatch.replay", kind="cuda",
                      blocks=self.launch.grid_blocks):
            _apply_writes(entry.writes, self.memory)
            for name, delta in entry.stats:
                setattr(stats, name, getattr(stats, name) + delta)
            budget.charge(entry.steps)
        self.hit = True
        _C_HIT.add(1)
        return list(entry.block_cycles)

    def run_lifted(self, ctx, stats, budget,
                   block_jobs: int = 1) -> list[float] | None:
        """Execute via compiled block plans; None when unliftable.

        With ``block_jobs > 1`` the plans are marshalled to the
        persistent worker pool (cached worker-side by content key) and
        replayed there instead of re-interpreted; any hazard falls back
        to the serial plan loop below, byte-identically.
        """
        disp = self.disp

        def capture():
            mem_info = {name: (arr.size, arr.dtype)
                        for name, arr in self.memory.items()}
            return [lift.capture_block_plan(
                self.cuda, self.kernel, self.launch, ctx, b,
                mem_info, self.shared_decls, self.cuda.max_steps)
                for b in range(self.launch.grid_blocks)]

        pset, source = disp._lookup_plans(self.plan_key, self.kernel,
                                          self.memory, capture)
        if pset is _UNLIFTABLE:
            _C_FALLBACK.add(1)
            return None
        if source == "mem":
            _C_SHAPE_HIT.add(1)
        plans = pset.plans
        with obs_span("dispatch.lifted", kind="cuda",
                      blocks=len(plans), source=source):
            if block_jobs > 1 and self.launch.grid_blocks > 1:
                from repro.cuda.parallel import try_parallel_plans
                cycles = try_parallel_plans(pset, self.memory,
                                            self.shared_decls, stats,
                                            budget, block_jobs)
                if cycles is not None:
                    _C_LIFTED.add(len(plans))
                    return cycles
            from repro.cuda.fastpath import run_block_fast
            cycles: list[float] = []
            n_lifted = 0
            for block_idx, plan in enumerate(plans):
                if plan.steps <= budget.remaining:
                    cycles.append(plan.execute(self.memory,
                                               self.shared_decls,
                                               stats))
                    budget.charge(plan.steps)
                    n_lifted += 1
                else:
                    # Budget would trip mid-block: the fast tier raises
                    # at the exact step with the exact partial state.
                    cycles.append(run_block_fast(
                        self.cuda, self.kernel, self.launch, ctx,
                        block_idx, self.memory, self.shared_decls,
                        stats, budget))
            if n_lifted:
                _C_LIFTED.add(n_lifted)
            return cycles

    def record(self, block_cycles, stats, budget) -> None:
        """Store the completed launch for future replay (miss only)."""
        if self.hit:
            return
        writes = _diff_writes(self.pre, self.memory)
        entry = _CudaEntry(
            writes=writes,
            block_cycles=tuple(block_cycles),
            stats=tuple((f.name, getattr(stats, f.name))
                        for f in _dc_fields(stats)
                        if getattr(stats, f.name)),
            steps=budget.used,
        )
        if entry.nbytes <= self.disp.memory_cap:
            self.disp._put_entry(self.key, entry)


class _OmpTicket:
    """One keyed OpenMP region: replay -> lifted -> record."""

    __slots__ = ("disp", "omp", "body", "shared_map", "key", "plan_key",
                 "pre", "hit")

    def __init__(self, disp, omp, body, shared_map, key, plan_key, pre):
        self.disp = disp
        self.omp = omp
        self.body = body
        self.shared_map = shared_map
        self.key = key
        self.plan_key = plan_key
        self.pre = pre
        self.hit = False

    def replay(self):
        """Apply a recorded region; returns a ParallelResult or None."""
        entry = self.disp._get_entry(self.key)
        if entry is None or self.omp.max_steps < entry.max_steps:
            _C_MISS.add(1)
            return None
        from repro.openmp.interpreter import ParallelResult
        with obs_span("dispatch.replay", kind="omp"):
            memory = dict(self.shared_map)
            _apply_writes(entry.writes, memory)
        self.hit = True
        _C_HIT.add(1)
        return ParallelResult(
            memory=memory,
            thread_times_ns=list(entry.times),
            elapsed_ns=entry.elapsed,
            races=[],
            barriers=entry.barriers,
            requests=entry.requests,
            trace=None,
        )

    def run_lifted(self):
        """Execute via a compiled region plan; None when unliftable.

        Returns a ParallelResult byte-identical to the fast/reference
        tiers: the plan mutates the shared arrays in place with the
        exact scalar operation sequence, and times/counters were proven
        content-independent at capture.  The caller still ``record``\\ s
        the result, so tier 0 stacks on top.
        """
        omp = self.omp
        disp = self.disp

        def capture():
            shared_info = {name: (arr.size, arr.dtype)
                           for name, arr in self.shared_map.items()}
            return lift.capture_region_plan(omp, self.body, shared_info,
                                            omp.max_steps)

        pset, source = disp._lookup_plans(self.plan_key, self.body,
                                          self.shared_map, capture)
        if pset is _UNLIFTABLE:
            _C_FALLBACK.add(1)
            return None
        plan = pset.plans
        if plan.steps > omp.max_steps:
            # Captured under a larger budget; only a stepped execution
            # knows where the current budget trips.
            return None
        if source == "mem":
            _C_SHAPE_HIT.add(1)
        from repro.openmp.interpreter import ParallelResult
        with obs_span("dispatch.lifted", kind="omp", source=source):
            memory = dict(self.shared_map)
            plan.execute(memory)
        _C_LIFTED_REGIONS.add(1)
        return ParallelResult(
            memory=memory,
            thread_times_ns=list(plan.thread_times),
            elapsed_ns=plan.elapsed,
            races=[],
            barriers=plan.barriers,
            requests=plan.requests,
            trace=None,
        )

    def record(self, result) -> None:
        """Store the completed region for future replay (miss only)."""
        if self.hit or result.trace is not None or result.races:
            return
        writes = _diff_writes(self.pre, self.shared_map)
        entry = _OmpEntry(
            writes=writes,
            times=tuple(result.thread_times_ns),
            elapsed=result.elapsed_ns,
            barriers=result.barriers,
            requests=result.requests,
            max_steps=self.omp.max_steps,
        )
        if entry.nbytes <= self.disp.memory_cap:
            self.disp._put_entry(self.key, entry)


#: The process-wide dispatcher every interpreter shares.
DISPATCHER = Dispatcher()
