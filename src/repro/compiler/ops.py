"""The op IR: every synchronization primitive the paper measures.

An :class:`Op` is one dynamic instance of a primitive inside a measured loop
body.  The cost models price ops; the DCE pass may delete them; the
functional interpreters execute them over real data.

Eliminability follows the compiler's rules, not the measurer's wishes: an op
can be deleted only if it produces a value, has no side effect (no memory
mutation, no synchronization semantics), and its result is unused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.common.datatypes import DataType
from repro.mem.layout import MemoryTarget


class Scope(enum.Enum):
    """Scope of an atomic or fence operation."""

    BLOCK = "block"
    DEVICE = "device"
    SYSTEM = "system"


class PrimitiveKind(enum.Enum):
    """Every primitive measured in the paper, CPU and GPU."""

    # --- OpenMP (CPU) ---
    OMP_BARRIER = "omp_barrier"
    OMP_ATOMIC_UPDATE = "omp_atomic_update"
    OMP_ATOMIC_READ = "omp_atomic_read"
    OMP_ATOMIC_WRITE = "omp_atomic_write"
    OMP_ATOMIC_CAPTURE = "omp_atomic_capture"
    OMP_CRITICAL_UPDATE = "omp_critical_update"
    OMP_FLUSH = "omp_flush"
    OMP_LOCK_ACQUIRE = "omp_lock_acquire"
    OMP_LOCK_RELEASE = "omp_lock_release"
    # Non-synchronizing scaffold ops used by baseline bodies.
    PLAIN_READ = "plain_read"
    PLAIN_UPDATE = "plain_update"

    # --- CUDA (GPU) ---
    SYNCTHREADS = "syncthreads"
    SYNCTHREADS_COUNT = "syncthreads_count"
    SYNCTHREADS_AND = "syncthreads_and"
    SYNCTHREADS_OR = "syncthreads_or"
    SYNCWARP = "syncwarp"
    GRID_SYNC = "grid_sync"
    MULTI_GRID_SYNC = "multi_grid_sync"
    ATOMIC_ADD = "atomic_add"
    ATOMIC_SUB = "atomic_sub"
    ATOMIC_MAX = "atomic_max"
    ATOMIC_MIN = "atomic_min"
    ATOMIC_AND = "atomic_and"
    ATOMIC_OR = "atomic_or"
    ATOMIC_XOR = "atomic_xor"
    ATOMIC_INC = "atomic_inc"
    ATOMIC_DEC = "atomic_dec"
    ATOMIC_CAS = "atomic_cas"
    ATOMIC_EXCH = "atomic_exch"
    THREADFENCE = "threadfence"
    THREADFENCE_BLOCK = "threadfence_block"
    THREADFENCE_SYSTEM = "threadfence_system"
    SHFL_SYNC = "shfl_sync"
    SHFL_UP_SYNC = "shfl_up_sync"
    SHFL_DOWN_SYNC = "shfl_down_sync"
    SHFL_XOR_SYNC = "shfl_xor_sync"
    VOTE_ALL = "vote_all"
    VOTE_ANY = "vote_any"
    VOTE_BALLOT = "vote_ballot"
    MATCH_ANY_SYNC = "match_any_sync"
    MATCH_ALL_SYNC = "match_all_sync"
    ACTIVEMASK = "activemask"
    REDUCE_MAX_SYNC = "reduce_max_sync"


#: Kinds whose execution mutates memory (never eliminable).
_MUTATING = frozenset({
    PrimitiveKind.OMP_ATOMIC_UPDATE,
    PrimitiveKind.OMP_ATOMIC_WRITE,
    PrimitiveKind.OMP_ATOMIC_CAPTURE,
    PrimitiveKind.OMP_CRITICAL_UPDATE,
    PrimitiveKind.PLAIN_UPDATE,
    PrimitiveKind.ATOMIC_ADD,
    PrimitiveKind.ATOMIC_SUB,
    PrimitiveKind.ATOMIC_MAX,
    PrimitiveKind.ATOMIC_MIN,
    PrimitiveKind.ATOMIC_AND,
    PrimitiveKind.ATOMIC_OR,
    PrimitiveKind.ATOMIC_XOR,
    PrimitiveKind.ATOMIC_INC,
    PrimitiveKind.ATOMIC_DEC,
    PrimitiveKind.ATOMIC_CAS,
    PrimitiveKind.ATOMIC_EXCH,
})

#: Kinds with synchronization semantics (never eliminable).
_SYNCHRONIZING = frozenset({
    PrimitiveKind.OMP_BARRIER,
    PrimitiveKind.OMP_FLUSH,
    PrimitiveKind.OMP_LOCK_ACQUIRE,
    PrimitiveKind.OMP_LOCK_RELEASE,
    PrimitiveKind.SYNCTHREADS,
    PrimitiveKind.SYNCTHREADS_COUNT,
    PrimitiveKind.SYNCTHREADS_AND,
    PrimitiveKind.SYNCTHREADS_OR,
    PrimitiveKind.SYNCWARP,
    PrimitiveKind.GRID_SYNC,
    PrimitiveKind.MULTI_GRID_SYNC,
    PrimitiveKind.THREADFENCE,
    PrimitiveKind.THREADFENCE_BLOCK,
    PrimitiveKind.THREADFENCE_SYSTEM,
})

#: Kinds that produce a value a later instruction could consume.
_VALUE_PRODUCING = frozenset({
    PrimitiveKind.OMP_ATOMIC_READ,
    PrimitiveKind.OMP_ATOMIC_CAPTURE,
    PrimitiveKind.PLAIN_READ,
    PrimitiveKind.ATOMIC_CAS,
    PrimitiveKind.ATOMIC_EXCH,
    PrimitiveKind.SYNCTHREADS_COUNT,
    PrimitiveKind.SYNCTHREADS_AND,
    PrimitiveKind.SYNCTHREADS_OR,
    PrimitiveKind.SHFL_SYNC,
    PrimitiveKind.SHFL_UP_SYNC,
    PrimitiveKind.SHFL_DOWN_SYNC,
    PrimitiveKind.SHFL_XOR_SYNC,
    PrimitiveKind.VOTE_ALL,
    PrimitiveKind.VOTE_ANY,
    PrimitiveKind.VOTE_BALLOT,
    PrimitiveKind.MATCH_ANY_SYNC,
    PrimitiveKind.MATCH_ALL_SYNC,
    PrimitiveKind.ACTIVEMASK,
    PrimitiveKind.REDUCE_MAX_SYNC,
})

#: All atomic read-modify-write kinds (CPU and GPU).
ATOMIC_KINDS = frozenset({
    PrimitiveKind.OMP_ATOMIC_UPDATE,
    PrimitiveKind.OMP_ATOMIC_CAPTURE,
    PrimitiveKind.ATOMIC_ADD,
    PrimitiveKind.ATOMIC_SUB,
    PrimitiveKind.ATOMIC_MAX,
    PrimitiveKind.ATOMIC_MIN,
    PrimitiveKind.ATOMIC_AND,
    PrimitiveKind.ATOMIC_OR,
    PrimitiveKind.ATOMIC_XOR,
    PrimitiveKind.ATOMIC_INC,
    PrimitiveKind.ATOMIC_DEC,
    PrimitiveKind.ATOMIC_CAS,
    PrimitiveKind.ATOMIC_EXCH,
})

#: GPU atomic kinds that warp aggregation can collapse (commutative,
#: associative read-modify-write with a uniform target; CAS/Exch cannot
#: aggregate because each lane's outcome depends on the others').
AGGREGATABLE_KINDS = frozenset({
    PrimitiveKind.ATOMIC_ADD,
    PrimitiveKind.ATOMIC_SUB,
    PrimitiveKind.ATOMIC_MAX,
    PrimitiveKind.ATOMIC_MIN,
    PrimitiveKind.ATOMIC_AND,
    PrimitiveKind.ATOMIC_OR,
    PrimitiveKind.ATOMIC_XOR,
})


@dataclass(frozen=True)
class Op:
    """One primitive invocation inside a measured loop body.

    Attributes:
        kind: Which primitive this is.
        dtype: Data type operated on (None for barriers/fences/syncs).
        target: Memory-access pattern (None for pure sync ops).
        scope: Atomic/fence scope; GPU block-scoped atomics are much cheaper
            than device-scoped ones.
        result_used: Whether a later instruction consumes this op's value.
            Only meaningful for value-producing kinds; the DCE pass deletes
            value-producing, side-effect-free ops with ``result_used=False``.
        label: Optional human-readable tag for diagnostics.
    """

    kind: PrimitiveKind
    dtype: Optional[DataType] = None
    target: Optional[MemoryTarget] = None
    scope: Scope = Scope.DEVICE
    result_used: bool = True
    label: str = ""

    def __hash__(self) -> int:
        # Ops key the hot per-context cost caches, and the generated
        # frozen-dataclass hash re-hashes every nested field (dtype,
        # target) on each lookup.  All fields are immutable, so compute
        # once and pin the value on the instance.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.kind, self.dtype, self.target, self.scope,
                      self.result_used, self.label))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def mutates_memory(self) -> bool:
        return self.kind in _MUTATING

    @property
    def synchronizes(self) -> bool:
        return self.kind in _SYNCHRONIZING

    @property
    def produces_value(self) -> bool:
        return self.kind in _VALUE_PRODUCING

    @property
    def is_eliminable(self) -> bool:
        """Whether the DCE pass may delete this op (given an unused result)."""
        return (self.produces_value and not self.mutates_memory
                and not self.synchronizes and not self.result_used)

    @property
    def is_atomic(self) -> bool:
        return self.kind in ATOMIC_KINDS or self.kind in (
            PrimitiveKind.OMP_ATOMIC_READ, PrimitiveKind.OMP_ATOMIC_WRITE)

    def with_unused_result(self) -> "Op":
        """Copy of this op whose result is not consumed."""
        return replace(self, result_used=False)


def op_atomic(kind: PrimitiveKind, dtype: DataType, target: MemoryTarget,
              scope: Scope = Scope.DEVICE, label: str = "") -> Op:
    """Convenience constructor for atomic ops."""
    return Op(kind=kind, dtype=dtype, target=target, scope=scope, label=label)


def op_barrier(kind: PrimitiveKind = PrimitiveKind.OMP_BARRIER,
               label: str = "") -> Op:
    """Convenience constructor for barrier-style ops."""
    return Op(kind=kind, label=label)


def op_fence(kind: PrimitiveKind, target: Optional[MemoryTarget] = None,
             label: str = "") -> Op:
    """Convenience constructor for fence/flush ops.

    The target, when given, describes the surrounding accesses the fence
    must order — it determines how much traffic the fence has to drain.
    """
    return Op(kind=kind, target=target, label=label)


def op_plain_update(dtype: DataType, target: MemoryTarget,
                    label: str = "") -> Op:
    """A non-atomic read-modify-write used by baseline loop bodies."""
    return Op(kind=PrimitiveKind.PLAIN_UPDATE, dtype=dtype, target=target,
              label=label)
