"""Execution traces for the CUDA interpreter.

When a launch is run with ``trace=True``, the interpreter records one
:class:`TraceEvent` per warp scheduling pass — which block/warp executed
what, and over which modeled cycle interval.  The trace shows *why* a
kernel costs what it costs: where barriers align warps, where atomics
serialize, and where divergence splits a warp's passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One warp scheduling pass.

    Attributes:
        block: Block index.
        warp: Warp index within the block.
        label: What the pass executed ("AtomicAdd", "Syncthreads", ...).
        start_cycles: Warp clock when the pass began.
        end_cycles: Warp clock after the pass.
    """

    block: int
    warp: int
    label: str
    start_cycles: float
    end_cycles: float

    @property
    def duration(self) -> float:
        return self.end_cycles - self.start_cycles


@dataclass
class Trace:
    """An ordered collection of trace events for one launch."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, block: int, warp: int, label: str, start: float,
            end: float) -> None:
        """Record one warp pass."""
        self.events.append(TraceEvent(block, warp, label, start, end))

    def extend(self, other: "Trace") -> None:
        """Append another trace's events in their recorded order.

        Used by the parallel block executor to merge per-chunk traces
        back into the launch trace in block order, so the merged event
        list is byte-identical to a serial launch's.
        """
        self.events.extend(other.events)

    def for_block(self, block: int) -> list[TraceEvent]:
        """Events of one block, in recording order."""
        return [e for e in self.events if e.block == block]

    def total_cycles_by_label(self) -> dict[str, float]:
        """Aggregate warp-pass durations per op label (a cost profile)."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.label] = totals.get(event.label, 0.0) + \
                event.duration
        return totals

    def timeline_rows(self) -> list[tuple[str, str, float, float]]:
        """Normalized ``(track, label, start, end)`` rows for the
        shared export helpers (one track per block/warp pair)."""
        return [(f"block {e.block} / warp {e.warp}", e.label,
                 e.start_cycles, e.end_cycles) for e in self.events]

    def to_chrome_trace(self, pid: int = 0) -> list[dict]:
        """Serialize as Chrome ``trace_events`` records.

        One complete event per warp pass, one tid row per warp, in the
        modeled cycle clock (1 trace-µs = 1 cycle).  Wrap the list with
        :func:`repro.obs.chrome.chrome_payload` to write a standalone
        file, or merge it with other timelines under distinct ``pid``
        values — the unification :mod:`repro.obs.export` performs.
        """
        from repro.obs.chrome import rows_to_chrome
        return rows_to_chrome(self.timeline_rows(), pid=pid,
                              unit="cycles", source="cuda")

    def render(self, block: int = 0, width: int = 64) -> str:
        """Render one block's warps as an ASCII timeline.

        Each warp is a row; time flows left to right; each event paints
        its label's initial over its cycle interval.
        """
        events = self.for_block(block)
        if not events:
            return f"block {block}: <no events>"
        end = max(e.end_cycles for e in events)
        if end <= 0:
            return f"block {block}: <zero-length trace>"
        warps = sorted({e.warp for e in events})
        lines = [f"block {block} timeline (0 .. {end:.0f} cycles)"]
        for warp in warps:
            row = [" "] * width
            for e in events:
                if e.warp != warp:
                    continue
                lo = int(e.start_cycles / end * (width - 1))
                hi = max(lo + 1, int(e.end_cycles / end * (width - 1)) + 1)
                glyph = e.label[0].upper() if e.label else "?"
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"  warp {warp}: |{''.join(row)}|")
        labels = sorted({e.label for e in events})
        lines.append("  key: " + ", ".join(
            f"{label[0].upper()}={label}" for label in labels))
        return "\n".join(lines)
