"""Warp-synchronous interpreter for CUDA kernels.

Kernels are generator functions taking a :class:`KernelThread`.  The
interpreter executes a launch the way the hardware would, at the fidelity
the paper's experiments need:

* **SIMT lockstep** — lanes of a warp advance one request per scheduling
  pass; the warp's clock advances by the most expensive request of the
  pass (instructions issue together; contention lives inside the costs).
* **Warp collectives** — shuffles/votes/reductions block until every live,
  non-barrier lane of the warp has yielded the same collective type, then
  execute across lanes (divergence around a collective is an error, as it
  is undefined behaviour on hardware).
* **Block barriers** — ``__syncthreads()`` aligns all warp clocks of the
  block; a lane finishing the kernel while others wait is an error.
* **Atomics** — executed against real numpy memory in lane order and
  priced by the atomic-unit model from the *observed* issue pattern
  (lanes issuing, distinct addresses, warps of the block seen issuing,
  resident blocks), including warp aggregation for commutative 32-bit
  integer atomics.
* **Device schedule** — blocks round-robin over SMs; each SM runs its
  blocks in occupancy-sized waves; per-block launch overhead is charged
  per block, which is exactly what the persistent-threads Reduction 5
  amortizes away.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, Mapping

import numpy as np

from repro.common.budget import StepBudget
from repro.common.errors import SimulationError
from repro.compiler.ops import Op, PrimitiveKind, Scope
from repro.gpu.device import GpuDevice, GpuRunContext
from repro.gpu.spec import WARP_SIZE, LaunchConfig
from repro.mem.layout import SharedScalar
from repro.cuda import requests as rq
from repro.cuda.race import GpuAccess, GpuRaceDetector
from repro.cuda.trace import Trace
from repro.obs import attach_timeline
from repro.obs import span as obs_span
from repro.obs.metrics import counter as _counter

#: Blocks executed by the scalar reference loop (observability; the fast
#: runner's counterpart is ``interp.cuda.blocks_fast``).
_C_BLOCKS_REFERENCE = _counter("interp.cuda.blocks_reference")

#: A kernel: generator function yielding requests.
Kernel = Callable[["KernelThread"], Generator]

_ATOMIC_KIND_OF = {
    rq.AtomicAdd: PrimitiveKind.ATOMIC_ADD,
    rq.AtomicSub: PrimitiveKind.ATOMIC_SUB,
    rq.AtomicMax: PrimitiveKind.ATOMIC_MAX,
    rq.AtomicMin: PrimitiveKind.ATOMIC_MIN,
    rq.AtomicAnd: PrimitiveKind.ATOMIC_AND,
    rq.AtomicOr: PrimitiveKind.ATOMIC_OR,
    rq.AtomicXor: PrimitiveKind.ATOMIC_XOR,
    rq.AtomicInc: PrimitiveKind.ATOMIC_INC,
    rq.AtomicDec: PrimitiveKind.ATOMIC_DEC,
    rq.AtomicCas: PrimitiveKind.ATOMIC_CAS,
    rq.AtomicExch: PrimitiveKind.ATOMIC_EXCH,
}

_BARRIER_KIND_OF = {
    rq.Syncthreads: PrimitiveKind.SYNCTHREADS,
    rq.SyncthreadsCount: PrimitiveKind.SYNCTHREADS_COUNT,
    rq.SyncthreadsAnd: PrimitiveKind.SYNCTHREADS_AND,
    rq.SyncthreadsOr: PrimitiveKind.SYNCTHREADS_OR,
}

_COLLECTIVE_KIND_OF = {
    rq.ShflSync: PrimitiveKind.SHFL_SYNC,
    rq.ShflUpSync: PrimitiveKind.SHFL_UP_SYNC,
    rq.ShflDownSync: PrimitiveKind.SHFL_DOWN_SYNC,
    rq.ShflXorSync: PrimitiveKind.SHFL_XOR_SYNC,
    rq.VoteAll: PrimitiveKind.VOTE_ALL,
    rq.VoteAny: PrimitiveKind.VOTE_ANY,
    rq.Ballot: PrimitiveKind.VOTE_BALLOT,
    rq.MatchAnySync: PrimitiveKind.MATCH_ANY_SYNC,
    rq.MatchAllSync: PrimitiveKind.MATCH_ALL_SYNC,
    rq.ReduceMaxSync: PrimitiveKind.REDUCE_MAX_SYNC,
}

_FENCE_KIND_OF = {
    Scope.DEVICE: PrimitiveKind.THREADFENCE,
    Scope.BLOCK: PrimitiveKind.THREADFENCE_BLOCK,
    Scope.SYSTEM: PrimitiveKind.THREADFENCE_SYSTEM,
}


class KernelThread:
    """Per-thread handle passed to a kernel body.

    Mirrors the CUDA built-ins (``threadIdx.x`` etc., flattened to 1-D)
    plus sugar constructors for every request type.
    """

    __slots__ = ("threadIdx", "blockIdx", "blockDim", "gridDim")

    def __init__(self, thread_idx: int, block_idx: int, block_dim: int,
                 grid_dim: int) -> None:
        self.threadIdx = thread_idx
        self.blockIdx = block_idx
        self.blockDim = block_dim
        self.gridDim = grid_dim

    @property
    def global_id(self) -> int:
        """``threadIdx.x + blockIdx.x * blockDim.x``."""
        return self.threadIdx + self.blockIdx * self.blockDim

    @property
    def lane(self) -> int:
        """``threadIdx.x % warpSize``."""
        return self.threadIdx % WARP_SIZE

    @property
    def warp(self) -> int:
        """Warp index within the block."""
        return self.threadIdx // WARP_SIZE

    @property
    def total_threads(self) -> int:
        """``blockDim.x * gridDim.x`` (the persistent-threads stride)."""
        return self.blockDim * self.gridDim

    # ----------------------------- sugar ------------------------------ #

    def syncthreads(self) -> rq.Syncthreads:
        """``__syncthreads()``."""
        return rq.Syncthreads()

    def syncthreads_count(self, pred: bool) -> rq.SyncthreadsCount:
        """``__syncthreads_count(pred)``."""
        return rq.SyncthreadsCount(pred)

    def syncthreads_and(self, pred: bool) -> rq.SyncthreadsAnd:
        """``__syncthreads_and(pred)``."""
        return rq.SyncthreadsAnd(pred)

    def syncthreads_or(self, pred: bool) -> rq.SyncthreadsOr:
        """``__syncthreads_or(pred)``."""
        return rq.SyncthreadsOr(pred)

    def syncwarp(self) -> rq.Syncwarp:
        """``__syncwarp()``."""
        return rq.Syncwarp()

    def threadfence(self, scope: Scope = Scope.DEVICE) -> rq.Threadfence:
        """``__threadfence()`` / ``_block`` / ``_system`` by scope."""
        return rq.Threadfence(scope)

    def alu(self, n: int = 1) -> rq.Alu:
        """``n`` plain arithmetic instructions."""
        return rq.Alu(n)

    def global_read(self, var: str, idx: int) -> rq.GlobalRead:
        """Load ``var[idx]`` from global memory."""
        return rq.GlobalRead(var, idx)

    def global_write(self, var: str, idx: int, value) -> rq.GlobalWrite:
        """Store ``value`` to ``var[idx]`` in global memory."""
        return rq.GlobalWrite(var, idx, value)

    def shared_read(self, var: str, idx: int = 0) -> rq.SharedRead:
        """Load ``var[idx]`` from block-shared memory."""
        return rq.SharedRead(var, idx)

    def shared_write(self, var: str, idx: int, value) -> rq.SharedWrite:
        """Store ``value`` to ``var[idx]`` in shared memory."""
        return rq.SharedWrite(var, idx, value)

    def atomic_add(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicAdd:
        """``atomicAdd(&var[idx], value)``."""
        return rq.AtomicAdd(var, idx, scope, value)

    def atomic_sub(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicSub:
        """``atomicSub(&var[idx], value)``."""
        return rq.AtomicSub(var, idx, scope, value)

    def atomic_and(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicAnd:
        """``atomicAnd(&var[idx], value)``."""
        return rq.AtomicAnd(var, idx, scope, value)

    def atomic_or(self, var: str, idx: int, value,
                  scope: Scope = Scope.DEVICE) -> rq.AtomicOr:
        """``atomicOr(&var[idx], value)``."""
        return rq.AtomicOr(var, idx, scope, value)

    def atomic_xor(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicXor:
        """``atomicXor(&var[idx], value)``."""
        return rq.AtomicXor(var, idx, scope, value)

    def atomic_max(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicMax:
        """``atomicMax(&var[idx], value)``."""
        return rq.AtomicMax(var, idx, scope, value)

    def atomic_min(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicMin:
        """``atomicMin(&var[idx], value)``."""
        return rq.AtomicMin(var, idx, scope, value)

    def atomic_inc(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicInc:
        """``atomicInc(&var[idx], value)`` (wraps to 0 past value)."""
        return rq.AtomicInc(var, idx, scope, value)

    def atomic_dec(self, var: str, idx: int, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicDec:
        """``atomicDec(&var[idx], value)`` (wraps to value at 0)."""
        return rq.AtomicDec(var, idx, scope, value)

    def atomic_cas(self, var: str, idx: int, compare, value,
                   scope: Scope = Scope.DEVICE) -> rq.AtomicCas:
        """``atomicCAS(&var[idx], compare, value)``."""
        return rq.AtomicCas(var, idx, scope, compare, value)

    def atomic_exch(self, var: str, idx: int, value,
                    scope: Scope = Scope.DEVICE) -> rq.AtomicExch:
        """``atomicExch(&var[idx], value)``."""
        return rq.AtomicExch(var, idx, scope, value)

    def shfl_sync(self, value, src_lane: int) -> rq.ShflSync:
        """``__shfl_sync``: broadcast ``src_lane``'s value."""
        return rq.ShflSync(value, src_lane)

    def shfl_up_sync(self, value, delta: int) -> rq.ShflUpSync:
        """``__shfl_up_sync``: receive from lane - delta."""
        return rq.ShflUpSync(value, delta)

    def shfl_down_sync(self, value, delta: int) -> rq.ShflDownSync:
        """``__shfl_down_sync``: receive from lane + delta."""
        return rq.ShflDownSync(value, delta)

    def shfl_xor_sync(self, value, lane_mask: int) -> rq.ShflXorSync:
        """``__shfl_xor_sync``: butterfly exchange."""
        return rq.ShflXorSync(value, lane_mask)

    def all_sync(self, pred: bool) -> rq.VoteAll:
        """``__all_sync``: AND of all lanes' predicates."""
        return rq.VoteAll(pred)

    def any_sync(self, pred: bool) -> rq.VoteAny:
        """``__any_sync``: OR of all lanes' predicates."""
        return rq.VoteAny(pred)

    def ballot_sync(self, pred: bool) -> rq.Ballot:
        """``__ballot_sync``: mask of true predicates."""
        return rq.Ballot(pred)

    def match_any_sync(self, value) -> rq.MatchAnySync:
        """``__match_any_sync``: mask of equal-valued lanes."""
        return rq.MatchAnySync(value)

    def match_all_sync(self, value) -> rq.MatchAllSync:
        """``__match_all_sync``: full mask iff all equal."""
        return rq.MatchAllSync(value)

    def activemask(self) -> rq.Activemask:
        """``__activemask()``: mask of live lanes (no sync)."""
        return rq.Activemask()

    def reduce_max_sync(self, value) -> rq.ReduceMaxSync:
        """``__reduce_max_sync``: warp maximum (CC >= 8.0)."""
        return rq.ReduceMaxSync(value)


class _LaneState(enum.Enum):
    RUNNING = "running"
    BARRIER = "barrier"
    COLLECTIVE = "collective"
    DONE = "done"


@dataclass(slots=True)
class _Lane:
    gen: Generator
    lane_id: int
    state: _LaneState = _LaneState.RUNNING
    pending: object = None
    collective: rq.WarpCollective | None = None
    barrier_request: rq.Syncthreads | None = None


@dataclass
class _BlockEnv:
    """Per-block execution environment threaded through the scheduler."""

    block_idx: int
    epoch: int = 0
    detector: "GpuRaceDetector | None" = None


@dataclass
class LaunchStats:
    """Operation counts observed during one launch."""

    global_atomics: int = 0
    block_atomics: int = 0
    syncthreads: int = 0
    syncwarps: int = 0
    collectives: int = 0
    fences: int = 0
    global_accesses: int = 0
    shared_accesses: int = 0
    divergent_passes: int = 0


@dataclass
class LaunchResult:
    """Outcome of one kernel launch.

    Attributes:
        memory: Global memory after the launch (mutated in place).
        elapsed_cycles: Modeled kernel runtime in clock cycles.
        elapsed_ns: The same in nanoseconds at the device clock.
        block_cycles: Per-block modeled runtimes (without launch overhead).
        stats: Operation counts.
    """

    memory: dict[str, np.ndarray]
    elapsed_cycles: float
    elapsed_ns: float
    block_cycles: list[float] = field(default_factory=list)
    stats: LaunchStats = field(default_factory=LaunchStats)
    trace: Trace | None = None
    #: The detector that watched the launch (None when race detection
    #: was off).  Race reports are materialized lazily through
    #: :attr:`races` instead of being copied eagerly at construction.
    detector: GpuRaceDetector | None = field(default=None, repr=False)

    @property
    def races(self) -> list:
        """Race reports collected during the launch (lazy: built from
        the detector on access, empty when detection was off)."""
        if self.detector is None:
            return []
        return list(self.detector.races)

    @property
    def raced(self) -> bool:
        """True when the launch produced at least one race report."""
        return self.detector is not None and bool(self.detector.races)


class Cuda:
    """A CUDA runtime bound to a simulated GPU device.

    Args:
        device: The GPU to launch on.
        max_steps: Interpreter step budget per launch.
        fast: Force the batched fast dispatch on/off; ``None`` follows
            the process default (fast unless ``SYNCPERF_ENGINE=reference``
            or inside :func:`repro.core.engine.reference_engine`), the
            same switch that governs the measurement engine.
        lint: Opt-in static sanitizer check before each launch.
            ``True`` or ``"error"`` raises
            :class:`~repro.common.errors.SanitizerError` when
            :mod:`repro.sanitize` reports an ERROR or WARNING for the
            kernel; ``"warn"`` emits a Python warning instead.  The
            check is purely static (source-level) and memoized per
            kernel code object, so repeated launches pay nothing.
    """

    def __init__(self, device: GpuDevice, max_steps: int = 50_000_000,
                 detect_races: bool = False,
                 collect_races: bool = False,
                 fast: bool | None = None,
                 lint: bool | str = False) -> None:
        from repro.core.engine import fast_path_default
        self.device = device
        self.max_steps = max_steps
        self.detect_races = detect_races or collect_races
        self.collect_races = collect_races
        self.fast = fast_path_default() if fast is None else fast
        self.lint = lint

    def launch(self, kernel: Kernel, launch: LaunchConfig,
               globals_: Mapping[str, np.ndarray] | None = None,
               shared_decls: Mapping[str, tuple[int, np.dtype]] | None = None,
               trace: bool = False, block_jobs: int = 1) -> LaunchResult:
        """Run ``kernel`` over the whole grid to completion.

        Args:
            kernel: Generator function over a :class:`KernelThread`.
            launch: Grid/block dimensions.
            globals_: Global-memory arrays by name (mutated in place).
            shared_decls: ``__shared__`` declarations per block, as
                ``name -> (n_elements, numpy dtype)``.
            trace: Record a per-warp-pass execution timeline in
                ``result.trace``.
            block_jobs: Fan independent blocks out over this many worker
                processes.  Safe only when blocks touch disjoint global
                locations; the interpreter records every block's global
                footprint, verifies pairwise disjointness with the race
                machinery, and transparently re-executes serially when
                the verification fails — the ``LaunchResult`` is
                byte-identical to a serial launch either way.

        Raises:
            SimulationError: on deadlock, divergent collectives, barrier
                misuse, or step-budget exhaustion.
            SanitizerError: when the runtime was built with
                ``lint=True``/``"error"`` and the static sanitizer
                reports a defect in ``kernel``.
        """
        if self.lint:
            from repro.sanitize import lint_kernel
            lint_kernel(kernel, "cuda", self.lint)
        memory: dict[str, np.ndarray] = dict(globals_ or {})
        shared = dict(shared_decls or {})
        ctx = self.device.context(launch)
        stats = LaunchStats()
        budget = StepBudget(self.max_steps, hint="runaway kernel?")
        trace_obj = Trace() if trace else None
        detector = GpuRaceDetector(raise_on_race=not self.collect_races) \
            if self.detect_races else None

        with obs_span("cuda.launch", grid_blocks=launch.grid_blocks,
                      block_threads=launch.block_threads,
                      path="fast" if self.fast else "reference"):
            block_cycles: list[float] | None = None
            ticket = None
            # The dispatcher memoizes whole launches per (kernel,
            # machine, config, memory-contents) signature and compiles
            # per-block plans for steady kernels; it only engages on the
            # fast tier (byte-identical by contract) and never when a
            # trace or race detector needs to observe every access.
            if self.fast and detector is None and trace_obj is None:
                from repro.compiler.dispatcher import DISPATCHER
                ticket = DISPATCHER.begin_cuda(self, kernel, launch,
                                               memory, shared)
            if ticket is not None:
                block_cycles = ticket.replay(stats, budget)
                if block_cycles is None:
                    block_cycles = ticket.run_lifted(ctx, stats, budget,
                                                     block_jobs)
            # Block fan-out rides on the fast runner (the reference path
            # is the authoritative *serial* semantics) and is
            # incompatible with a launch-wide race detector, whose
            # history must observe every block's accesses in one
            # process.
            if block_cycles is None and self.fast and block_jobs > 1 \
                    and launch.grid_blocks > 1 and detector is None:
                from repro.cuda.parallel import try_parallel_blocks
                block_cycles = try_parallel_blocks(
                    self, kernel, launch, ctx, memory, shared, stats,
                    budget, trace_obj, block_jobs)

            if block_cycles is None:
                block_cycles = [
                    self._run_block(kernel, launch, ctx, block_idx,
                                    memory, dict(shared), stats, budget,
                                    trace_obj, detector)
                    for block_idx in range(launch.grid_blocks)]
            if ticket is not None:
                ticket.record(block_cycles, stats, budget)

            elapsed = self._schedule(launch, ctx, block_cycles)
        if trace_obj is not None:
            attach_timeline("cuda", trace_obj, "cycles")
        return LaunchResult(
            memory=memory,
            elapsed_cycles=elapsed,
            elapsed_ns=elapsed / self.device.clock_ghz,
            block_cycles=block_cycles,
            stats=stats,
            trace=trace_obj,
            detector=detector,
        )

    # ------------------------------------------------------------------ #

    def _schedule(self, launch: LaunchConfig, ctx: GpuRunContext,
                  block_cycles: list[float]) -> float:
        """Fold per-block runtimes into a kernel runtime.

        Blocks go round-robin over SMs; each SM runs its blocks in
        occupancy-sized waves (wave time = slowest resident block) and
        pays launch overhead per block.
        """
        params = self.device.params
        sm_count = self.device.spec.sm_count
        resident = ctx.occ.blocks_per_sm_resident
        per_sm: dict[int, list[float]] = {}
        for block_idx, cycles in enumerate(block_cycles):
            per_sm.setdefault(block_idx % sm_count, []).append(cycles)
        busiest = 0.0
        for blocks in per_sm.values():
            sm_time = params.block_launch_cycles * len(blocks)
            for start in range(0, len(blocks), resident):
                sm_time += max(blocks[start:start + resident])
            busiest = max(busiest, sm_time)
        return params.kernel_launch_cycles + busiest

    def _run_block(self, kernel: Kernel, launch: LaunchConfig,
                   ctx: GpuRunContext, block_idx: int,
                   memory: dict[str, np.ndarray],
                   shared_decls: dict[str, tuple[int, np.dtype]],
                   stats: LaunchStats, budget: StepBudget,
                   trace: Trace | None = None,
                   detector: GpuRaceDetector | None = None,
                   footprint=None) -> float:
        """Execute one block to completion and return its modeled cycles.

        Dispatches to the batched fast runner
        (:func:`repro.cuda.fastpath.run_block_fast`) unless this runtime
        was put on the reference path; the scalar loop below is the
        authoritative semantics either way.
        """
        if self.fast:
            from repro.cuda.fastpath import run_block_fast
            return run_block_fast(self, kernel, launch, ctx, block_idx,
                                  memory, shared_decls, stats, budget,
                                  trace, detector, footprint)
        return self._run_block_reference(kernel, launch, ctx, block_idx,
                                         memory, shared_decls, stats,
                                         budget, trace, detector,
                                         footprint)

    def _run_block_reference(self, kernel: Kernel, launch: LaunchConfig,
                             ctx: GpuRunContext, block_idx: int,
                             memory: dict[str, np.ndarray],
                             shared_decls: dict[str, tuple[int, np.dtype]],
                             stats: LaunchStats, budget: StepBudget,
                             trace: Trace | None = None,
                             detector: GpuRaceDetector | None = None,
                             footprint=None) -> float:
        del footprint  # footprints are recorded by the fast runner only
        _C_BLOCKS_REFERENCE.add(1)
        shared = {name: np.zeros(size, dtype=dt)
                  for name, (size, dt) in shared_decls.items()}
        n = launch.block_threads
        warps: list[list[_Lane]] = []
        for wstart in range(0, n, WARP_SIZE):
            lanes = []
            for t in range(wstart, min(wstart + WARP_SIZE, n)):
                kt = KernelThread(t, block_idx, n, launch.grid_blocks)
                lanes.append(_Lane(gen=kernel(kt), lane_id=t - wstart))
            warps.append(lanes)
        warp_clocks = [0.0] * len(warps)
        env = _BlockEnv(block_idx=block_idx, detector=detector)
        # Warps of the block seen issuing each (atomic kind, var): drives
        # the dynamic contention estimate.
        issuing_warps: dict[tuple[PrimitiveKind, str], set[int]] = {}
        resident_blocks = min(
            launch.grid_blocks,
            ctx.occ.active_sms * ctx.occ.blocks_per_sm_resident)

        def all_done() -> bool:
            return all(lane.state is _LaneState.DONE
                       for lanes in warps for lane in lanes)

        while not all_done():
            progressed = False
            for warp_id, lanes in enumerate(warps):
                stepped, cost, label = self._step_warp(
                    warp_id, lanes, ctx, memory, shared, issuing_warps,
                    resident_blocks, stats, budget, env)
                if trace is not None and cost > 0:
                    trace.add(block_idx, warp_id, label,
                              warp_clocks[warp_id],
                              warp_clocks[warp_id] + cost)
                warp_clocks[warp_id] += cost
                progressed |= stepped
            progressed |= self._maybe_release_barrier(
                warps, warp_clocks, ctx, stats, trace, block_idx, env)
            if not progressed:
                self._raise_deadlock(warps)
        return max(warp_clocks) if warp_clocks else 0.0

    # ------------------------------------------------------------------ #

    def _step_warp(self, warp_id: int, lanes: list[_Lane],
                   ctx: GpuRunContext, memory: dict[str, np.ndarray],
                   shared: dict[str, np.ndarray],
                   issuing_warps: dict[tuple[PrimitiveKind, str], set[int]],
                   resident_blocks: int, stats: LaunchStats,
                   budget: StepBudget,
                   env: "_BlockEnv | None" = None
                   ) -> tuple[bool, float, str]:
        """Advance every runnable lane of one warp by one request.

        Returns:
            (progressed, cycle cost of the pass, trace label).
        """
        stepped = False
        gathered: list[tuple[_Lane, rq.Request]] = []
        for lane in lanes:
            if lane.state is not _LaneState.RUNNING:
                continue
            stepped = True
            budget.charge()
            try:
                request = lane.gen.send(lane.pending)
            except StopIteration:
                lane.state = _LaneState.DONE
                continue
            lane.pending = None
            gathered.append((lane, request))

        if not gathered:
            collective = self._maybe_run_collective(warp_id, lanes,
                                                    ctx, stats)
            if collective is not None:
                return True, collective[0], collective[1]
            return stepped, 0.0, ""

        cost, labels = self._process_gathered(
            warp_id, lanes, gathered, ctx, memory, shared, issuing_warps,
            resident_blocks, stats, env)

        collective = self._maybe_run_collective(warp_id, lanes, ctx, stats)
        if collective is not None:
            cost += collective[0]
            labels.append(collective[1])
        return True, cost, "+".join(labels)

    def _process_gathered(self, warp_id: int, lanes: list[_Lane],
                          gathered: list[tuple[_Lane, rq.Request]],
                          ctx: GpuRunContext,
                          memory: dict[str, np.ndarray],
                          shared: dict[str, np.ndarray],
                          issuing_warps: dict[tuple[PrimitiveKind, str],
                                              set[int]],
                          resident_blocks: int, stats: LaunchStats,
                          env: "_BlockEnv | None" = None
                          ) -> tuple[float, list[str]]:
        """Execute one pass's gathered (lane, request) pairs.

        This is the authoritative mixed-pass semantics, shared by the
        scalar reference loop and the fast runner's fallback for
        divergent passes.

        Returns:
            (cycle cost of the pass, sorted trace labels).
        """
        # SIMT: lanes that took the same path issue one instruction group
        # together; distinct groups within a pass serialize, plus a fixed
        # re-convergence overhead per extra group (branch divergence).
        group_costs: dict[object, float] = {}
        atomic_groups: dict[tuple[type, str, Scope],
                            list[tuple[_Lane, rq.AtomicRmw]]] = {}
        # 32-byte sectors touched by this pass's global accesses: a warp's
        # coalesced loads fetch one sector; scattered ones fetch many.
        global_sectors: dict[type, set[tuple[str, int]]] = {}
        for lane, request in gathered:
            if isinstance(request, rq.Syncthreads):
                lane.state = _LaneState.BARRIER
                lane.barrier_request = request
            elif isinstance(request, rq.Activemask):
                mask = 0
                for other in lanes:
                    if other.state is not _LaneState.DONE:
                        mask |= 1 << other.lane_id
                lane.pending = mask
                group_costs[rq.Activemask] = max(
                    group_costs.get(rq.Activemask, 0.0),
                    self.device.params.alu_cycles)
            elif isinstance(request, rq.WarpCollective):
                lane.state = _LaneState.COLLECTIVE
                lane.collective = request
            elif isinstance(request, rq.AtomicRmw):
                key = (type(request), request.var, request.scope)
                atomic_groups.setdefault(key, []).append((lane, request))
            else:
                if isinstance(request, (rq.GlobalRead, rq.GlobalWrite)):
                    arr = memory.get(request.var)
                    if arr is not None:
                        sector = request.idx * arr.itemsize // 32
                        global_sectors.setdefault(type(request), set()) \
                            .add((request.var, sector))
                simple_cost = self._execute_simple(
                    lane, request, ctx, memory, shared, stats,
                    warp_id=warp_id, env=env)
                key = type(request)
                group_costs[key] = max(group_costs.get(key, 0.0),
                                       simple_cost)
        # Coalescing: each extra sector beyond the first is one more
        # memory transaction for the warp.
        for req_type, sectors in global_sectors.items():
            if req_type in group_costs and len(sectors) > 1:
                group_costs[req_type] += \
                    self.device.params.uncoalesced_penalty_cycles \
                    * (len(sectors) - 1)
        for (req_type, var, scope), group in atomic_groups.items():
            group_costs[(req_type, var, scope)] = self._execute_atomics(
                warp_id, req_type, var, scope, group, ctx, memory, shared,
                issuing_warps, resident_blocks, stats, env)

        cost = sum(group_costs.values())
        labels = sorted(
            key.__name__ if isinstance(key, type) else key[0].__name__
            for key in group_costs)
        if len(group_costs) > 1:
            stats.divergent_passes += 1
            cost += self.device.params.divergence_cycles \
                * (len(group_costs) - 1)
        return cost, labels

    def _execute_simple(self, lane: _Lane, request: rq.Request,
                        ctx: GpuRunContext, memory: dict[str, np.ndarray],
                        shared: dict[str, np.ndarray],
                        stats: LaunchStats, warp_id: int = 0,
                        env: "_BlockEnv | None" = None) -> float:
        params = self.device.params

        def record(is_write: bool, space: str) -> None:
            if env is None or env.detector is None:
                return
            access = GpuAccess(
                block=env.block_idx,
                thread=warp_id * WARP_SIZE + lane.lane_id,
                is_write=is_write, is_atomic=False, epoch=env.epoch)
            if space == "global":
                env.detector.record_global(request.var, request.idx,
                                           access)
            else:
                env.detector.record_shared(env.block_idx, request.var,
                                           request.idx, access)
        if isinstance(request, rq.Alu):
            return params.alu_cycles * request.n
        if isinstance(request, rq.Syncwarp):
            stats.syncwarps += 1
            return self.device.op_cost(
                Op(kind=PrimitiveKind.SYNCWARP), ctx)
        if isinstance(request, rq.Threadfence):
            stats.fences += 1
            return self.device.op_cost(
                Op(kind=_FENCE_KIND_OF[request.scope]), ctx)
        if isinstance(request, rq.GlobalRead):
            stats.global_accesses += 1
            lane.pending = self._load(memory, request, "global")
            record(is_write=False, space="global")
            return params.global_load_cycles
        if isinstance(request, rq.GlobalWrite):
            stats.global_accesses += 1
            self._store(memory, request, request.value, "global")
            record(is_write=True, space="global")
            return params.global_load_cycles
        if isinstance(request, rq.SharedRead):
            stats.shared_accesses += 1
            lane.pending = self._load(shared, request, "shared")
            record(is_write=False, space="shared")
            return params.alu_cycles
        if isinstance(request, rq.SharedWrite):
            stats.shared_accesses += 1
            record(is_write=True, space="shared")
            self._store(shared, request, request.value, "shared")
            return params.alu_cycles
        raise SimulationError(f"kernel yielded a non-request: {request!r}")

    def _execute_atomics(self, warp_id: int, req_type: type, var: str,
                         scope: Scope,
                         group: list[tuple[_Lane, rq.AtomicRmw]],
                         ctx: GpuRunContext, memory: dict[str, np.ndarray],
                         shared: dict[str, np.ndarray],
                         issuing_warps: dict[tuple[PrimitiveKind, str],
                                             set[int]],
                         resident_blocks: int, stats: LaunchStats,
                         env: "_BlockEnv | None" = None) -> float:
        """Execute one warp-pass's atomics to one variable, in lane order,
        and price them from the observed issue pattern."""
        space = shared if var in shared else memory
        effective_scope = Scope.BLOCK if var in shared else scope
        kind = _ATOMIC_KIND_OF[req_type]
        if effective_scope is Scope.BLOCK:
            stats.block_atomics += len(group)
        else:
            stats.global_atomics += len(group)

        arr = space.get(var)
        if arr is None:
            raise SimulationError(f"atomic on undeclared variable {var!r}")
        flat = arr.reshape(-1)
        for _lane, request in group:
            if not 0 <= request.idx < flat.size:
                raise SimulationError(
                    f"atomic on {var}[{request.idx}] out of bounds "
                    f"(size {flat.size})")

        for lane, request in group:
            if env is not None and env.detector is not None:
                access = GpuAccess(
                    block=env.block_idx,
                    thread=warp_id * WARP_SIZE + lane.lane_id,
                    is_write=True, is_atomic=True, epoch=env.epoch)
                if space is shared:
                    env.detector.record_shared(env.block_idx, var,
                                               request.idx, access)
                else:
                    env.detector.record_global(var, request.idx, access)
            old = flat[request.idx].item()
            lane.pending = old
            if isinstance(request, rq.AtomicAdd):
                flat[request.idx] = old + request.value
            elif isinstance(request, rq.AtomicSub):
                flat[request.idx] = old - request.value
            elif isinstance(request, rq.AtomicMax):
                flat[request.idx] = max(old, request.value)
            elif isinstance(request, rq.AtomicMin):
                flat[request.idx] = min(old, request.value)
            elif isinstance(request, rq.AtomicAnd):
                flat[request.idx] = old & request.value
            elif isinstance(request, rq.AtomicOr):
                flat[request.idx] = old | request.value
            elif isinstance(request, rq.AtomicXor):
                flat[request.idx] = old ^ request.value
            elif isinstance(request, rq.AtomicInc):
                flat[request.idx] = 0 if old >= request.value else old + 1
            elif isinstance(request, rq.AtomicDec):
                flat[request.idx] = request.value \
                    if (old == 0 or old > request.value) else old - 1
            elif isinstance(request, rq.AtomicCas):
                if old == request.compare:
                    flat[request.idx] = request.value
            elif isinstance(request, rq.AtomicExch):
                flat[request.idx] = request.value
            else:  # pragma: no cover - the group map is exhaustive
                raise SimulationError(f"unknown atomic {request!r}")

        from repro.common.datatypes import DTYPES, INT
        dtype = INT
        for dt in DTYPES:
            if dt.np_dtype == arr.dtype:
                dtype = dt
                break
        seen = issuing_warps.setdefault((kind, var), set())
        seen.add(warp_id)
        op = Op(kind=kind, dtype=dtype, target=SharedScalar(dtype),
                scope=effective_scope)
        n_addresses = len({request.idx for _l, request in group})
        return self.device.atomic_issue_cost(
            op, ctx, n_addresses=n_addresses, n_lanes=len(group),
            issuing_warps=len(seen), resident_blocks=resident_blocks)

    # ------------------------------------------------------------------ #

    def _maybe_run_collective(self, warp_id: int, lanes: list[_Lane],
                              ctx: GpuRunContext, stats: LaunchStats
                              ) -> tuple[float, str] | None:
        """Run a warp collective once every live, non-barrier lane arrived.

        Returns:
            (cost, label) when a collective executed; None otherwise.
        """
        del warp_id
        participants = []
        still_running = False
        blocked_elsewhere = False
        for lane in lanes:
            state = lane.state
            if state is _LaneState.COLLECTIVE:
                participants.append(lane)
            elif state is _LaneState.RUNNING:
                still_running = True
            else:  # BARRIER or DONE
                blocked_elsewhere = True
        if not participants:
            return None
        if still_running:
            return None  # stragglers will arrive in a later pass
        if blocked_elsewhere:
            raise SimulationError(
                "divergent warp collective: some lanes yielded a "
                "collective while others hit a barrier or returned "
                "(undefined behaviour on hardware)")
        types = {type(lane.collective) for lane in participants}
        if len(types) != 1:
            raise SimulationError(
                f"lanes yielded different collectives in one step: "
                f"{sorted(t.__name__ for t in types)}")
        stats.collectives += len(participants)
        self._apply_collective(participants)
        first = participants[0].collective
        assert first is not None
        from repro.common.datatypes import DOUBLE, INT
        dtype = DOUBLE if isinstance(getattr(first, "value", 0), float) \
            else INT
        op = Op(kind=_COLLECTIVE_KIND_OF[type(first)], dtype=dtype)
        cost = self.device.op_cost(op, ctx)
        label = type(first).__name__
        for lane in participants:
            lane.state = _LaneState.RUNNING
            lane.collective = None
        return cost, label

    @staticmethod
    def _apply_collective(participants: list[_Lane]) -> None:
        """Compute each participating lane's result value."""
        first = participants[0].collective
        by_lane = {lane.lane_id: lane for lane in participants}
        max_lane = max(by_lane)

        def value_of(i: int):
            lane = by_lane.get(i)
            if lane is None or lane.collective is None:
                return None
            return getattr(lane.collective, "value", None)

        if isinstance(first, rq.ShflSync):
            for lane in participants:
                src = lane.collective.src_lane  # type: ignore[union-attr]
                lane.pending = value_of(src % (max_lane + 1))
        elif isinstance(first, rq.ShflUpSync):
            for lane in participants:
                delta = lane.collective.delta  # type: ignore[union-attr]
                src = lane.lane_id - delta
                lane.pending = value_of(src) if src >= 0 \
                    else lane.collective.value  # type: ignore[union-attr]
        elif isinstance(first, rq.ShflDownSync):
            for lane in participants:
                delta = lane.collective.delta  # type: ignore[union-attr]
                src = lane.lane_id + delta
                lane.pending = value_of(src) if src <= max_lane \
                    else lane.collective.value  # type: ignore[union-attr]
        elif isinstance(first, rq.ShflXorSync):
            for lane in participants:
                mask = lane.collective.lane_mask  # type: ignore[union-attr]
                src = lane.lane_id ^ mask
                lane.pending = value_of(src) if src in by_lane \
                    else lane.collective.value  # type: ignore[union-attr]
        elif isinstance(first, rq.VoteAll):
            result = all(lane.collective.pred  # type: ignore[union-attr]
                         for lane in participants)
            for lane in participants:
                lane.pending = result
        elif isinstance(first, rq.VoteAny):
            result = any(lane.collective.pred  # type: ignore[union-attr]
                         for lane in participants)
            for lane in participants:
                lane.pending = result
        elif isinstance(first, rq.Ballot):
            mask = 0
            for lane in participants:
                if lane.collective.pred:  # type: ignore[union-attr]
                    mask |= 1 << lane.lane_id
            for lane in participants:
                lane.pending = mask
        elif isinstance(first, rq.MatchAnySync):
            values = {lane.lane_id:
                      lane.collective.value  # type: ignore[union-attr]
                      for lane in participants}
            for lane in participants:
                mine = values[lane.lane_id]
                mask = 0
                for other_id, value in values.items():
                    if value == mine:
                        mask |= 1 << other_id
                lane.pending = mask
        elif isinstance(first, rq.MatchAllSync):
            values = [lane.collective.value  # type: ignore[union-attr]
                      for lane in participants]
            if len(set(values)) == 1:
                mask = 0
                for lane in participants:
                    mask |= 1 << lane.lane_id
            else:
                mask = 0
            for lane in participants:
                lane.pending = mask
        elif isinstance(first, rq.ReduceMaxSync):
            result = max(lane.collective.value  # type: ignore[union-attr]
                         for lane in participants)
            for lane in participants:
                lane.pending = result
        else:  # pragma: no cover - the kind map is exhaustive
            raise SimulationError(f"unknown collective {first!r}")

    def _maybe_release_barrier(self, warps: list[list[_Lane]],
                               warp_clocks: list[float], ctx: GpuRunContext,
                               stats: LaunchStats,
                               trace: Trace | None = None,
                               block_idx: int = 0,
                               env: "_BlockEnv | None" = None) -> bool:
        waiting = []
        n_live = 0
        n_total = 0
        for lanes in warps:
            for lane in lanes:
                n_total += 1
                state = lane.state
                if state is _LaneState.BARRIER:
                    waiting.append(lane)
                    n_live += 1
                elif state is not _LaneState.DONE:
                    n_live += 1
        if not waiting:
            return False
        if len(waiting) < n_live:
            return False
        if n_live < n_total:
            raise SimulationError(
                "__syncthreads() reached while some threads of the block "
                "already returned; every thread must hit the barrier")
        variants = {type(lane.barrier_request) for lane in waiting}
        if len(variants) != 1:
            raise SimulationError(
                "threads reached different __syncthreads*() variants: "
                f"{sorted(v.__name__ for v in variants)}")
        variant = variants.pop()
        stats.syncthreads += 1
        cost = self.device.op_cost(Op(kind=_BARRIER_KIND_OF[variant]), ctx)
        sync_time = max(warp_clocks) + cost
        for w in range(len(warp_clocks)):
            if trace is not None:
                trace.add(block_idx, w, variant.__name__,
                          warp_clocks[w], sync_time)
            warp_clocks[w] = sync_time
        if env is not None:
            env.epoch += 1
        result = self._barrier_value(variant, waiting)
        for lane in waiting:
            lane.state = _LaneState.RUNNING
            lane.pending = result
            lane.barrier_request = None
        return True

    @staticmethod
    def _barrier_value(variant: type, waiting: list[_Lane]):
        """Value produced by a predicate-reducing barrier (None for the
        plain __syncthreads())."""
        if variant is rq.Syncthreads:
            return None
        preds = [bool(lane.barrier_request.pred)  # type: ignore[union-attr]
                 for lane in waiting]
        if variant is rq.SyncthreadsCount:
            return sum(preds)
        if variant is rq.SyncthreadsAnd:
            return all(preds)
        if variant is rq.SyncthreadsOr:
            return any(preds)
        raise SimulationError(f"unknown barrier variant {variant}")

    @staticmethod
    def _load(space: dict[str, np.ndarray], request: rq.MemoryRequest,
              kind: str):
        arr = space.get(request.var)
        if arr is None:
            raise SimulationError(
                f"{kind} read of undeclared variable {request.var!r}")
        flat = arr.reshape(-1)
        if not 0 <= request.idx < flat.size:
            raise SimulationError(
                f"{kind} read of {request.var}[{request.idx}] out of "
                f"bounds (size {flat.size})")
        return flat[request.idx].item()

    @staticmethod
    def _store(space: dict[str, np.ndarray], request: rq.MemoryRequest,
               value, kind: str) -> None:
        arr = space.get(request.var)
        if arr is None:
            raise SimulationError(
                f"{kind} write of undeclared variable {request.var!r}")
        flat = arr.reshape(-1)
        if not 0 <= request.idx < flat.size:
            raise SimulationError(
                f"{kind} write of {request.var}[{request.idx}] out of "
                f"bounds (size {flat.size})")
        flat[request.idx] = value

    @staticmethod
    def _raise_deadlock(warps: list[list[_Lane]]) -> None:
        states = {}
        for lanes in warps:
            for lane in lanes:
                states[lane.state.value] = states.get(lane.state.value, 0) + 1
        raise SimulationError(f"kernel deadlock; lane states: {states}")
