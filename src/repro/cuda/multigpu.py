"""Cooperative multi-GPU runtime: grid-wide and cross-device sync.

Extends the single-device kernel interpreter's programming model to N
devices behind an interconnect, at the fidelity the multi-GPU scenario
family needs:

* **Cooperative launch** — every device runs the same kernel over the
  same per-device grid; ``grid.sync()`` rendezvouses the blocks of one
  device, ``multi_grid.sync()`` rendezvouses every thread on every
  device (and publishes pending system writes, like the multi-grid
  cooperative groups barrier).
* **System memory with real visibility semantics** — system arrays are
  host/peer-visible; a device's plain ``system_write`` is buffered in
  that device's write queue and becomes visible to peers only when the
  device *publishes*: a ``threadfence(Scope.SYSTEM)``, a
  ``multi_grid.sync()``, or kernel completion.  A device-scope fence
  does **not** publish — which is exactly the seeded defect the
  cross-device sync-scope sanitizer rule flags: a flag handshake guarded
  by ``threadfence(Scope.DEVICE)`` observably hands peers stale data.
* **System-scope atomics** — relaxed cross-device RMWs on the canonical
  system array: the atomic itself is immediately coherent to peers, but
  earlier plain writes stay buffered until a system fence orders them
  (CUDA's relaxed atomics imply no release).  Device-scope atomics on
  system memory stay in the issuing device's buffered view: atomic
  within the device, invisible across it, as on hardware.
* **Timing** — per-device clocks advance by
  :class:`repro.gpu.multi.MultiGpu` prices (device-scope ops at
  single-device cost, link-crossing ops with interconnect latency);
  barriers align clocks; the launch time is the slowest device.

A content-keyed **replay tier** rides the dispatcher contract: when the
fast path is on and :func:`repro.compiler.dispatcher.dispatch_mode` is
not ``"off"``, a repeated launch (same kernel, devices, launch shape,
and memory contents) replays the recorded outcome byte-for-byte instead
of re-interpreting, bumping ``multigpu.replay_hit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Mapping

import numpy as np

from repro.common.budget import StepBudget
from repro.common.errors import SimulationError
from repro.compiler.ops import Op, PrimitiveKind, Scope
from repro.gpu.multi import MultiGpu, MultiGpuRunContext
from repro.gpu.spec import LaunchConfig
from repro.mem.layout import SharedScalar
from repro.cuda import requests as rq
from repro.cuda.interpreter import KernelThread
from repro.obs import span as obs_span
from repro.obs.metrics import counter as _counter

_C_LAUNCHES = _counter("multigpu.launches")
_C_ROUNDS = _counter("multigpu.rounds")
_C_PUBLISHES = _counter("multigpu.publishes")
_C_REPLAY_HIT = _counter("multigpu.replay_hit")
_C_REPLAY_MISS = _counter("multigpu.replay_miss")

_ATOMIC_KIND_OF = {
    rq.AtomicAdd: PrimitiveKind.ATOMIC_ADD,
    rq.AtomicSub: PrimitiveKind.ATOMIC_SUB,
    rq.AtomicMax: PrimitiveKind.ATOMIC_MAX,
    rq.AtomicMin: PrimitiveKind.ATOMIC_MIN,
    rq.AtomicAnd: PrimitiveKind.ATOMIC_AND,
    rq.AtomicOr: PrimitiveKind.ATOMIC_OR,
    rq.AtomicXor: PrimitiveKind.ATOMIC_XOR,
    rq.AtomicInc: PrimitiveKind.ATOMIC_INC,
    rq.AtomicDec: PrimitiveKind.ATOMIC_DEC,
    rq.AtomicCas: PrimitiveKind.ATOMIC_CAS,
    rq.AtomicExch: PrimitiveKind.ATOMIC_EXCH,
}

_FENCE_KIND_OF = {
    Scope.DEVICE: PrimitiveKind.THREADFENCE,
    Scope.BLOCK: PrimitiveKind.THREADFENCE_BLOCK,
    Scope.SYSTEM: PrimitiveKind.THREADFENCE_SYSTEM,
}

#: Sentinel distinguishing "no pending write" from a written value.
_ABSENT = object()


class MgThread(KernelThread):
    """Per-thread handle on a multi-device cooperative launch.

    Extends :class:`KernelThread` (same block-level built-ins and sugar)
    with the device coordinate and the multi-device requests.
    """

    __slots__ = ("device", "n_devices")

    def __init__(self, thread_idx: int, block_idx: int, block_dim: int,
                 grid_dim: int, device: int, n_devices: int) -> None:
        super().__init__(thread_idx, block_idx, block_dim, grid_dim)
        self.device = device
        self.n_devices = n_devices

    @property
    def system_id(self) -> int:
        """Rank across every thread on every device."""
        return self.device * self.blockDim * self.gridDim + self.global_id

    @property
    def system_threads(self) -> int:
        """Total threads across all devices."""
        return self.n_devices * self.blockDim * self.gridDim

    # ----------------------------- sugar ------------------------------ #

    def grid_sync(self) -> rq.GridSync:
        """``grid.sync()`` — barrier over this device's grid."""
        return rq.GridSync()

    def multi_grid_sync(self) -> rq.MultiGridSync:
        """``multi_grid.sync()`` — barrier over every device's grid."""
        return rq.MultiGridSync()

    def system_read(self, var: str, idx: int) -> rq.SystemRead:
        """Load ``var[idx]`` from system (host/peer-visible) memory."""
        return rq.SystemRead(var, idx)

    def system_write(self, var: str, idx: int,
                     value) -> rq.SystemWrite:
        """Store ``value`` to ``var[idx]`` in system memory (buffered
        device-side until the next publish point)."""
        return rq.SystemWrite(var, idx, value)


#: A multi-device kernel: generator function over an :class:`MgThread`.
MgKernel = Callable[[MgThread], Generator]


class _State:
    RUNNING = "running"
    GRID = "grid_barrier"
    MULTI = "multi_barrier"
    DONE = "done"


@dataclass(slots=True)
class _MgThreadState:
    gen: Generator
    state: str = _State.RUNNING
    pending: object = None


@dataclass
class MgLaunchStats:
    """Operation counts observed during one multi-device launch."""

    system_reads: int = 0
    system_writes: int = 0
    device_accesses: int = 0
    device_atomics: int = 0
    system_atomics: int = 0
    fences: int = 0
    grid_syncs: int = 0
    multi_grid_syncs: int = 0
    publishes: int = 0
    rounds: int = 0


@dataclass
class MgLaunchResult:
    """Outcome of one cooperative multi-device launch.

    Attributes:
        system: System memory after the launch (mutated in place; every
            device's pending writes are published at kernel completion).
        device_memories: Per-device global arrays, one dict per device.
        elapsed_cycles: Modeled launch runtime (slowest device).
        elapsed_ns: The same in nanoseconds at the device clock.
        device_cycles: Per-device modeled runtimes.
        stats: Operation counts.
    """

    system: dict[str, np.ndarray]
    device_memories: list[dict[str, np.ndarray]]
    elapsed_cycles: float
    elapsed_ns: float
    device_cycles: list[float] = field(default_factory=list)
    stats: MgLaunchStats = field(default_factory=MgLaunchStats)


class _Device:
    """Execution state of one device in a cooperative launch."""

    __slots__ = ("index", "threads", "memory", "pending", "clock")

    def __init__(self, index: int, threads: list[_MgThreadState],
                 memory: dict[str, np.ndarray]) -> None:
        self.index = index
        self.threads = threads
        self.memory = memory
        #: Buffered system-memory writes: (var, idx) -> value, in
        #: program order (later writes to the same slot overwrite).
        self.pending: dict[tuple[str, int], object] = {}
        self.clock = 0.0


class MultiCuda:
    """A cooperative multi-GPU runtime bound to a :class:`MultiGpu`.

    Args:
        multi: The multi-GPU machine (devices + interconnect pricing).
        n_devices: Devices participating in every launch.
        max_steps: Interpreter step budget per launch.
        fast: Enable the replay dispatch tier; ``None`` follows the
            process default (the same ``SYNCPERF_ENGINE`` switch the
            measurement engine and single-device runtime honor).
    """

    def __init__(self, multi: MultiGpu, n_devices: int,
                 max_steps: int = 10_000_000,
                 fast: bool | None = None) -> None:
        from repro.core.engine import fast_path_default
        if n_devices < 1:
            raise SimulationError("need at least one device")
        self.multi = multi
        self.n_devices = n_devices
        self.max_steps = max_steps
        self.fast = fast_path_default() if fast is None else fast
        self._replay: dict[tuple, dict] = {}

    def clear(self) -> None:
        """Drop every recorded replay entry (cold-start the tier)."""
        self._replay.clear()

    # ------------------------------ launch ----------------------------- #

    def launch(self, kernel: MgKernel, launch: LaunchConfig,
               system: Mapping[str, np.ndarray] | None = None,
               device_globals: Mapping[str, tuple[int, np.dtype]]
               | None = None) -> MgLaunchResult:
        """Run ``kernel`` cooperatively over every device to completion.

        Args:
            kernel: Generator function over an :class:`MgThread`.
            launch: Per-device grid/block dimensions (every device runs
                the same shape, as a cooperative multi-device launch
                requires).
            system: Host/peer-visible arrays by name (mutated in place).
            device_globals: Per-device global declarations, as
                ``name -> (n_elements, numpy dtype)``; each device gets
                its own zeroed instance.

        Raises:
            SimulationError: on deadlock, barrier misuse, step-budget
                exhaustion, or undeclared-variable access.
        """
        system_mem: dict[str, np.ndarray] = dict(system or {})
        decls = dict(device_globals or {})
        ctx = self.multi.context(self.n_devices, launch)
        _C_LAUNCHES.add(1)

        from repro.compiler.dispatcher import dispatch_mode
        key = None
        if self.fast and dispatch_mode() != "off":
            key = self._replay_key(kernel, launch, system_mem, decls)
            hit = self._replay.get(key)
            if hit is not None:
                _C_REPLAY_HIT.add(1)
                return self._replay_result(hit, system_mem)
            _C_REPLAY_MISS.add(1)

        with obs_span("multigpu.launch", devices=self.n_devices,
                      grid_blocks=launch.grid_blocks,
                      block_threads=launch.block_threads,
                      path="replay-miss" if key is not None
                      else "reference"):
            result = self._run(kernel, launch, ctx, system_mem, decls)
        if key is not None:
            self._replay[key] = self._record(result)
        return result

    # -------------------------- replay tier ---------------------------- #

    @staticmethod
    def _replay_key(kernel: MgKernel, launch: LaunchConfig,
                    system: dict[str, np.ndarray],
                    decls: dict[str, tuple[int, np.dtype]]) -> tuple:
        """Content key: kernel identity + launch shape + memory bytes.

        The kernel function object participates directly (closures over
        different programs share a code object but are distinct keys);
        the cache lives on the runtime instance, so keys never outlive
        the objects they reference.
        """
        mem_sig = tuple(
            (name, arr.dtype.str, arr.shape, arr.tobytes())
            for name, arr in sorted(system.items()))
        decl_sig = tuple((name, size, np.dtype(dt).str)
                         for name, (size, dt) in sorted(decls.items()))
        return (kernel, launch.grid_blocks, launch.block_threads,
                mem_sig, decl_sig)

    @staticmethod
    def _record(result: MgLaunchResult) -> dict:
        return {
            "system": {name: arr.copy()
                       for name, arr in result.system.items()},
            "devices": [{name: arr.copy() for name, arr in mem.items()}
                        for mem in result.device_memories],
            "elapsed": result.elapsed_cycles,
            "elapsed_ns": result.elapsed_ns,
            "cycles": list(result.device_cycles),
            "stats": MgLaunchStats(**vars(result.stats)),
        }

    @staticmethod
    def _replay_result(record: dict,
                       system: dict[str, np.ndarray]) -> MgLaunchResult:
        for name, arr in record["system"].items():
            system[name][...] = arr
        return MgLaunchResult(
            system=system,
            device_memories=[{name: arr.copy()
                              for name, arr in mem.items()}
                             for mem in record["devices"]],
            elapsed_cycles=record["elapsed"],
            elapsed_ns=record["elapsed_ns"],
            device_cycles=list(record["cycles"]),
            stats=MgLaunchStats(**vars(record["stats"])),
        )

    # ------------------------- reference loop --------------------------- #

    def _run(self, kernel: MgKernel, launch: LaunchConfig,
             ctx: MultiGpuRunContext, system: dict[str, np.ndarray],
             decls: dict[str, tuple[int, np.dtype]]) -> MgLaunchResult:
        stats = MgLaunchStats()
        budget = StepBudget(self.max_steps, hint="runaway multi-GPU "
                            "kernel?")
        devices = []
        for d in range(self.n_devices):
            memory = {name: np.zeros(size, dtype=dt)
                      for name, (size, dt) in decls.items()}
            threads = []
            for block in range(launch.grid_blocks):
                for t in range(launch.block_threads):
                    mt = MgThread(t, block, launch.block_threads,
                                  launch.grid_blocks, d, self.n_devices)
                    threads.append(_MgThreadState(gen=kernel(mt)))
            devices.append(_Device(d, threads, memory))

        while not all(th.state is _State.DONE
                      for dev in devices for th in dev.threads):
            progressed = False
            for dev in devices:
                stepped, cost = self._step_device(dev, ctx, system,
                                                  stats, budget)
                dev.clock += cost
                progressed |= stepped
            progressed |= self._maybe_release_grid(devices, ctx, stats)
            progressed |= self._maybe_release_multi(devices, ctx, system,
                                                    stats)
            stats.rounds += 1
            _C_ROUNDS.add(1)
            if not progressed:
                self._raise_deadlock(devices)

        # Kernel completion is a system-wide sync point: outstanding
        # writes become host-visible, like a stream synchronize.
        for dev in devices:
            self._publish(dev, system, stats)
        elapsed = max(dev.clock for dev in devices) \
            + self.multi.params.kernel_launch_cycles
        return MgLaunchResult(
            system=system,
            device_memories=[dev.memory for dev in devices],
            elapsed_cycles=elapsed,
            elapsed_ns=elapsed / self.multi.clock_ghz,
            device_cycles=[dev.clock for dev in devices],
            stats=stats,
        )

    def _step_device(self, dev: _Device, ctx: MultiGpuRunContext,
                     system: dict[str, np.ndarray], stats: MgLaunchStats,
                     budget: StepBudget) -> tuple[bool, float]:
        """Advance every runnable thread of one device by one request.

        The pass cost is the most expensive request of the pass (threads
        of a device issue concurrently; contention lives in the prices).
        """
        stepped = False
        cost = 0.0
        for th in dev.threads:
            if th.state is not _State.RUNNING:
                continue
            stepped = True
            budget.charge()
            try:
                request = th.gen.send(th.pending)
            except StopIteration:
                th.state = _State.DONE
                continue
            th.pending = None
            cost = max(cost, self._execute(dev, th, request, ctx,
                                           system, stats))
        return stepped, cost

    # --------------------------- execution ----------------------------- #

    def _execute(self, dev: _Device, th: _MgThreadState,
                 request: rq.Request, ctx: MultiGpuRunContext,
                 system: dict[str, np.ndarray],
                 stats: MgLaunchStats) -> float:
        params = self.multi.params
        link = self.multi.interconnect
        if isinstance(request, rq.Alu):
            return params.alu_cycles * request.n
        if isinstance(request, rq.GridSync):
            th.state = _State.GRID
            return 0.0
        if isinstance(request, rq.MultiGridSync):
            th.state = _State.MULTI
            return 0.0
        if isinstance(request, rq.Threadfence):
            stats.fences += 1
            if request.scope is Scope.SYSTEM:
                self._publish(dev, system, stats)
            return self.multi.op_cost(
                Op(kind=_FENCE_KIND_OF[request.scope]), ctx)
        if isinstance(request, rq.SystemRead):
            stats.system_reads += 1
            th.pending = self._system_load(dev, system, request)
            return params.global_load_cycles + link.latency_cycles
        if isinstance(request, rq.SystemWrite):
            stats.system_writes += 1
            self._check_slot(system, request, "system")
            dev.pending[(request.var, request.idx)] = request.value
            return params.global_load_cycles + link.latency_cycles
        if isinstance(request, rq.GlobalRead):
            stats.device_accesses += 1
            th.pending = self._device_load(dev, request)
            return params.global_load_cycles
        if isinstance(request, rq.GlobalWrite):
            stats.device_accesses += 1
            arr = self._device_slot(dev, request)
            arr[request.idx] = request.value
            return params.global_load_cycles
        if isinstance(request, rq.AtomicRmw):
            return self._execute_atomic(dev, th, request, ctx, system,
                                        stats)
        raise SimulationError(
            f"multi-GPU kernel yielded an unsupported request: "
            f"{request!r}")

    def _execute_atomic(self, dev: _Device, th: _MgThreadState,
                        request: rq.AtomicRmw, ctx: MultiGpuRunContext,
                        system: dict[str, np.ndarray],
                        stats: MgLaunchStats) -> float:
        var, idx = request.var, request.idx
        on_system = var in system
        if not on_system and var not in dev.memory:
            raise SimulationError(
                f"atomic on undeclared variable {var!r}")
        if on_system and request.scope is Scope.SYSTEM:
            # Cross-device coherent, but *relaxed*: the RMW itself hits
            # the canonical array and is immediately visible to peers,
            # while the device's earlier plain system writes stay
            # buffered.  Ordering prior writes before the atomic needs a
            # threadfence(Scope.SYSTEM) — exactly the handshake the
            # cross-device sync-scope sanitizer rule enforces.
            stats.system_atomics += 1
            arr = system[var].reshape(-1)
            self._check_idx(arr, var, idx)
            old = arr[idx].item()
            arr[idx] = self._rmw(request, old)
        elif on_system:
            # Device-scope atomic on system memory: atomic within this
            # device's buffered view, invisible to peers until publish.
            stats.device_atomics += 1
            arr = system[var].reshape(-1)
            self._check_idx(arr, var, idx)
            old = dev.pending.get((var, idx), arr[idx].item())
            dev.pending[(var, idx)] = self._rmw(request, old)
        else:
            stats.device_atomics += 1
            arr = dev.memory[var].reshape(-1)
            self._check_idx(arr, var, idx)
            old = arr[idx].item()
            arr[idx] = self._rmw(request, old)
        th.pending = old

        from repro.common.datatypes import DTYPES, INT
        np_dtype = (system[var] if on_system else dev.memory[var]).dtype
        dtype = INT
        for dt in DTYPES:
            if dt.np_dtype == np_dtype:
                dtype = dt
                break
        op = Op(kind=_ATOMIC_KIND_OF[type(request)], dtype=dtype,
                target=SharedScalar(dtype),
                scope=request.scope if on_system else Scope.DEVICE)
        return self.multi.op_cost(op, ctx)

    @staticmethod
    def _rmw(request: rq.AtomicRmw, old):
        if isinstance(request, rq.AtomicAdd):
            return old + request.value
        if isinstance(request, rq.AtomicSub):
            return old - request.value
        if isinstance(request, rq.AtomicMax):
            return max(old, request.value)
        if isinstance(request, rq.AtomicMin):
            return min(old, request.value)
        if isinstance(request, rq.AtomicAnd):
            return old & request.value
        if isinstance(request, rq.AtomicOr):
            return old | request.value
        if isinstance(request, rq.AtomicXor):
            return old ^ request.value
        if isinstance(request, rq.AtomicInc):
            return 0 if old >= request.value else old + 1
        if isinstance(request, rq.AtomicDec):
            return request.value if (old == 0 or old > request.value) \
                else old - 1
        if isinstance(request, rq.AtomicCas):
            return request.value if old == request.compare else old
        if isinstance(request, rq.AtomicExch):
            return request.value
        raise SimulationError(f"unknown atomic {request!r}")

    # ------------------------- memory plumbing -------------------------- #

    def _system_load(self, dev: _Device, system: dict[str, np.ndarray],
                     request: rq.MemoryRequest):
        """Canonical value overlaid with the device's own pending writes."""
        self._check_slot(system, request, "system")
        own = dev.pending.get((request.var, request.idx), _ABSENT)
        if own is not _ABSENT:
            return own
        return system[request.var].reshape(-1)[request.idx].item()

    def _device_load(self, dev: _Device, request: rq.MemoryRequest):
        self._check_slot(dev.memory, request, "device-global")
        return dev.memory[request.var].reshape(-1)[request.idx].item()

    def _device_slot(self, dev: _Device,
                     request: rq.MemoryRequest) -> np.ndarray:
        self._check_slot(dev.memory, request, "device-global")
        return dev.memory[request.var].reshape(-1)

    @staticmethod
    def _check_slot(space: Mapping[str, np.ndarray],
                    request: rq.MemoryRequest, kind: str) -> None:
        arr = space.get(request.var)
        if arr is None:
            raise SimulationError(
                f"{kind} access to undeclared variable "
                f"{request.var!r}")
        if not 0 <= request.idx < arr.reshape(-1).size:
            raise SimulationError(
                f"{kind} access to {request.var}[{request.idx}] out of "
                f"bounds (size {arr.reshape(-1).size})")

    @staticmethod
    def _check_idx(arr: np.ndarray, var: str, idx: int) -> None:
        if not 0 <= idx < arr.size:
            raise SimulationError(
                f"atomic on {var}[{idx}] out of bounds "
                f"(size {arr.size})")

    def _publish(self, dev: _Device, system: dict[str, np.ndarray],
                 stats: MgLaunchStats) -> None:
        """Flush the device's buffered system writes to the canonical
        arrays (program order; later writes already overwrote earlier
        ones per slot)."""
        if not dev.pending:
            return
        for (var, idx), value in dev.pending.items():
            system[var].reshape(-1)[idx] = value
        dev.pending.clear()
        stats.publishes += 1
        _C_PUBLISHES.add(1)

    # ---------------------------- barriers ------------------------------ #

    def _maybe_release_grid(self, devices: list[_Device],
                            ctx: MultiGpuRunContext,
                            stats: MgLaunchStats) -> bool:
        """Release any device whose whole grid reached ``grid.sync()``."""
        released = False
        for dev in devices:
            waiting = [th for th in dev.threads
                       if th.state is _State.GRID]
            if not waiting:
                continue
            live = [th for th in dev.threads
                    if th.state is not _State.DONE]
            if len(waiting) < len(live):
                continue  # stragglers still running / at other barriers
            if len(live) < len(dev.threads):
                raise SimulationError(
                    "grid.sync() reached while some threads of the "
                    "device already returned; a cooperative grid "
                    "barrier needs every thread")
            dev.clock += self.multi.op_cost(
                Op(kind=PrimitiveKind.GRID_SYNC), ctx)
            for th in waiting:
                th.state = _State.RUNNING
                th.pending = None
            stats.grid_syncs += 1
            released = True
        return released

    def _maybe_release_multi(self, devices: list[_Device],
                             ctx: MultiGpuRunContext,
                             system: dict[str, np.ndarray],
                             stats: MgLaunchStats) -> bool:
        """Release the all-device barrier once every thread arrived.

        The release publishes every device's pending system writes (the
        multi-grid barrier is a cross-device sync point) and aligns all
        device clocks to the slowest arrival plus the barrier cost.
        """
        waiting = [th for dev in devices for th in dev.threads
                   if th.state is _State.MULTI]
        if not waiting:
            return False
        live = [th for dev in devices for th in dev.threads
                if th.state is not _State.DONE]
        if len(waiting) < len(live):
            return False  # stragglers on some device still running
        total = sum(len(dev.threads) for dev in devices)
        if len(live) < total:
            raise SimulationError(
                "multi_grid.sync() reached while some threads already "
                "returned; a cooperative multi-device barrier needs "
                "every thread on every device")
        cost = self.multi.op_cost(
            Op(kind=PrimitiveKind.MULTI_GRID_SYNC), ctx)
        release = max(dev.clock for dev in devices) + cost
        for dev in devices:
            self._publish(dev, system, stats)
            dev.clock = release
            for th in dev.threads:
                if th.state is _State.MULTI:
                    th.state = _State.RUNNING
                    th.pending = None
        stats.multi_grid_syncs += 1
        return True

    @staticmethod
    def _raise_deadlock(devices: list[_Device]) -> None:
        states: dict[str, int] = {}
        for dev in devices:
            for th in dev.threads:
                states[th.state] = states.get(th.state, 0) + 1
        raise SimulationError(
            f"multi-GPU kernel deadlock; thread states: {states}")
