"""Data-race detection for CUDA kernels.

Two hazard classes, matching the CUDA memory model:

* **Intra-block** — conflicting accesses from different threads of one
  block are ordered only by ``__syncthreads()``; within one barrier epoch,
  a plain write conflicting with another thread's access is a race
  (unless both are atomic).
* **Cross-block** — blocks of one launch cannot synchronize with each
  other at all, so *any* conflicting pair from different blocks is a
  race regardless of barriers (unless both are atomic).

Enabled with ``Cuda(device, detect_races=True)``; shared-memory accesses
use per-block epochs, global-memory accesses additionally check the
cross-block rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DataRaceError


@dataclass(frozen=True)
class GpuAccess:
    """One recorded access.

    Attributes:
        block: Block index.
        thread: Thread index within the block.
        is_write: Store or read-modify-write.
        is_atomic: Performed atomically.
        epoch: The block's barrier epoch at access time.
    """

    block: int
    thread: int
    is_write: bool
    is_atomic: bool
    epoch: int


@dataclass(frozen=True)
class GpuRaceReport:
    """One detected race on ``var[idx]``."""

    var: str
    idx: int
    first: GpuAccess
    second: GpuAccess
    kind: str  # "intra-block" or "cross-block"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.kind} race on {self.var}[{self.idx}]: "
                f"block {self.first.block} thread {self.first.thread} "
                f"{'write' if self.first.is_write else 'read'} vs "
                f"block {self.second.block} thread {self.second.thread} "
                f"{'write' if self.second.is_write else 'read'}")


class BlockFootprint:
    """Global-memory footprint of one (or more) blocks' execution.

    The parallel block executor records every global read/write (atomics
    count as writes: their returned old value makes even commutative
    overlap order-visible) while a chunk of blocks runs in a forked
    worker, then verifies pairwise disjointness across chunks with
    :func:`footprints_disjoint` before accepting the parallel result.
    Indices are flat element indices, the same coordinates the race
    detector uses.
    """

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: dict[str, set[int]] = {}
        self.writes: dict[str, set[int]] = {}

    def read(self, var: str, idx: int) -> None:
        """Record a read of ``var[idx]``."""
        self.reads.setdefault(var, set()).add(idx)

    def write(self, var: str, idx: int) -> None:
        """Record a write (or atomic) to ``var[idx]``."""
        self.writes.setdefault(var, set()).add(idx)

    def record_pass(self, requests, shared) -> None:
        """Record one warp pass's gathered requests.

        ``shared`` is the block's shared-memory namespace: atomics on a
        shared variable never touch global memory and are skipped, the
        same space rule :meth:`Cuda._execute_atomics` applies.
        """
        from repro.cuda import requests as rq
        for request in requests:
            if isinstance(request, rq.GlobalRead):
                self.reads.setdefault(request.var, set()).add(request.idx)
            elif isinstance(request, rq.GlobalWrite):
                self.writes.setdefault(request.var, set()).add(request.idx)
            elif isinstance(request, rq.AtomicRmw) \
                    and request.var not in shared:
                self.writes.setdefault(request.var, set()).add(request.idx)


_EMPTY_SET: frozenset = frozenset()


def footprints_disjoint(footprints: list[BlockFootprint]) -> bool:
    """True when no footprint's writes overlap another's reads or writes.

    This is the safety rule for executing block chunks in parallel from
    snapshots of pre-launch memory: if chunk *i* never writes what chunk
    *j* reads or writes (in either direction), neither chunk can observe
    the other's effects, so running them from the same snapshot and
    merging written ranges afterwards is bit-identical to the serial
    schedule.  Overlapping atomics are rejected too — they commute on
    memory, but their *returned* old values depend on global order.
    """
    for i in range(len(footprints)):
        for j in range(i + 1, len(footprints)):
            a, b = footprints[i], footprints[j]
            for var, writes in a.writes.items():
                if not writes.isdisjoint(b.writes.get(var, _EMPTY_SET)) \
                        or not writes.isdisjoint(b.reads.get(var,
                                                             _EMPTY_SET)):
                    return False
            for var, writes in b.writes.items():
                if not writes.isdisjoint(a.reads.get(var, _EMPTY_SET)):
                    return False
    return True


def _conflicts(a: GpuAccess, b: GpuAccess) -> bool:
    if not (a.is_write or b.is_write):
        return False
    if a.is_atomic and b.is_atomic:
        return False
    return True


@dataclass
class GpuRaceDetector:
    """Launch-wide race detector.

    Attributes:
        raise_on_race: Raise :class:`DataRaceError` at the first race
            (default); otherwise collect into :attr:`races`.
    """

    raise_on_race: bool = True
    races: list[GpuRaceReport] = field(default_factory=list)
    _global: dict[tuple[str, int], list[GpuAccess]] = \
        field(default_factory=dict)
    _shared: dict[tuple[int, str, int], list[GpuAccess]] = \
        field(default_factory=dict)

    def record_global(self, var: str, idx: int, access: GpuAccess) -> None:
        """Record a global-memory access and check both hazard classes."""
        history = self._global.setdefault((var, idx), [])
        for prev in history:
            if prev.block != access.block:
                if _conflicts(prev, access):
                    self._report(var, idx, prev, access, "cross-block")
                    break
            elif prev.thread != access.thread and \
                    prev.epoch == access.epoch:
                if _conflicts(prev, access):
                    self._report(var, idx, prev, access, "intra-block")
                    break
        if access not in history:  # dedup keeps histories bounded
            history.append(access)

    def record_shared(self, block: int, var: str, idx: int,
                      access: GpuAccess) -> None:
        """Record a shared-memory access (block-local epochs apply)."""
        history = self._shared.setdefault((block, var, idx), [])
        for prev in history:
            if prev.thread != access.thread and \
                    prev.epoch == access.epoch and \
                    _conflicts(prev, access):
                self._report(var, idx, prev, access, "intra-block")
                break
        if access not in history:
            history.append(access)

    def _report(self, var: str, idx: int, first: GpuAccess,
                second: GpuAccess, kind: str) -> None:
        report = GpuRaceReport(var=var, idx=idx, first=first,
                               second=second, kind=kind)
        if self.raise_on_race:
            raise DataRaceError(str(report))
        self.races.append(report)
