"""Batched fast dispatch for the CUDA interpreter.

The scalar reference loop in :mod:`repro.cuda.interpreter` advances one
lane at a time: one ``isinstance`` chain, one cost lookup, and one
detector/trace check per lane per pass.  In every shipped kernel the
lanes of a warp almost always yield the *same* request type in a pass
(that is what SIMT means), so this module executes such **uniform
passes** as one batched operation over the whole warp:

* per-pass cost folding happens on arrays/sets instead of per-lane
  ``max`` reductions,
* memory traffic goes through one numpy gather/scatter instead of 32
  scalar loads/stores,
* atomic pricing is memoized on the observed issue pattern, and
* the ``trace``/``detector`` observability hooks are hoisted out of the
  inner loop entirely — disabled observability costs nothing.

Divergent (mixed-type) passes, out-of-bounds or undeclared accesses,
and mixed-variable atomic groups fall back to the reference pass
semantics (:meth:`Cuda._process_gathered`), so every error message,
stat, cost, and trace label is byte-identical to the scalar loop.  Race
detection needs to observe every access in program order, so a launch
with a detector delegates to the reference block runner outright.

The public ``interp.cuda.uniform_passes`` counter (:mod:`repro.obs`)
lets callers (the bench suite, CI smoke checks) assert that the batched
dispatcher actually ran — and that it did *not* run while timing the
reference path.  The module-level :data:`UNIFORM_PASSES` global is its
backward-compatible twin.
"""

from __future__ import annotations

import numpy as np

from repro.common.budget import StepBudget
from repro.common.datatypes import DTYPES, INT
from repro.compiler.ops import Op, PrimitiveKind, Scope
from repro.gpu.device import GpuRunContext
from repro.gpu.spec import WARP_SIZE, LaunchConfig
from repro.mem.layout import SharedScalar
from repro.cuda import requests as rq
from repro.cuda.interpreter import (
    _ATOMIC_KIND_OF,
    _BARRIER_KIND_OF,
    _COLLECTIVE_KIND_OF,
    _FENCE_KIND_OF,
    _BlockEnv,
    _Lane,
    _LaneState,
    KernelThread,
    LaunchStats,
)
from repro.cuda.race import GpuRaceDetector
from repro.cuda.trace import Trace
from repro.obs.metrics import _SUBSCRIBER as _metric_subscriber
from repro.obs.metrics import counter as _counter

#: Uniform warp passes executed by the batched dispatcher since import.
#: Monotonic; sample before/after a run to see whether it was used.
#: Kept for backward compatibility — new code should read the
#: ``interp.cuda.uniform_passes`` counter from :mod:`repro.obs` instead.
UNIFORM_PASSES = 0

# Observability counters (docs/observability.md).  Dispatch passes are
# accumulated locally per block and flushed once at block end; the
# invariant ``uniform_passes + fallback_passes == passes`` holds by
# construction.
_C_UNIFORM = _counter("interp.cuda.uniform_passes")
_C_FALLBACK = _counter("interp.cuda.fallback_passes")
_C_PASSES = _counter("interp.cuda.passes")
_C_BLOCKS_FAST = _counter("interp.cuda.blocks_fast")


def run_block_fast(cuda, kernel, launch: LaunchConfig, ctx: GpuRunContext,
                   block_idx: int, memory: dict[str, np.ndarray],
                   shared_decls: dict[str, tuple[int, np.dtype]],
                   stats: LaunchStats, budget: StepBudget,
                   trace: Trace | None = None,
                   detector: GpuRaceDetector | None = None,
                   footprint=None) -> float:
    """Execute one block with batched uniform-pass dispatch.

    Mirrors :meth:`Cuda._run_block_reference` exactly — same
    ``LaunchResult`` fields, same errors — while dispatching uniform
    warp passes as single vectorized operations.
    """
    if detector is not None:
        # A race detector must observe every access in program order;
        # the reference loop *is* that order.  Fast dispatch brings
        # nothing once per-access recording dominates anyway.
        return cuda._run_block_reference(
            kernel, launch, ctx, block_idx, memory, shared_decls, stats,
            budget, trace, detector)

    global UNIFORM_PASSES
    params = cuda.device.params
    device = cuda.device
    alu_cycles = params.alu_cycles
    global_load_cycles = params.global_load_cycles
    uncoalesced = params.uncoalesced_penalty_cycles

    shared = {name: np.zeros(size, dtype=dt)
              for name, (size, dt) in shared_decls.items()}
    n = launch.block_threads
    warps: list[list[_Lane]] = []
    for wstart in range(0, n, WARP_SIZE):
        lanes = []
        for t in range(wstart, min(wstart + WARP_SIZE, n)):
            kt = KernelThread(t, block_idx, n, launch.grid_blocks)
            lanes.append(_Lane(gen=kernel(kt), lane_id=t - wstart))
        warps.append(lanes)
    warp_clocks = [0.0] * len(warps)
    env = _BlockEnv(block_idx=block_idx, detector=None)
    issuing_warps: dict[tuple[PrimitiveKind, str], set[int]] = {}
    resident_blocks = min(
        launch.grid_blocks,
        ctx.occ.active_sms * ctx.occ.blocks_per_sm_resident)

    RUNNING = _LaneState.RUNNING
    DONE = _LaneState.DONE
    BARRIER = _LaneState.BARRIER
    COLLECTIVE = _LaneState.COLLECTIVE

    total_lanes = sum(len(lanes) for lanes in warps)
    done_lanes = 0

    # Flat views of each variable, cached per run: ``reshape(-1)``
    # allocates a fresh view object per call, which the reference loop
    # pays once per lane.  The dicts are never re-keyed mid-launch, so
    # one view per variable is safe.
    global_flats: dict[str, np.ndarray] = {}
    shared_flats: dict[str, np.ndarray] = {}

    def flat_of(space_flats, space, var):
        flat = space_flats.get(var)
        if flat is None:
            arr = space.get(var)
            if arr is None:
                return None
            flat = arr.reshape(-1)
            space_flats[var] = flat
        return flat

    # Per-run cost memos: op_cost / dynamic_atomic_cost are pure in
    # their arguments (the device model carries no RNG), so one lookup
    # per distinct shape covers the whole block.
    op_cost_cache: dict[object, float] = {}
    atomic_cost_cache: dict[object, float] = {}

    def op_cost(kind: PrimitiveKind) -> float:
        c = op_cost_cache.get(kind)
        if c is None:
            c = device.op_cost(Op(kind=kind), ctx)
            op_cost_cache[kind] = c
        return c

    def atomic_cost(kind: PrimitiveKind, np_dtype, scope: Scope,
                    n_addresses: int, n_lanes: int, n_warps: int) -> float:
        key = (kind, np_dtype, scope, n_addresses, n_lanes, n_warps)
        c = atomic_cost_cache.get(key)
        if c is None:
            dtype = INT
            for dt in DTYPES:
                if dt.np_dtype == np_dtype:
                    dtype = dt
                    break
            op = Op(kind=kind, dtype=dtype, target=SharedScalar(dtype),
                    scope=scope)
            c = device.atomic_issue_cost(
                op, ctx, n_addresses=n_addresses, n_lanes=n_lanes,
                issuing_warps=n_warps, resident_blocks=resident_blocks)
            atomic_cost_cache[key] = c
        return c

    # ------------------------- uniform handlers ------------------------ #
    # Each takes the pass's live lanes and their requests — all of one
    # request class — as parallel lists, and returns (cost, label), or
    # None to fall back to the reference pass semantics (divergence in
    # var/scope, or an error case whose exact exception the reference
    # path must raise).

    def u_alu(glanes, reqs):
        return alu_cycles * max([r.n for r in reqs]), "Alu"

    def u_global_read(glanes, reqs):
        var = reqs[0].var
        flat = flat_of(global_flats, memory, var)
        if flat is None:
            return None
        for r in reqs:
            if r.var != var:
                return None
        idx = [r.idx for r in reqs]
        if min(idx) < 0 or max(idx) >= flat.size:
            return None
        stats.global_accesses += len(idx)
        itemsize = flat.itemsize
        sectors = {i * itemsize // 32 for i in idx}
        cost = global_load_cycles
        if len(sectors) > 1:
            cost += uncoalesced * (len(sectors) - 1)
        for lane, value in zip(glanes, flat.take(idx).tolist()):
            lane.pending = value
        return cost, "GlobalRead"

    def u_global_write(glanes, reqs):
        var = reqs[0].var
        flat = flat_of(global_flats, memory, var)
        if flat is None:
            return None
        for r in reqs:
            if r.var != var:
                return None
        idx = [r.idx for r in reqs]
        if min(idx) < 0 or max(idx) >= flat.size:
            return None
        stats.global_accesses += len(idx)
        itemsize = flat.itemsize
        sectors = {i * itemsize // 32 for i in idx}
        cost = global_load_cycles
        if len(sectors) > 1:
            cost += uncoalesced * (len(sectors) - 1)
        if len(set(idx)) == len(idx):
            np.put(flat, idx, [r.value for r in reqs])
        else:
            # Duplicate targets: lane order decides the survivor.
            for r in reqs:
                flat[r.idx] = r.value
        return cost, "GlobalWrite"

    def u_shared_read(glanes, reqs):
        var = reqs[0].var
        flat = flat_of(shared_flats, shared, var)
        if flat is None:
            return None
        for r in reqs:
            if r.var != var:
                return None
        idx = [r.idx for r in reqs]
        if min(idx) < 0 or max(idx) >= flat.size:
            return None
        stats.shared_accesses += len(idx)
        for lane, value in zip(glanes, flat.take(idx).tolist()):
            lane.pending = value
        return alu_cycles, "SharedRead"

    def u_shared_write(glanes, reqs):
        var = reqs[0].var
        flat = flat_of(shared_flats, shared, var)
        if flat is None:
            return None
        for r in reqs:
            if r.var != var:
                return None
        idx = [r.idx for r in reqs]
        if min(idx) < 0 or max(idx) >= flat.size:
            return None
        stats.shared_accesses += len(idx)
        if len(set(idx)) == len(idx):
            np.put(flat, idx, [r.value for r in reqs])
        else:
            for r in reqs:
                flat[r.idx] = r.value
        return alu_cycles, "SharedWrite"

    def u_syncwarp(glanes, reqs):
        stats.syncwarps += len(reqs)
        return op_cost(PrimitiveKind.SYNCWARP), "Syncwarp"

    def u_threadfence(glanes, reqs):
        stats.fences += len(reqs)
        cost = 0.0
        for r in reqs:
            c = op_cost(_FENCE_KIND_OF[r.scope])
            if c > cost:
                cost = c
        return cost, "Threadfence"

    def u_activemask(glanes, reqs):
        mask = 0
        for other in current_lanes[0]:
            if other.state is not DONE:
                mask |= 1 << other.lane_id
        for lane in glanes:
            lane.pending = mask
        return alu_cycles, "Activemask"

    def u_barrier(glanes, reqs):
        for lane, r in zip(glanes, reqs):
            lane.state = BARRIER
            lane.barrier_request = r
        return 0.0, ""

    def u_collective(glanes, reqs):
        for lane, r in zip(glanes, reqs):
            lane.state = COLLECTIVE
            lane.collective = r
        return 0.0, ""

    def u_atomic(glanes, reqs):
        first = reqs[0]
        cls = first.__class__
        var = first.var
        scope = first.scope
        for r in reqs:
            if r.var != var or r.scope is not scope:
                return None
        in_shared = var in shared
        if in_shared:
            flat = flat_of(shared_flats, shared, var)
        else:
            flat = flat_of(global_flats, memory, var)
        if flat is None:
            return None
        idx = [r.idx for r in reqs]
        if min(idx) < 0 or max(idx) >= flat.size:
            return None
        n_lanes = len(idx)
        effective_scope = Scope.BLOCK if in_shared else scope
        if effective_scope is Scope.BLOCK:
            stats.block_atomics += n_lanes
        else:
            stats.global_atomics += n_lanes
        n_addresses = len(set(idx))

        if n_addresses == n_lanes:
            # All-distinct targets: one gather, one vectorized update,
            # one scatter.  Value lists keep native python types so
            # promotion/cast behaviour matches the scalar stores.
            idx_arr = np.array(idx, dtype=np.intp)
            old_arr = flat[idx_arr]
            olds = old_arr.tolist()
            if cls is rq.AtomicCas:
                values = np.asarray([r.value for r in reqs])
                compares = np.asarray([r.compare for r in reqs])
                new = np.where(old_arr == compares, values, old_arr)
            elif cls is rq.AtomicExch:
                new = np.asarray([r.value for r in reqs])
            else:
                values = np.asarray([r.value for r in reqs])
                if cls is rq.AtomicAdd:
                    new = old_arr + values
                elif cls is rq.AtomicSub:
                    new = old_arr - values
                elif cls is rq.AtomicMax:
                    new = np.maximum(old_arr, values)
                elif cls is rq.AtomicMin:
                    new = np.minimum(old_arr, values)
                elif cls is rq.AtomicAnd:
                    new = old_arr & values
                elif cls is rq.AtomicOr:
                    new = old_arr | values
                elif cls is rq.AtomicXor:
                    new = old_arr ^ values
                elif cls is rq.AtomicInc:
                    new = np.where(old_arr >= values, 0, old_arr + 1)
                elif cls is rq.AtomicDec:
                    new = np.where((old_arr == 0) | (old_arr > values),
                                   values, old_arr - 1)
                else:  # pragma: no cover - the kind map is exhaustive
                    return None
            flat[idx_arr] = new
            for lane, old in zip(glanes, olds):
                lane.pending = old
        elif cls in (rq.AtomicAdd, rq.AtomicSub) \
                and flat.dtype.kind in "iu":
            # Colliding integer add/sub (histogram bins): keep running
            # values in a dict so each unique address costs one numpy
            # load and one store instead of one per lane.  Memory is
            # exact for integers — wrap-around is modular, so deferring
            # the cast to the final store matches per-lane casts.
            running: dict[int, int] = {}
            get = running.get
            if cls is rq.AtomicAdd:
                for lane, r in zip(glanes, reqs):
                    i = r.idx
                    old = get(i)
                    if old is None:
                        old = flat[i].item()
                    lane.pending = old
                    running[i] = old + r.value
            else:
                for lane, r in zip(glanes, reqs):
                    i = r.idx
                    old = get(i)
                    if old is None:
                        old = flat[i].item()
                    lane.pending = old
                    running[i] = old - r.value
            for i, value in running.items():
                flat[i] = value
        else:
            # Colliding targets: lane order is the serialization order,
            # so apply scalar updates — but with the request class
            # dispatched once, outside the loop.
            if cls is rq.AtomicAdd:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = old + r.value
            elif cls is rq.AtomicSub:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = old - r.value
            elif cls is rq.AtomicMax:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = max(old, r.value)
            elif cls is rq.AtomicMin:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = min(old, r.value)
            elif cls is rq.AtomicAnd:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = old & r.value
            elif cls is rq.AtomicOr:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = old | r.value
            elif cls is rq.AtomicXor:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = old ^ r.value
            elif cls is rq.AtomicInc:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = 0 if old >= r.value else old + 1
            elif cls is rq.AtomicDec:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = r.value \
                        if (old == 0 or old > r.value) else old - 1
            elif cls is rq.AtomicCas:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    if old == r.compare:
                        flat[r.idx] = r.value
            elif cls is rq.AtomicExch:
                for lane, r in zip(glanes, reqs):
                    old = flat[r.idx].item()
                    lane.pending = old
                    flat[r.idx] = r.value
            else:  # pragma: no cover - the kind map is exhaustive
                return None

        kind = _ATOMIC_KIND_OF[cls]
        seen = issuing_warps.setdefault((kind, var), set())
        seen.add(warp_id_box[0])
        return atomic_cost(kind, flat.dtype, effective_scope, n_addresses,
                           n_lanes, len(seen)), cls.__name__

    # The atomic/activemask handlers need the current warp id / lane
    # list; one-slot boxes avoid re-binding closures per warp.
    warp_id_box = [0]
    current_lanes = [None]

    handlers = {
        rq.Alu: u_alu,
        rq.GlobalRead: u_global_read,
        rq.GlobalWrite: u_global_write,
        rq.SharedRead: u_shared_read,
        rq.SharedWrite: u_shared_write,
        rq.Syncwarp: u_syncwarp,
        rq.Threadfence: u_threadfence,
        rq.Activemask: u_activemask,
    }
    for barrier_cls in _BARRIER_KIND_OF:
        handlers[barrier_cls] = u_barrier
    for collective_cls in _COLLECTIVE_KIND_OF:
        handlers[collective_cls] = u_collective
    for atomic_cls in _ATOMIC_KIND_OF:
        handlers[atomic_cls] = u_atomic
    # Classes whose uniform pass can complete or conflict with a pending
    # warp collective (the reference loop re-checks after every pass;
    # for plain uniform passes the check is a no-op because the gathered
    # lanes are back to RUNNING).
    needs_collective_check = set(_BARRIER_KIND_OF) | set(_COLLECTIVE_KIND_OF)
    handlers_get = handlers.get

    def step_warp(warp_id, lanes):
        nonlocal done_lanes, barrier_waiting, n_fallback
        global UNIFORM_PASSES
        glanes = []
        reqs = []
        lane_append = glanes.append
        req_append = reqs.append
        n_steps = 0
        for lane in lanes:
            if lane.state is not RUNNING:
                continue
            n_steps += 1
            try:
                request = lane.gen.send(lane.pending)
            except StopIteration:
                lane.state = DONE
                done_lanes += 1
                continue
            lane.pending = None
            lane_append(lane)
            req_append(request)
        stepped = n_steps > 0
        if stepped:
            # One budget charge per pass: totals match the reference
            # exactly (it charges per lane for every send attempt,
            # including lanes that then finish).
            budget.charge(n_steps)

        if not reqs:
            collective = cuda._maybe_run_collective(warp_id, lanes, ctx,
                                                    stats)
            if collective is not None:
                return True, collective[0], collective[1]
            return stepped, 0.0, ""

        if footprint is not None:
            footprint.record_pass(reqs, shared)

        cls = reqs[0].__class__
        uniform = True
        for r in reqs:
            if r.__class__ is not cls:
                uniform = False
                break
        if uniform:
            handler = handlers_get(cls)
            if handler is not None:
                warp_id_box[0] = warp_id
                current_lanes[0] = lanes
                result = handler(glanes, reqs)
                if result is not None:
                    UNIFORM_PASSES += 1
                    cost, label = result
                    if cls in needs_collective_check:
                        if cls in _BARRIER_KIND_OF:
                            barrier_waiting = True
                        collective = cuda._maybe_run_collective(
                            warp_id, lanes, ctx, stats)
                        if collective is not None:
                            cost += collective[0]
                            label = label + "+" + collective[1] \
                                if label else collective[1]
                    return True, cost, label

        # Divergent pass (or an error/odd case): the reference
        # semantics are authoritative.
        n_fallback += 1
        cost, labels = cuda._process_gathered(
            warp_id, lanes, list(zip(glanes, reqs)), ctx, memory, shared,
            issuing_warps, resident_blocks, stats, env)
        for lane in glanes:
            if lane.state is BARRIER:
                barrier_waiting = True
                break
        collective = cuda._maybe_run_collective(warp_id, lanes, ctx, stats)
        if collective is not None:
            cost += collective[0]
            labels.append(collective[1])
        return True, cost, "+".join(labels)

    # ----------------------------- pass loop --------------------------- #

    barrier_waiting = False
    uniform_start = UNIFORM_PASSES
    n_fallback = 0

    while done_lanes < total_lanes:
        progressed = False
        for warp_id, lanes in enumerate(warps):
            stepped, cost, label = step_warp(warp_id, lanes)
            if cost > 0:
                if trace is not None:
                    trace.add(block_idx, warp_id, label,
                              warp_clocks[warp_id],
                              warp_clocks[warp_id] + cost)
                warp_clocks[warp_id] += cost
            progressed |= stepped
        if barrier_waiting:
            # Hoisted: the reference loop scans every lane for barrier
            # arrivals after every pass; here the scan only runs while
            # some lane actually waits at one.
            released = cuda._maybe_release_barrier(
                warps, warp_clocks, ctx, stats, trace, block_idx, env)
            if released:
                barrier_waiting = False
                progressed = True
        if not progressed:
            cuda._raise_deadlock(warps)
    n_uniform = UNIFORM_PASSES - uniform_start
    if _metric_subscriber[0] is None:
        # No recorder: direct increments keep the per-block flush
        # within the bench regression gate's noise floor.
        _C_BLOCKS_FAST.value += 1
        _C_UNIFORM.value += n_uniform
        _C_FALLBACK.value += n_fallback
        _C_PASSES.value += n_uniform + n_fallback
    else:
        _C_BLOCKS_FAST.add(1)
        if n_uniform:
            _C_UNIFORM.add(n_uniform)
        if n_fallback:
            _C_FALLBACK.add(n_fallback)
        if n_uniform or n_fallback:
            _C_PASSES.add(n_uniform + n_fallback)
    return max(warp_clocks) if warp_clocks else 0.0
