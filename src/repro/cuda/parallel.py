"""Parallel execution of independent blocks over forked workers.

CUDA blocks of one launch cannot synchronize with each other, so a
kernel whose blocks touch global memory only through disjoint index
ranges is embarrassingly parallel.  :func:`try_parallel_blocks` exploits
that: it partitions the grid into contiguous chunks, forks one worker
per chunk (``os.fork`` — generator kernels are closures and do not
pickle, but a forked child inherits them for free), runs each chunk
against a copy-on-write snapshot of pre-launch memory while recording
its global footprint, and then — only if the footprints are pairwise
disjoint (:func:`repro.cuda.race.footprints_disjoint`) — merges the
written ranges, stats, trace events, and step counts back in block
order.

Any overlap, worker failure, platform without ``fork``, or step-budget
hazard returns ``None`` instead, and the caller re-executes serially on
the untouched parent memory — the resulting :class:`LaunchResult` is
byte-identical to a serial launch either way, which is the contract the
equivalence tests pin down.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import numpy as np

from repro.common.budget import StepBudget
from repro.cuda.race import BlockFootprint, footprints_disjoint
from repro.cuda.trace import Trace
from repro.obs import event as obs_event
from repro.obs.metrics import counter as _counter

# Observability counters (docs/observability.md): attempted fan-outs,
# merged (successful) fan-outs, and serial fallbacks.  Counter bumps
# inside forked children die with the child; everything here runs in
# the parent.
_C_FORK_ATTEMPTS = _counter("interp.cuda.fork.attempts")
_C_FORK_FORKED = _counter("interp.cuda.fork.forked")
_C_FORK_FALLBACKS = _counter("interp.cuda.fork.fallbacks")


def _fork_fallback(reason: str) -> None:
    """Record one serial re-execution decision (counter + event)."""
    _C_FORK_FALLBACKS.add(1)
    obs_event("cuda.fork.fallback", reason=reason)


def _chunk_blocks(grid_blocks: int, jobs: int) -> list[list[int]]:
    """Split ``range(grid_blocks)`` into ``jobs`` contiguous chunks."""
    jobs = max(1, min(jobs, grid_blocks))
    base, extra = divmod(grid_blocks, jobs)
    chunks, start = [], 0
    for j in range(jobs):
        size = base + (1 if j < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def _run_chunk(cuda, kernel, launch, ctx, memory, shared_decls,
               block_ids, do_trace, budget_limit):
    """Child-side: run one chunk of blocks against snapshot memory."""
    from repro.cuda.interpreter import LaunchStats
    stats = LaunchStats()
    budget = StepBudget(budget_limit, hint="runaway kernel?")
    trace = Trace() if do_trace else None
    footprint = BlockFootprint()
    cycles = [cuda._run_block(kernel, launch, ctx, block_idx, memory,
                              shared_decls, stats, budget, trace, None,
                              footprint)
              for block_idx in block_ids]
    writes = {}
    for var, idxs in footprint.writes.items():
        flat = memory[var].reshape(-1)
        idx_arr = np.array(sorted(idxs), dtype=np.intp)
        writes[var] = (idx_arr, flat[idx_arr].copy())
    return {
        "cycles": cycles,
        "stats": dataclasses.asdict(stats),
        "footprint": footprint,
        "writes": writes,
        "trace": trace,
        "steps": budget.used,
    }


def try_parallel_blocks(cuda, kernel, launch, ctx,
                        memory: dict[str, np.ndarray],
                        shared_decls, stats, budget: StepBudget,
                        trace: Trace | None, block_jobs: int
                        ) -> list[float] | None:
    """Fan the launch's blocks out over forked workers.

    Returns:
        Per-block cycle list (with ``memory``/``stats``/``trace``/
        ``budget`` merged in block order), or ``None`` when the parallel
        attempt cannot guarantee a byte-identical result — the caller
        then runs the ordinary serial loop on the untouched parent
        state.
    """
    _C_FORK_ATTEMPTS.add(1)
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
        _fork_fallback("platform without os.fork")
        return None

    chunks = _chunk_blocks(launch.grid_blocks, block_jobs)
    if len(chunks) < 2:
        _fork_fallback("fewer than 2 chunks")
        return None

    children: list[tuple[int, int]] = []
    for chunk in chunks:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: run the chunk, ship the outcome, exit without
            # touching parent-inherited buffers/atexit hooks.
            os.close(read_fd)
            try:
                payload = ("ok", _run_chunk(
                    cuda, kernel, launch, ctx, memory, shared_decls,
                    chunk, trace is not None, budget.remaining))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                try:
                    payload = ("err", exc)
                    data = pickle.dumps(payload,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    payload = ("err", RuntimeError(repr(exc)))
                    data = pickle.dumps(payload,
                                        protocol=pickle.HIGHEST_PROTOCOL)
            else:
                data = pickle.dumps(payload,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(data)
            os._exit(0)
        os.close(write_fd)
        children.append((pid, read_fd))

    results = []
    failed = False
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as pipe:
            data = pipe.read()
        os.waitpid(pid, 0)
        if not data:
            failed = True  # child died before reporting
            continue
        status, payload = pickle.loads(data)
        if status != "ok":
            failed = True
            continue
        results.append(payload)

    if failed or len(results) != len(chunks):
        # A worker error (kernel bug, budget blowout, ...) must surface
        # with the exact serial message and partial state — re-run
        # serially on the parent's untouched memory.
        _fork_fallback("worker failure")
        return None

    if not footprints_disjoint([r["footprint"] for r in results]):
        _fork_fallback("overlapping block footprints")
        return None
    total_steps = sum(r["steps"] for r in results)
    if total_steps > budget.remaining:
        # The combined launch would exhaust the budget; only the serial
        # schedule knows the exact step count at which it trips.
        _fork_fallback("step budget hazard")
        return None

    # Safe: merge in block order so every artifact matches serial runs.
    block_cycles: list[float] = []
    for result in results:
        block_cycles.extend(result["cycles"])
        for var, (idx_arr, values) in result["writes"].items():
            memory[var].reshape(-1)[idx_arr] = values
        for field in dataclasses.fields(stats):
            setattr(stats, field.name,
                    getattr(stats, field.name)
                    + result["stats"][field.name])
        if trace is not None and result["trace"] is not None:
            trace.extend(result["trace"])
    budget.charge(total_steps)
    _C_FORK_FORKED.add(1)
    return block_cycles
