"""Parallel execution of independent blocks over a persistent pool.

CUDA blocks of one launch cannot synchronize with each other, so a
kernel whose blocks touch global memory only through disjoint index
ranges is embarrassingly parallel.  :func:`try_parallel_blocks` exploits
that: it partitions the grid into contiguous chunks and fans them out
over a process-wide pool of **persistent** workers — forked once on
first use and reused across launches, so the fan-out engages even at
small job counts where the old fork-per-launch approach lost to fork
overhead.  Each worker runs its chunk against a shipped snapshot of
pre-launch memory while recording its global footprint; the parent —
only if the footprints are pairwise disjoint
(:func:`repro.cuda.race.footprints_disjoint`) — merges the written
ranges, stats, trace events, and step counts back in block order.

Because workers outlive any single launch, launch state is shipped
explicitly instead of being inherited: generator kernels are closures
and do not pickle, so they travel as marshalled code objects plus their
closure cells, defaults, and the referenced globals (recursively for
function-valued cells).  The worker rebuilds the function against
exactly those values — never against its own (potentially stale) module
state — so results cannot drift from the parent's.

Any overlap, unshippable state, worker failure, or step-budget hazard
returns ``None`` instead, and the caller re-executes serially on the
untouched parent memory — the resulting :class:`LaunchResult` is
byte-identical to a serial launch either way, which is the contract the
equivalence tests pin down.
"""

from __future__ import annotations

import atexit
import builtins
import dataclasses
import hashlib
import importlib
import marshal
import os
import pickle
import struct
import threading
import types
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from repro.common.budget import StepBudget
from repro.cuda.race import BlockFootprint, footprints_disjoint
from repro.cuda.trace import Trace
from repro.obs import event as obs_event
from repro.obs.context import TraceContext, current_context, traced_execution
from repro.obs.metrics import counter as _counter
from repro.obs.recorder import get_recorder

# Observability counters (docs/observability.md): attempted fan-outs,
# merged (successful) fan-outs, serial fallbacks, workers ever forked,
# and jobs dispatched to the pool.  Counter bumps inside workers die
# with the worker; everything here runs in the parent.
_C_FORK_ATTEMPTS = _counter("interp.cuda.fork.attempts")
_C_FORK_FORKED = _counter("interp.cuda.fork.forked")
_C_FORK_FALLBACKS = _counter("interp.cuda.fork.fallbacks")
_C_POOL_SPAWNED = _counter("interp.cuda.pool.spawned")
_C_POOL_JOBS = _counter("interp.cuda.pool.jobs")
_C_POOL_PLAN_JOBS = _counter("interp.cuda.pool.plan_jobs")

#: Hard ceiling on resident pool workers.
_MAX_WORKERS = 32


def _fork_fallback(reason: str) -> None:
    """Record one serial re-execution decision (counter + event)."""
    _C_FORK_FALLBACKS.add(1)
    obs_event("cuda.fork.fallback", reason=reason)


def _chunk_blocks(grid_blocks: int, jobs: int) -> list[list[int]]:
    """Split ``range(grid_blocks)`` into ``jobs`` contiguous chunks."""
    jobs = max(1, min(jobs, grid_blocks))
    base, extra = divmod(grid_blocks, jobs)
    chunks, start = [], 0
    for j in range(jobs):
        size = base + (1 if j < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


# --------------------------------------------------------------------- #
# Function shipping (closures do not pickle)
# --------------------------------------------------------------------- #

class _Unshippable(Exception):
    pass


def _global_refs(code, out: set) -> None:
    for name in code.co_names:
        out.add(name)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _global_refs(const, out)


def _ship_value(v, depth: int):
    if isinstance(v, types.FunctionType):
        return ("fn", _ship_function(v, depth + 1))
    if isinstance(v, types.ModuleType):
        return ("mod", v.__name__)
    return ("v", v)


def _ship_function(fn, depth: int = 0) -> dict:
    """Portable spec of a (possibly closure) function: marshalled code
    plus its cells, defaults, and referenced global values."""
    if depth > 4:
        raise _Unshippable("function nesting too deep")
    names: set = set()
    _global_refs(fn.__code__, names)
    refs = [(n, _ship_value(fn.__globals__[n], depth))
            for n in sorted(names) if n in fn.__globals__]
    return {
        "code": marshal.dumps(fn.__code__),
        "name": fn.__name__,
        "globals": refs,
        "cells": [_ship_value(c.cell_contents, depth)
                  for c in (fn.__closure__ or ())],
        "defaults": [_ship_value(v, depth)
                     for v in (fn.__defaults__ or ())],
        "kwdefaults": None if fn.__kwdefaults__ is None else
                      [(k, _ship_value(v, depth))
                       for k, v in fn.__kwdefaults__.items()],
    }


def _build_value(tag):
    kind = tag[0]
    if kind == "v":
        return tag[1]
    if kind == "mod":
        return importlib.import_module(tag[1])
    return _build_function(tag[1])


def _build_function(spec: dict):
    code = marshal.loads(spec["code"])
    g = {"__builtins__": builtins}
    for name, tag in spec["globals"]:
        g[name] = _build_value(tag)
    defaults = tuple(_build_value(t) for t in spec["defaults"]) or None
    cells = tuple(types.CellType(_build_value(t))
                  for t in spec["cells"]) or None
    fn = types.FunctionType(code, g, spec["name"], defaults, cells)
    if spec["kwdefaults"] is not None:
        fn.__kwdefaults__ = {k: _build_value(t)
                             for k, t in spec["kwdefaults"]}
    return fn


# --------------------------------------------------------------------- #
# Frame protocol (length-prefixed pickles over pipes)
# --------------------------------------------------------------------- #

def _write_frame(fd: int, data: bytes) -> None:
    buf = struct.pack(">Q", len(data)) + data
    view = memoryview(buf)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _read_exact(fd: int, n: int) -> bytes | None:
    parts = []
    while n:
        chunk = os.read(fd, n)
        if not chunk:
            return None
        parts.append(chunk)
        n -= len(chunk)
    return b"".join(parts)


def _read_frame(fd: int) -> bytes | None:
    header = _read_exact(fd, 8)
    if header is None:
        return None
    (length,) = struct.unpack(">Q", header)
    return _read_exact(fd, length)


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #

#: Worker-side interpreter cache: rebuilding a device discards its
#: memoized cost tables and contexts, so keep one per parameter set.
_worker_cudas: dict = {}


def _worker_cuda(device_key, fast: bool):
    from repro.cuda.interpreter import Cuda
    try:
        key = (device_key, fast)
        cuda = _worker_cudas.get(key)
    except TypeError:  # unhashable parameter set: rebuild every job
        key = cuda = None
    if cuda is None:
        cls, spec, params, atomics = device_key
        cuda = Cuda(cls(spec, params, atomics), detect_races=False,
                    fast=fast)
        if key is not None:
            _worker_cudas[key] = cuda
    return cuda


def _run_job(job: dict) -> dict:
    """Worker-side: rebuild the launch state and run one block chunk.

    A job may carry a wire-format trace context; the chunk then runs
    inside a ``pool``-role span whose records ship back in the result
    so the parent can stitch them into its own trace.  Untraced jobs
    take the identical code path with zero span machinery.
    """
    from repro.cuda.interpreter import LaunchStats
    tctx = TraceContext.from_wire(job.get("trace"))
    cuda = _worker_cuda(job["device"], job["fast"])
    device = cuda.device
    kernel = _build_function(job["kernel"])
    launch = job["launch"]
    ctx = device.context(launch)
    memory = job["memory"]
    shared_decls = job["shared_decls"]
    stats = LaunchStats()
    budget = StepBudget(job["budget_limit"], hint="runaway kernel?")
    trace = Trace() if job["do_trace"] else None
    footprint = BlockFootprint()
    cycles, spans = traced_execution(
        tctx, "pool", "cuda.pool.chunk",
        lambda: [cuda._run_block(kernel, launch, ctx, block_idx, memory,
                                 shared_decls, stats, budget, trace,
                                 None, footprint)
                 for block_idx in job["chunk"]],
        blocks=len(job["chunk"]))
    writes = {}
    for var, idxs in footprint.writes.items():
        flat = memory[var].reshape(-1)
        idx_arr = np.array(sorted(idxs), dtype=np.intp)
        writes[var] = (idx_arr, flat[idx_arr].copy())
    result = {
        "cycles": cycles,
        "stats": dataclasses.asdict(stats),
        "footprint": footprint,
        "writes": writes,
        "trace": trace,
        "steps": budget.used,
    }
    if spans:
        result["spans"] = spans
    return result


#: Worker-side plan cache: lifted plan lists shipped once per content
#: key and replayed across launches; bounded LRU so a long-lived worker
#: sweeping many kernels cannot grow without limit.
_worker_plans: OrderedDict = OrderedDict()
_WORKER_PLAN_CAP = 64


def _run_plan_job(job: dict) -> dict:
    """Worker-side: replay cached lifted plans over one block chunk.

    Everything but the memory bytes is static per plan (cycles, stats,
    steps), so only the written elements travel back; the parent applies
    plan stats/cycles/budget itself.
    """
    from repro.cuda.interpreter import LaunchStats
    key = job["ship_key"]
    plans = _worker_plans.get(key)
    if plans is None:
        blob = job["plans"]
        if blob is None:
            # The parent believed this worker already held the plans
            # (e.g. state lost across an unnoticed respawn): surfacing
            # an error discards the pool and the launch re-runs serially.
            raise RuntimeError("plan cache miss for shipped key")
        plans = pickle.loads(blob)
        _worker_plans[key] = plans
        while len(_worker_plans) > _WORKER_PLAN_CAP:
            _worker_plans.popitem(last=False)
    else:
        _worker_plans.move_to_end(key)
    memory = job["memory"]
    shared_decls = job["shared_decls"]
    stats = LaunchStats()  # throwaway: parent applies plan.stats
    written: dict[str, set] = {}

    def replay() -> None:
        for block_idx in job["chunk"]:
            plan = plans[block_idx]
            plan.execute(memory, shared_decls, stats)
            for var, idxs in plan.footprint().writes.items():
                written.setdefault(var, set()).update(idxs)

    _, spans = traced_execution(
        TraceContext.from_wire(job.get("trace")), "pool",
        "cuda.pool.plan_chunk", replay, blocks=len(job["chunk"]))
    writes = {}
    for var, idxs in written.items():
        flat = memory[var].reshape(-1)
        idx_arr = np.array(sorted(idxs), dtype=np.intp)
        writes[var] = (idx_arr, flat[idx_arr].copy())
    result = {"writes": writes}
    if spans:
        result["spans"] = spans
    return result


def _worker_main(read_fd: int, write_fd: int) -> None:
    """Worker loop: frames in, frames out, until EOF/quit."""
    while True:
        frame = _read_frame(read_fd)
        if frame is None:
            os._exit(0)
        try:
            request = pickle.loads(frame)
            if request[0] == "quit":
                os._exit(0)
            if request[0] == "plan_job":
                payload = ("ok", _run_plan_job(request[1]))
            else:
                payload = ("ok", _run_job(request[1]))
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                data = pickle.dumps(("err", repr(exc)),
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                data = pickle.dumps(("err", "unreportable worker error"),
                                    protocol=pickle.HIGHEST_PROTOCOL)
        try:
            _write_frame(write_fd, data)
        except OSError:
            os._exit(0)


# --------------------------------------------------------------------- #
# Parent side: the persistent pool
# --------------------------------------------------------------------- #

class _PoolError(Exception):
    pass


class _Worker:
    __slots__ = ("pid", "to_child", "from_child", "alive", "plan_digests")

    def __init__(self, pid: int, to_child: int, from_child: int) -> None:
        self.pid = pid
        self.to_child = to_child
        self.from_child = from_child
        self.alive = True
        #: Plan content keys this worker has been shipped (so repeat
        #: launches send only the chunk + memory, not the plans).
        self.plan_digests: set[bytes] = set()


class _WorkerPool:
    """Process-wide pool of forked block-execution workers.

    Workers are forked lazily on first use and reused across launches.
    A generation guard on :func:`os.getpid` resets the pool in forked
    children (e.g. the measurement service's workers), which inherit
    the parent's pipe fds but must never share its workers.
    """

    def __init__(self) -> None:
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def _spawn(self) -> _Worker:
        job_r, job_w = os.pipe()
        res_r, res_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(job_w)
            os.close(res_r)
            try:
                _worker_main(job_r, res_w)
            finally:
                os._exit(0)
        os.close(job_r)
        os.close(res_w)
        _C_POOL_SPAWNED.add(1)
        return _Worker(pid, job_w, res_r)

    def _reap(self, worker: _Worker) -> None:
        worker.alive = False
        for fd in (worker.to_child, worker.from_child):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.waitpid(worker.pid, os.WNOHANG)
        except ChildProcessError:
            pass

    def _ensure(self, n: int) -> list[_Worker]:
        if os.getpid() != self._pid:
            # Forked child: the inherited workers belong to the parent.
            self._workers = []
            self._pid = os.getpid()
        self._workers = [w for w in self._workers if w.alive]
        while len(self._workers) < min(n, _MAX_WORKERS):
            self._workers.append(self._spawn())
        return self._workers

    def run_jobs(self, frames: list[bytes]) -> list[dict]:
        """Dispatch one pre-pickled job per worker (in waves when jobs
        outnumber the worker ceiling); raises :class:`_PoolError` on any
        worker failure.

        Any failure discards the whole pool: a dead sibling usually
        means the machine state that killed one worker (OOM, signal)
        hit its peers too, and probing them one launch at a time would
        cost a serial fallback per corpse."""
        with self._lock:
            try:
                return self._run_jobs_locked(frames)
            except _PoolError:
                for worker in self._workers:
                    self._reap(worker)
                self._workers = []
                raise

    def _run_jobs_locked(self, frames: list[bytes]) -> list[dict]:
        workers = self._ensure(len(frames))
        if not workers:
            raise _PoolError("no workers")
        results: list[dict] = []
        for start in range(0, len(frames), len(workers)):
            wave = frames[start:start + len(workers)]
            active = workers[:len(wave)]
            for worker, frame in zip(active, wave):
                try:
                    _write_frame(worker.to_child, frame)
                except OSError as exc:
                    raise _PoolError(f"worker write: {exc}") from exc
            for worker in active:
                data = _read_frame(worker.from_child)
                if data is None:
                    raise _PoolError("worker died")
                status, payload = pickle.loads(data)
                if status != "ok":
                    raise _PoolError(f"worker error: {payload}")
                results.append(payload)
            _C_POOL_JOBS.add(len(wave))
        return results

    def run_plan_jobs(self, ship_key: bytes, blob: bytes,
                      jobs: list[dict]) -> list[dict]:
        """Dispatch one lifted-plan chunk per worker.

        The pickled plan list (``blob``, content-keyed by ``ship_key``)
        is included only for workers that have not seen it yet; they
        cache it, so steady-state launches ship just the chunk indices
        and memory.  Failure semantics match :meth:`run_jobs`: any
        worker error discards the whole pool and raises
        :class:`_PoolError`.
        """
        with self._lock:
            try:
                return self._run_plan_jobs_locked(ship_key, blob, jobs)
            except _PoolError:
                for worker in self._workers:
                    self._reap(worker)
                self._workers = []
                raise

    def _run_plan_jobs_locked(self, ship_key: bytes, blob: bytes,
                              jobs: list[dict]) -> list[dict]:
        workers = self._ensure(len(jobs))
        if not workers:
            raise _PoolError("no workers")
        results: list[dict] = []
        for start in range(0, len(jobs), len(workers)):
            wave = jobs[start:start + len(workers)]
            active = workers[:len(wave)]
            for worker, job in zip(active, wave):
                send = dict(job, ship_key=ship_key)
                if ship_key in worker.plan_digests:
                    send["plans"] = None
                else:
                    send["plans"] = blob
                    worker.plan_digests.add(ship_key)
                frame = pickle.dumps(("plan_job", send),
                                     protocol=pickle.HIGHEST_PROTOCOL)
                try:
                    _write_frame(worker.to_child, frame)
                except OSError as exc:
                    raise _PoolError(f"worker write: {exc}") from exc
            for worker in active:
                data = _read_frame(worker.from_child)
                if data is None:
                    raise _PoolError("worker died")
                status, payload = pickle.loads(data)
                if status != "ok":
                    raise _PoolError(f"worker error: {payload}")
                results.append(payload)
            _C_POOL_PLAN_JOBS.add(len(wave))
        return results

    def shutdown(self) -> None:
        """Close every worker (atexit; also usable from tests)."""
        with self._lock:
            if os.getpid() != self._pid:
                self._workers = []
                return
            for worker in self._workers:
                if not worker.alive:
                    continue
                try:
                    _write_frame(worker.to_child,
                                 pickle.dumps(("quit", None)))
                except OSError:
                    pass
                self._reap(worker)
                try:
                    os.waitpid(worker.pid, 0)
                except ChildProcessError:
                    pass
            self._workers = []


#: The process-wide pool every launch shares.
POOL = _WorkerPool()
atexit.register(POOL.shutdown)

_FORK_PER_LAUNCH: list[bool] = []


@contextmanager
def fork_per_launch():
    """Context: spawn a throwaway worker pool for every fan-out instead
    of reusing :data:`POOL` — the pre-pool fork-per-launch regime, kept
    as the benchmark baseline for the ``parallel_blocks`` row."""
    _FORK_PER_LAUNCH.append(True)
    try:
        yield
    finally:
        _FORK_PER_LAUNCH.pop()


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

def _merge_remote_spans(results: list[dict]) -> None:
    """Stitch pool-worker span buffers into the installed recorder."""
    recorder = get_recorder()
    if recorder is None:
        return
    for result in results:
        spans = result.get("spans")
        if spans:
            recorder.add_remote_spans(spans)


def try_parallel_blocks(cuda, kernel, launch, ctx,
                        memory: dict[str, np.ndarray],
                        shared_decls, stats, budget: StepBudget,
                        trace: Trace | None, block_jobs: int
                        ) -> list[float] | None:
    """Fan the launch's blocks out over the persistent worker pool.

    Returns:
        Per-block cycle list (with ``memory``/``stats``/``trace``/
        ``budget`` merged in block order), or ``None`` when the parallel
        attempt cannot guarantee a byte-identical result — the caller
        then runs the ordinary serial loop on the untouched parent
        state.
    """
    _C_FORK_ATTEMPTS.add(1)
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
        _fork_fallback("platform without os.fork")
        return None

    chunks = _chunk_blocks(launch.grid_blocks, block_jobs)
    if len(chunks) < 2:
        _fork_fallback("fewer than 2 chunks")
        return None

    device = cuda.device
    # Ship a child trace context per chunk only when there is both a
    # context to propagate and a recorder to stitch the returned spans
    # into — the untraced frame stays byte-identical to before.
    tctx = current_context()
    ship_trace = tctx is not None and get_recorder() is not None
    try:
        base = {
            "device": (type(device), device.spec, device.params,
                       device.atomics),
            "fast": cuda.fast,
            "kernel": _ship_function(kernel),
            "launch": launch,
            "memory": memory,
            "shared_decls": shared_decls,
            "do_trace": trace is not None,
            "budget_limit": budget.remaining,
        }
        jobs = [dict(base, chunk=chunk) for chunk in chunks]
        if ship_trace:
            for job in jobs:
                job["trace"] = tctx.child().to_wire()
        frames = [pickle.dumps(("job", job),
                               protocol=pickle.HIGHEST_PROTOCOL)
                  for job in jobs]
    except Exception as exc:  # unpicklable/unshippable launch state
        _fork_fallback(f"unshippable launch state: {type(exc).__name__}")
        return None

    try:
        if _FORK_PER_LAUNCH:
            pool = _WorkerPool()
            try:
                results = pool.run_jobs(frames)
            finally:
                pool.shutdown()
        else:
            results = POOL.run_jobs(frames)
    except _PoolError as exc:
        # A worker error (kernel bug, budget blowout, ...) must surface
        # with the exact serial message and partial state — re-run
        # serially on the parent's untouched memory.
        _fork_fallback(f"worker failure: {exc}")
        return None

    if not footprints_disjoint([r["footprint"] for r in results]):
        _fork_fallback("overlapping block footprints")
        return None
    total_steps = sum(r["steps"] for r in results)
    if total_steps > budget.remaining:
        # The combined launch would exhaust the budget; only the serial
        # schedule knows the exact step count at which it trips.
        _fork_fallback("step budget hazard")
        return None

    _merge_remote_spans(results)
    # Safe: merge in block order so every artifact matches serial runs.
    block_cycles: list[float] = []
    for result in results:
        block_cycles.extend(result["cycles"])
        for var, (idx_arr, values) in result["writes"].items():
            memory[var].reshape(-1)[idx_arr] = values
        for field in dataclasses.fields(stats):
            setattr(stats, field.name,
                    getattr(stats, field.name)
                    + result["stats"][field.name])
        if trace is not None and result["trace"] is not None:
            trace.extend(result["trace"])
    budget.charge(total_steps)
    _C_FORK_FORKED.add(1)
    return block_cycles


def try_parallel_plans(pset, memory: dict[str, np.ndarray],
                       shared_decls, stats, budget: StepBudget,
                       block_jobs: int) -> list[float] | None:
    """Fan lifted block plans out over the persistent worker pool.

    Everything but the written bytes is known before dispatch — the
    plans' cycles, stats deltas, and step counts are static, and their
    footprints are derivable without execution — so disjointness and
    the step budget are verified *up front*, and each job ships only
    its chunk's arrays.  Returns per-block cycles with ``memory``/
    ``stats``/``budget`` merged, or ``None`` when the attempt cannot
    guarantee a byte-identical result (the caller replays the plans
    serially on the untouched parent memory).
    """
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
        return None
    plans = pset.plans
    chunks = _chunk_blocks(len(plans), block_jobs)
    if len(chunks) < 2:
        return None
    total_steps = sum(plan.steps for plan in plans)
    if total_steps > budget.remaining:
        # Only the serial schedule knows the exact step at which the
        # budget trips.
        obs_event("cuda.plan.fallback", reason="step budget hazard")
        return None
    chunk_fps = []
    for chunk in chunks:
        fp = BlockFootprint()
        for block_idx in chunk:
            bf = plans[block_idx].footprint()
            for var, idxs in bf.reads.items():
                fp.reads.setdefault(var, set()).update(idxs)
            for var, idxs in bf.writes.items():
                fp.writes.setdefault(var, set()).update(idxs)
        chunk_fps.append(fp)
    if not footprints_disjoint(chunk_fps):
        obs_event("cuda.plan.fallback", reason="overlapping footprints")
        return None
    if pset.blob is None:
        try:
            pset.blob = pickle.dumps(plans,
                                     protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            obs_event("cuda.plan.fallback", reason="unpicklable plans")
            return None
        pset.ship_key = hashlib.sha256(pset.blob).digest()
    tctx = current_context()
    ship_trace = tctx is not None and get_recorder() is not None
    jobs = []
    for chunk, fp in zip(chunks, chunk_fps):
        needed = set(fp.reads) | set(fp.writes)
        job = {
            "chunk": chunk,
            "memory": {var: memory[var] for var in needed},
            "shared_decls": shared_decls,
        }
        if ship_trace:
            job["trace"] = tctx.child().to_wire()
        jobs.append(job)
    try:
        if _FORK_PER_LAUNCH:
            pool = _WorkerPool()
            try:
                results = pool.run_plan_jobs(pset.ship_key, pset.blob,
                                             jobs)
            finally:
                pool.shutdown()
        else:
            results = POOL.run_plan_jobs(pset.ship_key, pset.blob, jobs)
    except _PoolError as exc:
        obs_event("cuda.plan.fallback", reason=f"worker failure: {exc}")
        return None

    _merge_remote_spans(results)
    # Disjointness was proven pre-dispatch, so merge order is free; use
    # chunk order anyway for determinism.
    for result in results:
        for var, (idx_arr, values) in result["writes"].items():
            memory[var].reshape(-1)[idx_arr] = values
    cycles: list[float] = []
    for plan in plans:
        cycles.append(plan.cycles)
        for name, delta in plan.stats:
            setattr(stats, name, getattr(stats, name) + delta)
    budget.charge(total_steps)
    return cycles
