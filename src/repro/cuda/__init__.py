"""CUDA API layer: kernels over the simulated GPU.

Kernels are Python generator functions taking a :class:`KernelThread` and
yielding requests (:mod:`repro.cuda.requests`); the warp-synchronous
interpreter (:mod:`repro.cuda.interpreter`) schedules warps in lockstep,
executes warp collectives (shuffles, votes, reductions) across lanes,
serializes atomics through the atomic-unit model, and accounts cycles per
warp/block/SM, including occupancy waves and per-block launch overhead —
the effect that makes the persistent-threads Reduction 5 of Listing 1 the
fastest.

Example::

    def kernel(t):
        i = t.global_id
        if i < n:
            v = yield t.global_read("data", i)
            yield t.atomic_max("result", 0, v)

    cuda = Cuda(SYSTEM3_GPU)
    out = cuda.launch(kernel, LaunchConfig(grid, block),
                      globals_={"data": data, "result": result})
"""

from repro.cuda.interpreter import Cuda, KernelThread, LaunchResult
from repro.cuda import requests

__all__ = ["Cuda", "KernelThread", "LaunchResult", "requests"]
