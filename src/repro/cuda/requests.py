"""Request objects yielded by CUDA kernel threads.

Each request corresponds to one CUDA primitive or memory access.  Warp
collectives (shuffles, votes, ``__reduce_max_sync``) are executed for all
participating lanes of the warp at once; everything else executes per
lane, in lane order, under SIMT lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ops import Scope


@dataclass(frozen=True)
class Request:
    """Base class for everything a kernel thread may yield."""


@dataclass(frozen=True)
class Syncthreads(Request):
    """``__syncthreads()`` — block-wide barrier."""


@dataclass(frozen=True)
class SyncthreadsCount(Syncthreads):
    """``__syncthreads_count()`` — barrier producing the block-wide count
    of true predicates to every thread."""

    pred: bool = False


@dataclass(frozen=True)
class SyncthreadsAnd(Syncthreads):
    """``__syncthreads_and()`` — barrier producing the AND of all
    predicates."""

    pred: bool = False


@dataclass(frozen=True)
class SyncthreadsOr(Syncthreads):
    """``__syncthreads_or()`` — barrier producing the OR of all
    predicates."""

    pred: bool = False


@dataclass(frozen=True)
class GridSync(Request):
    """``grid.sync()`` — cooperative barrier across every block of one
    device's grid (multi-device runtime only)."""


@dataclass(frozen=True)
class MultiGridSync(Request):
    """``multi_grid.sync()`` — cooperative barrier across every block on
    every participating device; publishes pending system-memory writes."""


@dataclass(frozen=True)
class Syncwarp(Request):
    """``__syncwarp()`` — warp-wide barrier."""


@dataclass(frozen=True)
class Threadfence(Request):
    """``__threadfence*()`` family; scope picks the variant."""

    scope: Scope = Scope.DEVICE


@dataclass(frozen=True)
class Alu(Request):
    """``n`` simple arithmetic instructions (used to model loop work)."""

    n: int = 1


@dataclass(frozen=True)
class MemoryRequest(Request):
    """A request that touches ``var[idx]`` (global or block-shared)."""

    var: str
    idx: int


@dataclass(frozen=True)
class GlobalRead(MemoryRequest):
    """Global-memory load; produces the value."""


@dataclass(frozen=True)
class GlobalWrite(MemoryRequest):
    """Global-memory store."""

    value: object = 0


@dataclass(frozen=True)
class SystemRead(MemoryRequest):
    """System-memory (host/peer-visible) load; produces the value.

    Reads the canonical system array plus the *issuing device's own*
    unpublished writes; peers' plain writes become visible only after
    they publish (system-scope fence, multi-grid barrier, or kernel
    completion).
    """


@dataclass(frozen=True)
class SystemWrite(MemoryRequest):
    """System-memory store, buffered device-side until published."""

    value: object = 0


@dataclass(frozen=True)
class SharedRead(MemoryRequest):
    """Block-shared-memory load; produces the value."""


@dataclass(frozen=True)
class SharedWrite(MemoryRequest):
    """Block-shared-memory store."""

    value: object = 0


@dataclass(frozen=True)
class AtomicRmw(MemoryRequest):
    """Base of the atomic read-modify-write family.

    ``var`` may name a global array or a block-shared one; atomics on
    shared memory are block-scoped by construction.  ``scope`` marks the
    ``_block``-suffixed variants on global memory.
    """

    scope: Scope = Scope.DEVICE


@dataclass(frozen=True)
class AtomicAdd(AtomicRmw):
    """``atomicAdd()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicSub(AtomicRmw):
    """``atomicSub()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicAnd(AtomicRmw):
    """``atomicAnd()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicOr(AtomicRmw):
    """``atomicOr()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicXor(AtomicRmw):
    """``atomicXor()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicMax(AtomicRmw):
    """``atomicMax()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicMin(AtomicRmw):
    """``atomicMin()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicInc(AtomicRmw):
    """``atomicInc()``: ``x = (x >= value) ? 0 : x + 1``; produces the
    old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicDec(AtomicRmw):
    """``atomicDec()``: ``x = (x == 0 || x > value) ? value : x - 1``;
    produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class AtomicCas(AtomicRmw):
    """``atomicCAS()``; swaps in ``value`` if the current value equals
    ``compare``; produces the old value."""

    compare: object = 0
    value: object = 0


@dataclass(frozen=True)
class AtomicExch(AtomicRmw):
    """``atomicExch()``; produces the old value."""

    value: object = 0


@dataclass(frozen=True)
class WarpCollective(Request):
    """Base of the warp-collective family: all live lanes of the warp must
    yield a collective of the same type in the same step."""


@dataclass(frozen=True)
class ShflSync(WarpCollective):
    """``__shfl_sync()`` — produce ``src_lane``'s value to every lane."""

    value: object = 0
    src_lane: int = 0


@dataclass(frozen=True)
class ShflUpSync(WarpCollective):
    """``__shfl_up_sync()`` — lane ``l`` receives lane ``l - delta``."""

    value: object = 0
    delta: int = 1


@dataclass(frozen=True)
class ShflDownSync(WarpCollective):
    """``__shfl_down_sync()`` — lane ``l`` receives lane ``l + delta``."""

    value: object = 0
    delta: int = 1


@dataclass(frozen=True)
class ShflXorSync(WarpCollective):
    """``__shfl_xor_sync()`` — lane ``l`` receives lane ``l ^ lane_mask``."""

    value: object = 0
    lane_mask: int = 1


@dataclass(frozen=True)
class VoteAll(WarpCollective):
    """``__all_sync()`` — produces True when every lane's pred is true."""

    pred: bool = False


@dataclass(frozen=True)
class VoteAny(WarpCollective):
    """``__any_sync()`` — produces True when any lane's pred is true."""

    pred: bool = False


@dataclass(frozen=True)
class Ballot(WarpCollective):
    """``__ballot_sync()`` — produces the 32-bit mask of true preds."""

    pred: bool = False


@dataclass(frozen=True)
class MatchAnySync(WarpCollective):
    """``__match_any_sync()`` (CC >= 7.0) — produces the mask of lanes
    whose value equals this lane's value."""

    value: object = 0


@dataclass(frozen=True)
class MatchAllSync(WarpCollective):
    """``__match_all_sync()`` (CC >= 7.0) — produces the full mask when
    every lane's value matches, else 0."""

    value: object = 0


@dataclass(frozen=True)
class Activemask(Request):
    """``__activemask()`` — the mask of currently active warp lanes.

    A query, not a synchronization: it executes immediately for the
    issuing lane.
    """


@dataclass(frozen=True)
class ReduceMaxSync(WarpCollective):
    """``__reduce_max_sync()`` — produces the warp maximum (CC >= 8.0)."""

    value: object = 0
