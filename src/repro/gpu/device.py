"""The GPU device: spec + cost model behind the machine interface.

A :class:`GpuDevice` implements the same interface the measurement engine
uses for :class:`repro.cpu.machine.CpuMachine`, with time measured in clock
cycles (the paper reads ``clock64()`` on the GPU) and near-deterministic
timing: "there are no background processes or OS, and we directly read the
cycle counter.  Thus, many of the GPU tests yield the exact same runtime"
(Section IV).  The one noisy primitive is ``__threadfence_system()``, whose
CPU round trip crosses the PCIe bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.units import throughput_from_cycles
from repro.compiler.ops import Op, PrimitiveKind
from repro.gpu.atomic_units import AtomicUnitModel
from repro.gpu.costs import GpuCostModel, GpuCostParams
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.spec import GpuSpec, LaunchConfig


@dataclass(frozen=True)
class GpuRunContext:
    """Resolved execution context for one CUDA measurement configuration.

    Attributes:
        launch: Grid/block dimensions.
        occ: Occupancy of the busiest SM under this launch.
    """

    launch: LaunchConfig
    occ: OccupancyResult
    #: Per-context op price memo (occupancy pricing is deterministic per
    #: launch, so each op needs pricing once per context).
    _cost_cache: dict = field(repr=False, compare=False,
                              default_factory=dict)


class GpuDevice:
    """A simulated NVIDIA GPU (one of Table I's devices, or custom)."""

    time_unit = "cycles"

    #: Per-outer-iteration loop bookkeeping cost (cycles); amortized over
    #: the unroll factor and cancelled by the baseline/test subtraction.
    loop_overhead = 2.0

    #: One-time cold-start cost (cycles) of a timed kernel section: first
    #: loads miss in L2.  The warm-up loop pays this before ``clock64()``
    #: is read (§III).
    cold_start_cost = 25_000.0

    #: Per-op noise (cycles) on system-scope fences from PCIe traffic.
    _PCIE_NOISE_CYCLES = 40.0

    def __init__(self, spec: GpuSpec, params: GpuCostParams | None = None,
                 atomics: AtomicUnitModel | None = None) -> None:
        self.spec = spec
        self.params = params or GpuCostParams()
        self.atomics = atomics or AtomicUnitModel()
        self.cost_model = GpuCostModel(spec, self.params, self.atomics)
        self._context_cache: dict[LaunchConfig, GpuRunContext] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clock_ghz(self) -> float:
        return self.spec.clock_ghz

    def context(self, launch: LaunchConfig) -> GpuRunContext:
        """Resolve a launch into its occupancy context (cached: contexts
        are pure functions of the launch on a given device)."""
        cached = self._context_cache.get(launch)
        if cached is not None:
            return cached
        occ = occupancy(launch.grid_blocks, launch.block_threads,
                        self.spec.sm_count, self.spec.max_threads_per_sm,
                        self.spec.max_blocks_per_sm)
        ctx = GpuRunContext(launch=launch, occ=occ)
        self._context_cache[launch] = ctx
        return ctx

    def op_cost(self, op: Op, ctx: GpuRunContext) -> float:
        """Deterministic steady-state cost of one op (cycles)."""
        # Keyed by (device, op): a context may be priced by several
        # devices (e.g. the aggregation ablation's paired devices).
        cached = ctx._cost_cache.get((self, op))
        if cached is None:
            cached = self.cost_model.op_cost_cycles(op, ctx.launch, ctx.occ)
            ctx._cost_cache[(self, op)] = cached
        return cached

    def atomic_issue_cost(self, op: Op, ctx: GpuRunContext,
                          n_addresses: int, n_lanes: int,
                          issuing_warps: int,
                          resident_blocks: int) -> float:
        """Memoized :meth:`GpuCostModel.dynamic_atomic_cost`.

        The kernel interpreter prices every atomic warp pass from its
        observed issue shape; the shape space is tiny (a handful of
        address/lane/warp combinations per kernel) while the pass count
        is huge, so the price is memoized per context like
        :meth:`op_cost`.
        """
        key = (self, op, n_addresses, n_lanes, issuing_warps,
               resident_blocks)
        cached = ctx._cost_cache.get(key)
        if cached is None:
            cached = self.cost_model.dynamic_atomic_cost(
                op, n_addresses=n_addresses, n_lanes=n_lanes,
                issuing_warps=issuing_warps,
                resident_blocks=resident_blocks)
            ctx._cost_cache[key] = cached
        return cached

    def body_cost(self, body: tuple[Op, ...] | list[Op],
                  ctx: GpuRunContext) -> float:
        """Cost of one unrolled loop-body iteration (cycles)."""
        # Whole-body memo, mirroring the CPU machine: one lookup per
        # sweep point instead of a per-op sum (tuples only).
        if type(body) is tuple:
            cached = ctx._cost_cache.get((self, body))
            if cached is None:
                cached = sum(self.op_cost(op, ctx) for op in body)
                ctx._cost_cache[(self, body)] = cached
            return cached
        return sum(self.op_cost(op, ctx) for op in body)

    def run_noise(self, rng: np.random.Generator, ctx: GpuRunContext,
                  body: tuple[Op, ...] = (),
                  base_cost: float = 0.0) -> float:
        """Per-op noise (cycles) for one run.

        Zero for on-device primitives (deterministic cycle counter); erratic
        for bodies containing a system-scope fence (Section V-B3: "the
        behavior is more erratic since it involves communication with the
        CPU across the PCIe bus").
        """
        del ctx, base_cost
        if any(op.kind is PrimitiveKind.THREADFENCE_SYSTEM for op in body):
            return float(rng.exponential(self._PCIE_NOISE_CYCLES))
        return 0.0

    def run_noise_batch(self, rng: np.random.Generator, ctx: GpuRunContext,
                        bodies: tuple[tuple[Op, ...], ...],
                        base_costs: tuple[float, ...]) -> list[float]:
        """Batched :meth:`run_noise`, stream-identical to scalar calls
        (draws only for system-fence bodies, in body order).  Subclasses
        overriding :meth:`run_noise` are routed through their override."""
        if type(self).run_noise is not GpuDevice.run_noise:
            return [self.run_noise(rng, ctx, body, cost)
                    for body, cost in zip(bodies, base_costs)]
        del ctx, base_costs
        exponential = rng.exponential
        return [float(exponential(self._PCIE_NOISE_CYCLES))
                if any(op.kind is PrimitiveKind.THREADFENCE_SYSTEM
                       for op in body) else 0.0
                for body in bodies]

    def noise_sampler(self, ctx: GpuRunContext,
                      bodies: tuple[tuple[Op, ...], ...],
                      base_costs: tuple[float, ...]):
        """A compiled per-attempt sampler for one sweep point, or
        ``None`` when the engine must fall back to per-sample calls
        (subclasses overriding :meth:`run_noise`)."""
        if type(self).run_noise is not GpuDevice.run_noise:
            return None
        del ctx, base_costs
        noisy = tuple(any(op.kind is PrimitiveKind.THREADFENCE_SYSTEM
                          for op in body) for body in bodies)
        scale = self._PCIE_NOISE_CYCLES
        if len(noisy) == 2:  # the engine's baseline/test pair
            noisy_b, noisy_t = noisy

            def sample_pair(rng: np.random.Generator
                            ) -> tuple[float, float]:
                return (float(rng.exponential(scale)) if noisy_b else 0.0,
                        float(rng.exponential(scale)) if noisy_t else 0.0)

            def bind_pair(rng: np.random.Generator):
                exponential = rng.exponential

                def sample() -> tuple[float, float]:
                    return (float(exponential(scale)) if noisy_b else 0.0,
                            float(exponential(scale)) if noisy_t else 0.0)

                return sample

            sample_pair.bind = bind_pair  # type: ignore[attr-defined]
            return sample_pair

        def sample(rng: np.random.Generator) -> tuple[float, ...]:
            return tuple(float(rng.exponential(scale)) if flag else 0.0
                         for flag in noisy)

        return sample

    def noise_free(self, body: tuple[Op, ...] = ()) -> bool:
        """True when runs of ``body`` are exactly deterministic (every
        on-device primitive; only system-scope fences draw noise).  A
        subclass with its own :meth:`run_noise` is never assumed
        deterministic."""
        if type(self).run_noise is not GpuDevice.run_noise:
            return False
        return not any(op.kind is PrimitiveKind.THREADFENCE_SYSTEM
                       for op in body)

    def throughput(self, per_op_time: float) -> float:
        """Per-thread ops/s from per-op cycles (1 / cycles / clock period)."""
        return throughput_from_cycles(per_op_time, self.spec.clock_ghz)

    def with_atomics(self, atomics: AtomicUnitModel) -> "GpuDevice":
        """Copy of this device with a different atomic-unit model
        (used by the warp-aggregation ablation)."""
        return GpuDevice(self.spec, self.params, atomics)

    def describe(self) -> dict[str, object]:
        """Table I row for this device."""
        return self.spec.describe()
