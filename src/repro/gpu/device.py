"""The GPU device: spec + cost model behind the machine interface.

A :class:`GpuDevice` implements the same interface the measurement engine
uses for :class:`repro.cpu.machine.CpuMachine`, with time measured in clock
cycles (the paper reads ``clock64()`` on the GPU) and near-deterministic
timing: "there are no background processes or OS, and we directly read the
cycle counter.  Thus, many of the GPU tests yield the exact same runtime"
(Section IV).  The one noisy primitive is ``__threadfence_system()``, whose
CPU round trip crosses the PCIe bus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import throughput_from_cycles
from repro.compiler.ops import Op, PrimitiveKind
from repro.gpu.atomic_units import AtomicUnitModel
from repro.gpu.costs import GpuCostModel, GpuCostParams
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.spec import GpuSpec, LaunchConfig


@dataclass(frozen=True)
class GpuRunContext:
    """Resolved execution context for one CUDA measurement configuration.

    Attributes:
        launch: Grid/block dimensions.
        occ: Occupancy of the busiest SM under this launch.
    """

    launch: LaunchConfig
    occ: OccupancyResult


class GpuDevice:
    """A simulated NVIDIA GPU (one of Table I's devices, or custom)."""

    time_unit = "cycles"

    #: Per-outer-iteration loop bookkeeping cost (cycles); amortized over
    #: the unroll factor and cancelled by the baseline/test subtraction.
    loop_overhead = 2.0

    #: One-time cold-start cost (cycles) of a timed kernel section: first
    #: loads miss in L2.  The warm-up loop pays this before ``clock64()``
    #: is read (§III).
    cold_start_cost = 25_000.0

    #: Per-op noise (cycles) on system-scope fences from PCIe traffic.
    _PCIE_NOISE_CYCLES = 40.0

    def __init__(self, spec: GpuSpec, params: GpuCostParams | None = None,
                 atomics: AtomicUnitModel | None = None) -> None:
        self.spec = spec
        self.params = params or GpuCostParams()
        self.atomics = atomics or AtomicUnitModel()
        self.cost_model = GpuCostModel(spec, self.params, self.atomics)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clock_ghz(self) -> float:
        return self.spec.clock_ghz

    def context(self, launch: LaunchConfig) -> GpuRunContext:
        """Resolve a launch into its occupancy context."""
        occ = occupancy(launch.grid_blocks, launch.block_threads,
                        self.spec.sm_count, self.spec.max_threads_per_sm,
                        self.spec.max_blocks_per_sm)
        return GpuRunContext(launch=launch, occ=occ)

    def op_cost(self, op: Op, ctx: GpuRunContext) -> float:
        """Deterministic steady-state cost of one op (cycles)."""
        return self.cost_model.op_cost_cycles(op, ctx.launch, ctx.occ)

    def body_cost(self, body: tuple[Op, ...] | list[Op],
                  ctx: GpuRunContext) -> float:
        """Cost of one unrolled loop-body iteration (cycles)."""
        return sum(self.op_cost(op, ctx) for op in body)

    def run_noise(self, rng: np.random.Generator, ctx: GpuRunContext,
                  body: tuple[Op, ...] = (),
                  base_cost: float = 0.0) -> float:
        """Per-op noise (cycles) for one run.

        Zero for on-device primitives (deterministic cycle counter); erratic
        for bodies containing a system-scope fence (Section V-B3: "the
        behavior is more erratic since it involves communication with the
        CPU across the PCIe bus").
        """
        del ctx, base_cost
        if any(op.kind is PrimitiveKind.THREADFENCE_SYSTEM for op in body):
            return float(rng.exponential(self._PCIE_NOISE_CYCLES))
        return 0.0

    def throughput(self, per_op_time: float) -> float:
        """Per-thread ops/s from per-op cycles (1 / cycles / clock period)."""
        return throughput_from_cycles(per_op_time, self.spec.clock_ghz)

    def with_atomics(self, atomics: AtomicUnitModel) -> "GpuDevice":
        """Copy of this device with a different atomic-unit model
        (used by the warp-aggregation ablation)."""
        return GpuDevice(self.spec, self.params, atomics)

    def describe(self) -> dict[str, object]:
        """Table I row for this device."""
        return self.spec.describe()
