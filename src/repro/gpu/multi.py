"""A multi-GPU machine: N identical devices behind one interconnect.

:class:`MultiGpu` presents the same machine interface the measurement
engine uses for :class:`repro.gpu.device.GpuDevice` and
:class:`repro.cpu.machine.CpuMachine`, with the *device count* as the
swept dimension instead of the launch shape.  Per-device primitives are
priced by the underlying device's cost model unchanged; only the three
genuinely multi-device mechanisms pay for the link:

* ``multi_grid_sync`` — a single-device ``grid.sync()`` plus one link
  round trip per extra device (the arrival/release flag exchange of a
  multi-grid cooperative barrier);
* system-scope atomics — the device-scope price plus a line-ownership
  round trip per *contending* device, where the contending-device count
  comes from :class:`repro.mem.coherence.CoherenceModel` with each GPU
  standing in for a core (GPUs fight over a host-visible line exactly
  the way sockets fight over a cache line);
* ``__threadfence_system()`` — the single-device system fence plus one
  one-way link crossing per peer whose caches the drain must reach.

Timing noise follows the single-device story (§IV: the GPU cycle
counter is deterministic; only traffic that leaves the device is
erratic): bodies containing a system fence, a system-scope atomic, or a
multi-device barrier draw exponential link noise, everything else is
exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import throughput_from_cycles
from repro.compiler.ops import ATOMIC_KINDS, Op, PrimitiveKind, Scope
from repro.gpu.device import GpuDevice
from repro.gpu.interconnect import NVLINK3, InterconnectModel
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.spec import LaunchConfig
from repro.mem.coherence import CoherenceModel


@dataclass(frozen=True)
class MultiGpuRunContext:
    """Resolved context for one multi-device measurement configuration.

    Attributes:
        n_devices: Participating devices (every device runs ``launch``).
        launch: Per-device grid/block dimensions.
        occ: Occupancy of the busiest SM on each device.
    """

    n_devices: int
    launch: LaunchConfig
    occ: OccupancyResult
    #: Per-context op price memo, same contract as
    #: :class:`repro.gpu.device.GpuRunContext`.
    _cost_cache: dict = field(repr=False, compare=False,
                              default_factory=dict)


def _body_is_linked(body: tuple[Op, ...]) -> bool:
    """True when the body contains an op whose traffic leaves the device
    (the only source of timing noise on a multi-GPU rig)."""
    for op in body:
        if op.kind is PrimitiveKind.THREADFENCE_SYSTEM:
            return True
        if op.kind is PrimitiveKind.MULTI_GRID_SYNC:
            return True
        if op.kind in ATOMIC_KINDS and op.scope is Scope.SYSTEM:
            return True
    return False


class MultiGpu:
    """``n`` copies of one GPU preset joined by an interconnect.

    Not a :class:`GpuDevice` subclass on purpose: the engine detects
    ``run_noise`` overrides on subclasses and falls back to scalar
    sampling, while this class implements the full batched machine
    interface directly.
    """

    time_unit = "cycles"

    #: Same per-iteration loop bookkeeping as a single device.
    loop_overhead = 2.0

    #: Cold start still pays the single-device L2 warm-up.
    cold_start_cost = 25_000.0

    #: Per-op noise scale (cycles) for bodies whose traffic crosses the
    #: link; matches the single-device PCIe fence noise.
    _LINK_NOISE_CYCLES = 40.0

    def __init__(self, device: GpuDevice,
                 interconnect: InterconnectModel = NVLINK3,
                 coherence: CoherenceModel | None = None) -> None:
        self.device = device
        self.interconnect = interconnect
        self.coherence = coherence or CoherenceModel()
        self._context_cache: dict[tuple[int, LaunchConfig],
                                  MultiGpuRunContext] = {}

    @property
    def name(self) -> str:
        return f"multi-{self.device.spec.name}+{self.interconnect.name}"

    @property
    def clock_ghz(self) -> float:
        return self.device.spec.clock_ghz

    @property
    def params(self):
        """The per-device calibration constants (device pricing)."""
        return self.device.params

    def context(self, n_devices: int,
                launch: LaunchConfig) -> MultiGpuRunContext:
        """Resolve a (device count, launch) pair into a cached context."""
        if n_devices < 1:
            raise ConfigurationError("need at least one device")
        key = (n_devices, launch)
        cached = self._context_cache.get(key)
        if cached is not None:
            return cached
        spec = self.device.spec
        occ = occupancy(launch.grid_blocks, launch.block_threads,
                        spec.sm_count, spec.max_threads_per_sm,
                        spec.max_blocks_per_sm)
        ctx = MultiGpuRunContext(n_devices=n_devices, launch=launch,
                                 occ=occ)
        self._context_cache[key] = ctx
        return ctx

    # ------------------------------ pricing ----------------------------- #

    def contending_devices(self, n_devices: int) -> int:
        """Devices fighting over one host-visible line.

        Each GPU plays the role of a core in the coherence model: SMs of
        one device share that device's L2, so intra-device traffic never
        crosses the link — only distinct devices contend.
        """
        return self.coherence.contending_cores(
            n_devices, {i: i for i in range(n_devices)})

    def op_cost(self, op: Op, ctx: MultiGpuRunContext) -> float:
        """Deterministic steady-state cost of one op (cycles)."""
        cached = ctx._cost_cache.get((self, op))
        if cached is None:
            cached = self._price(op, ctx)
            ctx._cost_cache[(self, op)] = cached
        return cached

    def _price(self, op: Op, ctx: MultiGpuRunContext) -> float:
        model = self.device.cost_model
        link = self.interconnect
        d = ctx.n_devices
        if op.kind is PrimitiveKind.MULTI_GRID_SYNC:
            # Per-device grid barrier, then an all-device flag exchange:
            # one link round trip per extra device.
            base = model.op_cost_cycles(
                replace(op, kind=PrimitiveKind.GRID_SYNC),
                ctx.launch, ctx.occ)
            return base + link.roundtrip_cycles() * (d - 1)
        if op.kind in ATOMIC_KINDS and op.scope is Scope.SYSTEM:
            # Device-scope service plus host visibility (one crossing
            # even alone) plus a line-ownership round trip per extra
            # contending device.
            base = model.op_cost_cycles(
                replace(op, scope=Scope.DEVICE), ctx.launch, ctx.occ)
            bouncing = self.contending_devices(d) - 1
            return base + link.latency_cycles + \
                link.roundtrip_cycles() * bouncing
        if op.kind is PrimitiveKind.THREADFENCE_SYSTEM:
            # Drain must reach every peer's view of system memory.
            base = model.op_cost_cycles(op, ctx.launch, ctx.occ)
            return base + link.latency_cycles * (d - 1)
        return model.op_cost_cycles(op, ctx.launch, ctx.occ)

    def body_cost(self, body: tuple[Op, ...] | list[Op],
                  ctx: MultiGpuRunContext) -> float:
        """Cost of one unrolled loop-body iteration (cycles)."""
        if type(body) is tuple:
            cached = ctx._cost_cache.get((self, body))
            if cached is None:
                cached = sum(self.op_cost(op, ctx) for op in body)
                ctx._cost_cache[(self, body)] = cached
            return cached
        return sum(self.op_cost(op, ctx) for op in body)

    # ------------------------------- noise ------------------------------ #

    def run_noise(self, rng: np.random.Generator, ctx: MultiGpuRunContext,
                  body: tuple[Op, ...] = (),
                  base_cost: float = 0.0) -> float:
        """Exponential link noise for bodies that leave the device."""
        del ctx, base_cost
        if _body_is_linked(body):
            return float(rng.exponential(self._LINK_NOISE_CYCLES))
        return 0.0

    def run_noise_batch(self, rng: np.random.Generator,
                        ctx: MultiGpuRunContext,
                        bodies: tuple[tuple[Op, ...], ...],
                        base_costs: tuple[float, ...]) -> list[float]:
        """Batched :meth:`run_noise`, stream-identical to scalar calls."""
        del ctx, base_costs
        exponential = rng.exponential
        scale = self._LINK_NOISE_CYCLES
        return [float(exponential(scale)) if _body_is_linked(body)
                else 0.0 for body in bodies]

    def noise_sampler(self, ctx: MultiGpuRunContext,
                      bodies: tuple[tuple[Op, ...], ...],
                      base_costs: tuple[float, ...]):
        """A compiled per-attempt sampler for one sweep point."""
        del ctx, base_costs
        noisy = tuple(_body_is_linked(body) for body in bodies)
        scale = self._LINK_NOISE_CYCLES
        if len(noisy) == 2:  # the engine's baseline/test pair
            noisy_b, noisy_t = noisy

            def sample_pair(rng: np.random.Generator
                            ) -> tuple[float, float]:
                return (float(rng.exponential(scale)) if noisy_b else 0.0,
                        float(rng.exponential(scale)) if noisy_t else 0.0)

            def bind_pair(rng: np.random.Generator):
                exponential = rng.exponential

                def sample() -> tuple[float, float]:
                    return (float(exponential(scale)) if noisy_b else 0.0,
                            float(exponential(scale)) if noisy_t else 0.0)

                return sample

            sample_pair.bind = bind_pair  # type: ignore[attr-defined]
            return sample_pair

        def sample(rng: np.random.Generator) -> tuple[float, ...]:
            return tuple(float(rng.exponential(scale)) if flag else 0.0
                         for flag in noisy)

        return sample

    def noise_free(self, body: tuple[Op, ...] = ()) -> bool:
        """True when runs of ``body`` never touch the link."""
        return not _body_is_linked(body)

    def throughput(self, per_op_time: float) -> float:
        """Per-thread ops/s from per-op cycles at the device clock."""
        return throughput_from_cycles(per_op_time,
                                      self.device.spec.clock_ghz)

    def describe(self) -> dict[str, object]:
        """Summary row (device spec + link)."""
        info = dict(self.device.spec.describe())
        info["interconnect"] = self.interconnect.name
        return info
