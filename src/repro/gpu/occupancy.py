"""Occupancy: how many blocks and threads are resident on each SM.

CUDA distributes thread blocks across SMs; several blocks may be resident
on one SM concurrently as long as their combined threads fit under the
architecture's max-threads-per-SM and block-slot limits (Section II-B).
The paper's block counts {1, 2, SMs/2, SMs, 2xSMs} make occupancy the
deciding factor for several figures: e.g. at 2xSMs blocks every SM holds
two blocks — except at 1024 threads/block on the RTX 4090 (1536 threads/SM
max), where only one fits and blocks run in waves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class OccupancyResult:
    """Resident-state of the busiest SM for a given launch.

    Attributes:
        blocks_per_sm_wanted: Blocks the scheduler would like to co-locate
            on the busiest SM (ceil(grid / SMs)).
        blocks_per_sm_resident: Blocks actually resident at once, after the
            threads-per-SM and block-slot limits.
        resident_threads_per_sm: Threads concurrently resident on the
            busiest SM.
        waves: Number of sequential waves needed to run all of the busiest
            SM's blocks (1 when everything is resident at once).
        active_sms: SMs that received at least one block.
    """

    blocks_per_sm_wanted: int
    blocks_per_sm_resident: int
    resident_threads_per_sm: int
    waves: int
    active_sms: int

    @property
    def resident_warps_per_sm(self) -> int:
        return -(-self.resident_threads_per_sm // 32)


def occupancy(grid_blocks: int, block_threads: int, sm_count: int,
              max_threads_per_sm: int, max_blocks_per_sm: int = 16
              ) -> OccupancyResult:
    """Compute the busiest SM's resident state for a launch.

    Args:
        grid_blocks: Number of thread blocks launched.
        block_threads: Threads per block (1..1024).
        sm_count: SMs on the device.
        max_threads_per_sm: Architecture limit (Table I row).
        max_blocks_per_sm: Hardware block-slot limit per SM.

    Raises:
        ConfigurationError: for non-positive sizes or > 1024 threads/block.
    """
    if grid_blocks < 1:
        raise ConfigurationError(f"grid must have >= 1 block, got {grid_blocks}")
    if not 1 <= block_threads <= 1024:
        raise ConfigurationError(
            f"threads per block must be in 1..1024, got {block_threads}")
    if sm_count < 1 or max_threads_per_sm < 1024:
        raise ConfigurationError(
            f"implausible device: {sm_count} SMs, "
            f"{max_threads_per_sm} threads/SM")

    wanted = -(-grid_blocks // sm_count)
    by_threads = max_threads_per_sm // block_threads
    resident = max(1, min(wanted, by_threads, max_blocks_per_sm))
    waves = -(-wanted // resident)
    return OccupancyResult(
        blocks_per_sm_wanted=wanted,
        blocks_per_sm_resident=resident,
        resident_threads_per_sm=resident * block_threads,
        waves=waves,
        active_sms=min(grid_blocks, sm_count),
    )


@dataclass(frozen=True)
class OccupancyReportRow:
    """One block size's theoretical occupancy on a device.

    Attributes:
        block_threads: Threads per block.
        blocks_per_sm: Blocks that can co-reside on one SM.
        warps_per_sm: Resident warps per SM at that residency.
        occupancy: Resident warps / the architecture's max warps per SM
            (the quantity NVIDIA's occupancy calculator reports).
    """

    block_threads: int
    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float


def occupancy_report(sm_count: int, max_threads_per_sm: int,
                     max_blocks_per_sm: int = 16,
                     block_sizes: list[int] | None = None
                     ) -> list[OccupancyReportRow]:
    """Theoretical-occupancy table across block sizes (the CUDA
    occupancy-calculator view of a device).

    A saturating grid (``sm_count * max_blocks_per_sm`` blocks) is
    assumed, so the residency limit is the architecture, not the launch.
    """
    rows = []
    max_warps = max_threads_per_sm // 32
    for block_threads in block_sizes or [2 ** k for k in range(5, 11)]:
        occ = occupancy(sm_count * max_blocks_per_sm, block_threads,
                        sm_count, max_threads_per_sm, max_blocks_per_sm)
        warps = occ.blocks_per_sm_resident * (-(-block_threads // 32))
        rows.append(OccupancyReportRow(
            block_threads=block_threads,
            blocks_per_sm=occ.blocks_per_sm_resident,
            warps_per_sm=warps,
            occupancy=min(1.0, warps / max_warps),
        ))
    return rows
