"""Inter-GPU interconnect cost model (NVLink / PCIe style links).

Multi-device synchronization pays for the link between devices: a
system-scope atomic bounces the owning line between GPUs, a grid-wide
multi-device barrier exchanges arrival flags across every link, and a
``__threadfence_system()`` must drain writes all the way to host-visible
memory.  Zhang et al. ("A Study of Single and Multi-device
Synchronization Methods in Nvidia GPUs") measure exactly this gap:
on-device sync costs tens of cycles, cross-device sync costs
microseconds.

The model is deliberately small: a one-way latency plus a bandwidth
term, both in *device clock cycles* so they compose directly with
:class:`repro.gpu.costs.GpuCostModel` prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class InterconnectModel:
    """One point-to-point GPU interconnect.

    Attributes:
        name: Preset name ("nvlink3", "pcie4", ...).
        latency_cycles: One-way small-message latency in device cycles.
        bandwidth_bytes_per_cycle: Sustained payload bandwidth.
    """

    name: str
    latency_cycles: float
    bandwidth_bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0:
            raise ConfigurationError("interconnect latency must be > 0")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError("interconnect bandwidth must be > 0")

    def transfer_cycles(self, n_bytes: int) -> float:
        """Cycles to move ``n_bytes`` one way (latency + serialization)."""
        if n_bytes < 0:
            raise ConfigurationError("cannot transfer a negative payload")
        return self.latency_cycles + \
            n_bytes / self.bandwidth_bytes_per_cycle

    def roundtrip_cycles(self) -> float:
        """Request/response pair for a small message (flag, atomic)."""
        return 2.0 * self.latency_cycles


#: NVLink 3.0-class link: ~2 µs visibility round trip at ~2 GHz device
#: clocks, tens of GB/s per direction.
NVLINK3 = InterconnectModel(
    name="nvlink3", latency_cycles=700.0, bandwidth_bytes_per_cycle=20.0)

#: PCIe 4.0 x16 fallback path: roughly twice the latency and under half
#: the per-direction bandwidth of NVLink.
PCIE4 = InterconnectModel(
    name="pcie4", latency_cycles=1500.0, bandwidth_bytes_per_cycle=8.0)

INTERCONNECT_PRESETS: dict[str, InterconnectModel] = {
    NVLINK3.name: NVLINK3,
    PCIE4.name: PCIE4,
}


def interconnect_preset(name: str) -> InterconnectModel:
    """Look up a preset link by name."""
    try:
        return INTERCONNECT_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown interconnect {name!r}; known: "
            f"{sorted(INTERCONNECT_PRESETS)}") from None
