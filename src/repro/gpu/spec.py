"""Static GPU device specifications and kernel launch configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

WARP_SIZE = 32


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU (one row of Table I).

    Attributes:
        name: Marketing name.
        compute_capability: e.g. 8.9 for the RTX 4090.
        clock_ghz: Clock frequency as reported by ``cudaDeviceProp``.
        sm_count: Number of streaming multiprocessors.
        max_threads_per_sm: Architectural residency limit.
        cuda_cores_per_sm: CUDA cores per SM.
        memory_gb: Device memory size.
        full_speed_threads_per_sm: Resident threads per SM the warp
            scheduler sustains at full issue rate; beyond this,
            ``__syncwarp()``/shuffle throughput drops somewhat (Fig. 8:
            ~256 on the RTX 4090 and A100, ~512 on the RTX 2070 SUPER).
        max_blocks_per_sm: Hardware block-slot limit.
    """

    name: str
    compute_capability: float
    clock_ghz: float
    sm_count: int
    max_threads_per_sm: int
    cuda_cores_per_sm: int
    memory_gb: int
    full_speed_threads_per_sm: int
    max_blocks_per_sm: int = 16

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigurationError(
                f"clock must be positive, got {self.clock_ghz}")
        if self.sm_count < 1:
            raise ConfigurationError(f"need >= 1 SM, got {self.sm_count}")
        if self.max_threads_per_sm < 1024:
            raise ConfigurationError(
                "max threads per SM below the 1024-thread block limit: "
                f"{self.max_threads_per_sm}")

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // WARP_SIZE

    def describe(self) -> dict[str, object]:
        """Table I row for this GPU."""
        return {
            "name": self.name,
            "compute_capability": self.compute_capability,
            "clock_ghz": self.clock_ghz,
            "sm_count": self.sm_count,
            "max_threads_per_sm": self.max_threads_per_sm,
            "cuda_cores_per_sm": self.cuda_cores_per_sm,
            "memory_gb": self.memory_gb,
        }


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: ``kernel<<<grid_blocks, block_threads>>>``.

    Attributes:
        grid_blocks: Number of thread blocks.
        block_threads: Threads per block (1..1024; a block is a logical
            group of up to 1024 threads, Section II-B).
    """

    grid_blocks: int
    block_threads: int

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ConfigurationError(
                f"grid needs >= 1 block, got {self.grid_blocks}")
        if not 1 <= self.block_threads <= 1024:
            raise ConfigurationError(
                f"threads per block must be in 1..1024, "
                f"got {self.block_threads}")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_threads

    @property
    def warps_per_block(self) -> int:
        """Warps per block; partial warps still occupy a full warp slot."""
        return -(-self.block_threads // WARP_SIZE)

    @property
    def total_warps(self) -> int:
        return self.grid_blocks * self.warps_per_block


def paper_block_counts(spec: GpuSpec) -> list[int]:
    """The paper's block-count sweep: 1, 2, SMs/2, SMs, 2xSMs."""
    return [1, 2, max(1, spec.sm_count // 2), spec.sm_count,
            2 * spec.sm_count]


def paper_thread_counts() -> list[int]:
    """The paper's per-block thread sweep: powers of two through 1024."""
    return [2 ** k for k in range(0, 11)]
