"""Atomic-unit throughput model.

Old NVIDIA documentation describes *atomic units* — hardware near the L2
that serializes atomic operations (the paper cites the Fermi whitepaper and
infers from its measurements that integer units are faster or more numerous
than floating-point ones).  This module models them as a set of pipelined
service units with per-dtype service times, plus the *warp aggregation*
optimization: the JIT compiler collapses a warp's same-address commutative
integer atomics (add/max/min) into a single atomic plus an intra-warp
reduction-and-broadcast, which is why ``atomicAdd`` on a shared int scalar
stays flat well past the warp size (Fig. 9) while ``atomicCAS`` does not
(Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ops import AGGREGATABLE_KINDS, Op, PrimitiveKind


@dataclass(frozen=True)
class AtomicUnitModel:
    """Service rates of the device's atomic hardware.

    All times are in GPU clock cycles.

    Attributes:
        int_service_cycles: Service time for one 32-bit integer atomic.
        ull_service_cycles: Service time for one 64-bit integer atomic
            (slower: the tested GPUs have 32-bit datapaths).
        fp_service_cycles: Service time for one floating-point atomic.
        cas_service_cycles: Service time for one 32-bit CAS/Exch (the
            compare adds a round trip over a plain add).
        cas64_service_cycles: Service time for a 64-bit CAS/Exch.
        latency_floor_cycles: Pipeline latency of an uncontended atomic;
            per-thread cost can never drop below this, which produces the
            flat regions at low thread counts.
        array_units_int: Parallel units available to integer atomics on
            *distinct* addresses.
        array_units_other: Parallel units for 64-bit/FP atomics on distinct
            addresses.
        aggregation: Whether the driver JIT performs warp aggregation
            (ablations switch this off).
    """

    int_service_cycles: float = 6.0
    ull_service_cycles: float = 12.0
    fp_service_cycles: float = 18.0
    cas_service_cycles: float = 8.0
    cas64_service_cycles: float = 16.0
    latency_floor_cycles: float = 32.0
    array_units_int: int = 16
    array_units_other: int = 8
    aggregation: bool = True

    def service_cycles(self, op: Op) -> float:
        """Service time of one atomic of this kind/dtype."""
        if op.dtype is None:
            raise ValueError(f"atomic op {op.kind} needs a dtype")
        if op.kind in (PrimitiveKind.ATOMIC_CAS, PrimitiveKind.ATOMIC_EXCH,
                       PrimitiveKind.ATOMIC_INC, PrimitiveKind.ATOMIC_DEC):
            # Inc/dec carry a wrap-around comparison, so they price like
            # CAS rather than like a plain add.
            return (self.cas_service_cycles if op.dtype.size_bytes == 4
                    else self.cas64_service_cycles)
        if not op.dtype.is_integer:
            return self.fp_service_cycles
        return (self.int_service_cycles if op.dtype.size_bytes == 4
                else self.ull_service_cycles)

    def aggregates(self, op: Op) -> bool:
        """Whether warp aggregation collapses this op on a shared address.

        Aggregation needs a commutative read-modify-write (CAS/Exch results
        depend on lane ordering, so they cannot aggregate) and a 32-bit
        integer operand (the datapath the reduction-and-broadcast uses).
        """
        return (self.aggregation
                and op.kind in AGGREGATABLE_KINDS
                and op.dtype is not None
                and op.dtype.is_integer
                and op.dtype.size_bytes == 4)

    def parallel_units(self, op: Op) -> int:
        """Units available to same-kind atomics on distinct addresses."""
        if op.dtype is not None and op.dtype.is_integer and \
                op.dtype.size_bytes == 4:
            return self.array_units_int
        return self.array_units_other

    def without_aggregation(self) -> "AtomicUnitModel":
        """Copy with warp aggregation disabled (ablation)."""
        return AtomicUnitModel(
            int_service_cycles=self.int_service_cycles,
            ull_service_cycles=self.ull_service_cycles,
            fp_service_cycles=self.fp_service_cycles,
            cas_service_cycles=self.cas_service_cycles,
            cas64_service_cycles=self.cas64_service_cycles,
            latency_floor_cycles=self.latency_floor_cycles,
            array_units_int=self.array_units_int,
            array_units_other=self.array_units_other,
            aggregation=False,
        )
