"""Per-primitive steady-state cost model for the GPU (in clock cycles).

Prices one dynamic op for the slowest participating thread, given a launch
configuration and the resulting occupancy.  See the package docstring for
the mechanisms; the individual methods cite the figure whose trend they
produce.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.compiler.ops import Op, PrimitiveKind, Scope
from repro.gpu.atomic_units import AtomicUnitModel
from repro.gpu.occupancy import OccupancyResult
from repro.gpu.spec import WARP_SIZE, GpuSpec, LaunchConfig
from repro.mem.layout import PrivateArrayElement, SharedScalar

#: L2 sector size in bytes (granularity of atomic line locking).
SECTOR_BYTES = 32

_SHFL_KINDS = frozenset({
    PrimitiveKind.SHFL_SYNC,
    PrimitiveKind.SHFL_UP_SYNC,
    PrimitiveKind.SHFL_DOWN_SYNC,
    PrimitiveKind.SHFL_XOR_SYNC,
})

_VOTE_KINDS = frozenset({
    PrimitiveKind.VOTE_ALL,
    PrimitiveKind.VOTE_ANY,
    PrimitiveKind.VOTE_BALLOT,
    PrimitiveKind.MATCH_ANY_SYNC,
    PrimitiveKind.MATCH_ALL_SYNC,
})

_ATOMIC_KINDS = frozenset({
    PrimitiveKind.ATOMIC_ADD,
    PrimitiveKind.ATOMIC_SUB,
    PrimitiveKind.ATOMIC_MAX,
    PrimitiveKind.ATOMIC_MIN,
    PrimitiveKind.ATOMIC_AND,
    PrimitiveKind.ATOMIC_OR,
    PrimitiveKind.ATOMIC_XOR,
    PrimitiveKind.ATOMIC_INC,
    PrimitiveKind.ATOMIC_DEC,
    PrimitiveKind.ATOMIC_CAS,
    PrimitiveKind.ATOMIC_EXCH,
})

_SYNCTHREADS_KINDS = frozenset({
    PrimitiveKind.SYNCTHREADS,
    PrimitiveKind.SYNCTHREADS_COUNT,
    PrimitiveKind.SYNCTHREADS_AND,
    PrimitiveKind.SYNCTHREADS_OR,
})


@dataclass(frozen=True)
class GpuCostParams:
    """Calibration constants for one GPU's cost model (clock cycles).

    Attributes:
        sync_base_cycles: ``__syncthreads()`` with a single warp.
        sync_warp_step_cycles: Added per extra warp in the block (Fig. 7's
            drop beyond 32 threads).
        warp_sync_base_cycles: ``__syncwarp()`` at full issue speed.
        warp_sync_slow_factor: Multiplier once resident threads per SM
            exceed the device's full-speed width (Fig. 8's knee).
        shfl_extra_cycles: Shuffle data-movement cost on top of the implied
            warp sync; doubled for 64-bit types (two 32-bit instructions).
        vote_extra_cycles: Vote reduce-and-broadcast cost on top of the
            warp sync (slightly lower throughput than syncwarp, §V-B4).
        reduce_sync_cycles: ``__reduce_max_sync()`` hardware instruction.
        fence_drain_cycles: Device-wide ``__threadfence()`` drain (Fig. 14's
            flat lines).
        fence_block_cycles: Block fence when intra-block ordering actually
            constrains the pipeline (small thread counts / tiny strides).
        fence_system_factor: System fence cost multiplier over device scope.
        block_atomic_service_cycles: SM-local (shared-memory) atomic service
            time for block-scoped atomics.
        block_atomic_floor_cycles: Pipeline floor for block-scoped atomics.
        slice_conflict_cycles: L2 slice-camping penalty coefficient for
            small-stride array atomics from many SMs (Fig. 10c vs 10d).
        divergence_cycles: Fixed re-convergence overhead per extra
            instruction group when lanes of a warp diverge (Bialas &
            Strzelecki, the paper's methodological ancestor, found this
            cost to be essentially constant per diverging branch).
        alu_cycles: Simple ALU instruction (used by the kernel interpreter).
        global_load_cycles: Amortized global load (interpreter).
        uncoalesced_penalty_cycles: Extra cost per additional 32-byte
            sector a warp's global accesses touch beyond the first
            (interpreter coalescing model).
        block_launch_cycles: Per-block scheduling overhead (what makes the
            persistent-thread Reduction 5 win, §II-C).
        kernel_launch_cycles: Fixed kernel launch overhead.
        grid_sync_block_cycles: Added per extra resident block for a
            cooperative ``grid.sync()``: the arrival/release protocol
            serializes one flag update per block through L2 (Zhang et
            al.'s single-device grid barrier trend).
    """

    sync_base_cycles: float = 28.0
    sync_warp_step_cycles: float = 16.0
    warp_sync_base_cycles: float = 2.5
    warp_sync_slow_factor: float = 1.5
    shfl_extra_cycles: float = 1.5
    vote_extra_cycles: float = 0.8
    reduce_sync_cycles: float = 24.0
    fence_drain_cycles: float = 115.0
    fence_block_cycles: float = 10.0
    fence_system_factor: float = 2.6
    block_atomic_service_cycles: float = 2.0
    block_atomic_floor_cycles: float = 20.0
    slice_conflict_cycles: float = 6.0
    divergence_cycles: float = 18.0
    alu_cycles: float = 1.0
    global_load_cycles: float = 8.0
    uncoalesced_penalty_cycles: float = 4.0
    block_launch_cycles: float = 100.0
    kernel_launch_cycles: float = 2000.0
    grid_sync_block_cycles: float = 30.0

    def with_overrides(self, **kwargs: float) -> "GpuCostParams":
        """Copy with some constants replaced (for ablations/calibration)."""
        return replace(self, **kwargs)


class GpuCostModel:
    """Prices GPU ops for a launch on a given device spec."""

    def __init__(self, spec: GpuSpec, params: GpuCostParams | None = None,
                 atomics: AtomicUnitModel | None = None) -> None:
        self.spec = spec
        self.params = params or GpuCostParams()
        self.atomics = atomics or AtomicUnitModel()

    def op_cost_cycles(self, op: Op, launch: LaunchConfig,
                       occ: OccupancyResult) -> float:
        """Deterministic steady-state cost (cycles) of one dynamic op."""
        kind = op.kind
        if kind in _SYNCTHREADS_KINDS:
            cost = self._syncthreads(launch)
            if kind is not PrimitiveKind.SYNCTHREADS:
                # The predicate-reducing variants add a block-wide
                # reduce-and-broadcast on top of the barrier.
                cost += self.params.vote_extra_cycles * \
                    launch.warps_per_block
            return cost
        if kind is PrimitiveKind.SYNCWARP:
            return self._syncwarp(occ)
        if kind is PrimitiveKind.GRID_SYNC:
            return self._grid_sync(launch, occ)
        if kind in _SHFL_KINDS:
            return self._shfl(op, occ)
        if kind in _VOTE_KINDS:
            return self._syncwarp(occ) + self.params.vote_extra_cycles
        if kind is PrimitiveKind.REDUCE_MAX_SYNC:
            return self.params.reduce_sync_cycles
        if kind is PrimitiveKind.ACTIVEMASK:
            # __activemask() only queries the hardware mask; it neither
            # synchronizes nor touches memory.
            return self.params.alu_cycles
        if kind in _ATOMIC_KINDS:
            return self._atomic(op, launch, occ)
        if kind is PrimitiveKind.THREADFENCE:
            return self.params.fence_drain_cycles
        if kind is PrimitiveKind.THREADFENCE_BLOCK:
            return self._fence_block(op, launch)
        if kind is PrimitiveKind.THREADFENCE_SYSTEM:
            return self.params.fence_drain_cycles * \
                self.params.fence_system_factor
        if kind is PrimitiveKind.PLAIN_UPDATE:
            return self.params.alu_cycles + self.params.global_load_cycles
        if kind is PrimitiveKind.PLAIN_READ:
            return self.params.global_load_cycles
        raise ConfigurationError(f"{kind} is not a GPU primitive")

    # ------------------------------------------------------------------ #

    def _syncthreads(self, launch: LaunchConfig) -> float:
        """Block-wide barrier: flat up to one warp, then warps wait for each
        other; no cross-block dependence, so block count is irrelevant
        (Fig. 7)."""
        p = self.params
        return p.sync_base_cycles + \
            p.sync_warp_step_cycles * (launch.warps_per_block - 1)

    def _grid_sync(self, launch: LaunchConfig,
                   occ: OccupancyResult) -> float:
        """Cooperative grid-wide barrier (``grid.sync()``).

        Every block runs a block barrier, then the blocks rendezvous
        through a device-wide arrival counter: a ``__threadfence()``
        drain plus one L2 flag update per extra resident block.  Cost
        therefore grows with the resident grid, unlike
        ``__syncthreads()`` (Fig. 7), which is block-count independent.
        """
        p = self.params
        blocks = self._resident_total_blocks(launch, occ)
        return self._syncthreads(launch) + p.fence_drain_cycles + \
            p.grid_sync_block_cycles * (blocks - 1)

    def _syncwarp(self, occ: OccupancyResult) -> float:
        """Warp barrier: throughput depends on warps resident on the SM,
        not warps per block (Fig. 8)."""
        p = self.params
        if occ.resident_threads_per_sm <= self.spec.full_speed_threads_per_sm:
            return p.warp_sync_base_cycles
        return p.warp_sync_base_cycles * p.warp_sync_slow_factor

    def _shfl(self, op: Op, occ: OccupancyResult) -> float:
        """Warp shuffle: implies a warp sync plus data movement.  The
        hardware shuffles 32 bits, so 64-bit types need two instructions,
        doubling issue pressure — their throughput drops at half the thread
        count of the 32-bit types (Fig. 15)."""
        p = self.params
        if op.dtype is None:
            raise ConfigurationError("shuffle needs a dtype")
        n_instr = 1 if op.dtype.size_bytes == 4 else 2
        pressure = occ.resident_threads_per_sm * n_instr
        base = (p.warp_sync_base_cycles + p.shfl_extra_cycles) * n_instr
        if pressure <= self.spec.full_speed_threads_per_sm:
            return base
        return base * p.warp_sync_slow_factor

    def _fence_block(self, op: Op, launch: LaunchConfig) -> float:
        """Block fence: measured cost collapses to ~zero above the warp
        size and strides above 2, because intra-block accesses were not
        going to be reordered anyway (§V-B3)."""
        stride = 1
        if isinstance(op.target, PrivateArrayElement):
            stride = op.target.stride
        if launch.block_threads <= WARP_SIZE or stride <= 2:
            return self.params.fence_block_cycles
        return 0.0

    # ------------------------------------------------------------------ #

    def _resident_total_blocks(self, launch: LaunchConfig,
                               occ: OccupancyResult) -> int:
        return min(launch.grid_blocks,
                   occ.active_sms * occ.blocks_per_sm_resident)

    def _atomic(self, op: Op, launch: LaunchConfig,
                occ: OccupancyResult) -> float:
        if op.target is None or op.dtype is None:
            raise ConfigurationError(
                f"atomic op {op.kind} needs a dtype and target")
        if op.scope is Scope.BLOCK:
            return self._block_atomic(op, launch)
        if isinstance(op.target, SharedScalar):
            return self._scalar_atomic(op, launch, occ)
        return self._array_atomic(op, launch, occ)

    def _block_atomic(self, op: Op, launch: LaunchConfig) -> float:
        """Block-scoped atomic served by SM-local hardware: cheap, and
        contended only within the block (Listing 1's Reductions 3-5)."""
        p = self.params
        if self.atomics.aggregates(op) and isinstance(op.target, SharedScalar):
            streams = launch.warps_per_block
        elif isinstance(op.target, SharedScalar):
            streams = launch.block_threads
        else:
            streams = 1
        return max(p.block_atomic_floor_cycles,
                   p.block_atomic_service_cycles * streams)

    def _scalar_atomic(self, op: Op, launch: LaunchConfig,
                       occ: OccupancyResult) -> float:
        """All threads target one address: the atomic unit serializes every
        concurrent stream.  Warp aggregation collapses each warp's integer
        add/max/min into one stream, keeping the int curve flat past the
        warp size (Fig. 9); CAS/Exch streams stay per-thread, so their flat
        region ends after latency_floor/service threads (Figs. 11, 13)."""
        blocks = self._resident_total_blocks(launch, occ)
        if self.atomics.aggregates(op):
            streams = blocks * launch.warps_per_block
        else:
            streams = blocks * launch.block_threads
        service = self.atomics.service_cycles(op)
        return max(self.atomics.latency_floor_cycles, service * streams)

    def dynamic_atomic_cost(self, op: Op, n_addresses: int, n_lanes: int,
                            issuing_warps: int, resident_blocks: int) -> float:
        """Price an atomic from an *observed* issue pattern.

        Used by the functional kernel interpreter, which — unlike the
        steady-state sweeps — knows exactly how many lanes of the warp
        issued the atomic, to how many distinct addresses, how many warps
        of the block have been issuing the same atomic, and how many
        blocks are resident.

        Args:
            op: The atomic op (kind/dtype/scope).
            n_addresses: Distinct addresses targeted by this warp's lanes.
            n_lanes: Lanes issuing in this warp step.
            issuing_warps: Warps of the block observed issuing this atomic.
            resident_blocks: Concurrently resident blocks (device scope).
        """
        if n_lanes < 1:
            return 0.0
        service = self.atomics.service_cycles(op)
        if self.atomics.aggregates(op):
            streams_per_warp = n_addresses
        else:
            streams_per_warp = n_lanes
        if n_addresses >= n_lanes > 1:
            # Fully disjoint addresses: parallel atomic units apply.
            streams_per_warp = max(
                1, streams_per_warp // self.atomics.parallel_units(op))
        if op.scope is Scope.BLOCK:
            return max(self.params.block_atomic_floor_cycles,
                       self.params.block_atomic_service_cycles
                       * streams_per_warp * max(issuing_warps, 1))
        streams = streams_per_warp * max(issuing_warps, 1) \
            * max(resident_blocks, 1)
        return max(self.atomics.latency_floor_cycles, service * streams)

    def _array_atomic(self, op: Op, launch: LaunchConfig,
                      occ: OccupancyResult) -> float:
        """Each thread targets its own element: no aggregation possible,
        throughput bounded by the fixed number of atomic units (Figs. 10,
        12).  Small strides concentrate many SMs' traffic on few L2
        sectors/slices, which only hurts once multiple SMs are active —
        at one block the trend is stride-independent, as the paper found."""
        assert isinstance(op.target, PrivateArrayElement)
        blocks = self._resident_total_blocks(launch, occ)
        threads = blocks * launch.block_threads
        service = self.atomics.service_cycles(op)
        units = self.atomics.parallel_units(op)
        pipelined = service * threads / units
        cost = max(self.atomics.latency_floor_cycles, pipelined)
        sector_sharers = max(1, SECTOR_BYTES // op.target.byte_stride)
        if occ.active_sms > 1 and sector_sharers > 1:
            cost += self.params.slice_conflict_cycles * (sector_sharers - 1) \
                * (1.0 - 1.0 / occ.active_sms)
        return cost
