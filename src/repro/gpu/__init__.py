"""GPU substrate: device specs, occupancy, atomic units, and op costs.

Models the three NVIDIA GPUs of Table I.  The CUDA trends of Section V-B
arise from four mechanisms:

* **Warp-synchronous execution** — thread counts below 32 still run a full
  warp with lanes disabled, so throughput is flat up to the warp size.
* **Occupancy** — resident blocks per SM = min(requested, max-threads/SM /
  blockDim, hardware block slot limit); the ``__syncwarp()``/shuffle knees
  come from resident threads per SM crossing a full-speed issue width.
* **Atomic units** — per-dtype service rates (integer fastest) with
  warp-aggregation of same-address commutative integer atomics; CAS and
  Exch cannot aggregate, so their flat region ends after a few threads.
* **Fence drain** — device fences pay a fixed load/store-buffer drain,
  independent of thread count; block fences are free when no reordering
  would occur.
"""

from repro.gpu.device import GpuDevice, GpuRunContext
from repro.gpu.spec import (
    WARP_SIZE,
    GpuSpec,
    LaunchConfig,
    paper_block_counts,
    paper_thread_counts,
)
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.atomic_units import AtomicUnitModel
from repro.gpu.costs import GpuCostParams, GpuCostModel
from repro.gpu.presets import (
    SYSTEM1_GPU,
    SYSTEM2_GPU,
    SYSTEM3_GPU,
    gpu_preset,
    GPU_PRESETS,
)

__all__ = [
    "GpuDevice",
    "GpuSpec",
    "LaunchConfig",
    "GpuRunContext",
    "WARP_SIZE",
    "paper_block_counts",
    "paper_thread_counts",
    "OccupancyResult",
    "occupancy",
    "AtomicUnitModel",
    "GpuCostParams",
    "GpuCostModel",
    "SYSTEM1_GPU",
    "SYSTEM2_GPU",
    "SYSTEM3_GPU",
    "gpu_preset",
    "GPU_PRESETS",
]
