"""The three GPUs of Table I as ready-made devices.

System 1: NVIDIA GeForce RTX 2070 SUPER (CC 7.5, 40 SMs, 1024 thr/SM).
System 2: NVIDIA A100 40GB (CC 8.0, 108 SMs, 2048 thr/SM).
System 3: NVIDIA GeForce RTX 4090 (CC 8.9, 128 SMs, 1536 thr/SM) — the
paper's default device for figures.

The ``full_speed_threads_per_sm`` values encode the Fig. 8 observation
that "the RTX 4090 can handle up to 256 threads per SM, and the RTX 2070
SUPER can handle up to 512 threads per SM at full speed" (System 2 behaves
like System 3).
"""

from __future__ import annotations

from repro.gpu.device import GpuDevice
from repro.gpu.spec import GpuSpec

SYSTEM1_GPU = GpuDevice(GpuSpec(
    name="NVIDIA GeForce RTX 2070 SUPER",
    compute_capability=7.5,
    clock_ghz=1.80,
    sm_count=40,
    max_threads_per_sm=1024,
    cuda_cores_per_sm=64,
    memory_gb=8,
    full_speed_threads_per_sm=512,
))

SYSTEM2_GPU = GpuDevice(GpuSpec(
    name="NVIDIA A100 40GB",
    compute_capability=8.0,
    clock_ghz=1.41,
    sm_count=108,
    max_threads_per_sm=2048,
    cuda_cores_per_sm=64,
    memory_gb=40,
    full_speed_threads_per_sm=256,
))

SYSTEM3_GPU = GpuDevice(GpuSpec(
    name="NVIDIA GeForce RTX 4090",
    compute_capability=8.9,
    clock_ghz=2.625,
    sm_count=128,
    max_threads_per_sm=1536,
    cuda_cores_per_sm=128,
    memory_gb=24,
    full_speed_threads_per_sm=256,
))

#: Presets by the paper's system number.
GPU_PRESETS: dict[int, GpuDevice] = {
    1: SYSTEM1_GPU,
    2: SYSTEM2_GPU,
    3: SYSTEM3_GPU,
}


def gpu_preset(system: int) -> GpuDevice:
    """GPU of paper System 1, 2, or 3.

    Raises:
        KeyError: for system numbers other than 1-3.
    """
    if system not in GPU_PRESETS:
        raise KeyError(f"no System {system}; the paper tests systems 1-3")
    return GPU_PRESETS[system]
