"""Fault scenarios: named, seeded compositions of fault models.

A :class:`FaultScenario` is the unit the CLI and experiments work with:
an ordered tuple of :class:`~repro.faults.models.FaultModel` instances
plus a seed and an optional amplification of the machine's own OS-jitter
model.  Scenarios are declared either as presets
(:mod:`repro.faults.presets`) or through a tiny DSL::

    thermal(peak=1.4)+preempt(prob=0.05,magnitude_ns=8000)+drop(drop_prob=0.02)

Determinism contract: given (scenario name, seed, machine) the injected
fault sequence is a pure function of the order of timed measurements, so
two identical campaigns produce byte-identical result files.

The module also holds the *active scenario* used by
:class:`repro.core.engine.MeasurementEngine` to transparently wrap any
machine it is handed — this is how ``syncperf --faults`` reaches every
experiment without each experiment knowing about fault injection.
"""

from __future__ import annotations

import contextlib
import re
from dataclasses import dataclass, replace
from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.faults.models import FaultModel, build_model

_MODEL_RE = re.compile(r"^\s*([a-z_]+)\s*(?:\(([^)]*)\))?\s*$")


@dataclass(frozen=True)
class FaultScenario:
    """One named composition of fault models.

    Attributes:
        name: Scenario identifier (appears in fault RNG labels, so it is
            part of the determinism key).
        faults: Models applied in order to every timed measurement.
        seed: Seed of the scenario's dedicated fault stream.
        jitter_storm: Amplification of the wrapped machine's own
            OS-jitter spike term (CPU machines only; 1.0 = unchanged).
            This is the "beyond the spike model" knob: the machine's
            modelled jitter gets stormier *and* the fault models fire on
            top of it.
    """

    name: str
    faults: tuple[FaultModel, ...] = ()
    seed: int = 0
    jitter_storm: float = 1.0

    def with_seed(self, seed: int) -> "FaultScenario":
        """Copy with a different fault-stream seed."""
        return replace(self, seed=seed)

    def scaled(self, intensity: float) -> "FaultScenario":
        """Copy with every model's intensity scaled.

        Intensity 0 yields a fault-free scenario (the clean control of a
        fault-tolerance sweep); intensity 1 is the scenario as declared.
        """
        if intensity < 0:
            raise ConfigurationError(
                f"fault intensity must be >= 0, got {intensity}")
        name = f"{self.name}@{intensity:g}"
        if intensity == 0:
            return replace(self, name=name, faults=(), jitter_storm=1.0)
        return replace(
            self, name=name,
            faults=tuple(f.scaled(intensity) for f in self.faults),
            jitter_storm=1.0 + (self.jitter_storm - 1.0) * intensity)

    def describe(self) -> str:
        """One-line human-readable summary of the composition."""
        parts = [type(f).__name__ for f in self.faults]
        if self.jitter_storm != 1.0:
            parts.append(f"jitter_storm x{self.jitter_storm:g}")
        inner = ", ".join(parts) if parts else "no faults"
        return f"{self.name}: {inner} (seed {self.seed})"


def parse_scenario(text: str, seed: int = 0,
                   name: str | None = None) -> FaultScenario:
    """Parse a scenario DSL string into a :class:`FaultScenario`.

    Grammar: ``model[(k=v,...)] + model[(k=v,...)] + ...`` where model
    names come from :data:`repro.faults.models.MODEL_KINDS`.

    Raises:
        ConfigurationError: On syntax errors, unknown models, or
            unknown/badly-typed parameters.
    """
    if not text.strip():
        raise ConfigurationError("empty fault scenario")
    models: list[FaultModel] = []
    for token in text.split("+"):
        match = _MODEL_RE.match(token)
        if not match:
            raise ConfigurationError(
                f"bad fault term {token!r}; expected "
                f"'model' or 'model(key=value,...)'")
        kind, arg_text = match.group(1), match.group(2) or ""
        params: dict[str, str] = {}
        for pair in filter(None, (p.strip() for p in arg_text.split(","))):
            if "=" not in pair:
                raise ConfigurationError(
                    f"bad fault parameter {pair!r} in {token!r}; "
                    f"expected key=value")
            key, value = pair.split("=", 1)
            params[key.strip()] = value.strip()
        models.append(build_model(kind, **params))
    return FaultScenario(name=name or text.strip(), faults=tuple(models),
                         seed=seed)


_ACTIVE: FaultScenario | None = None


def active_scenario() -> FaultScenario | None:
    """The scenario engines should wrap machines with, if any."""
    return _ACTIVE


@contextlib.contextmanager
def use_faults(scenario: FaultScenario | None
               ) -> Iterator[FaultScenario | None]:
    """Activate a fault scenario for every engine built in the block.

    The CLI wraps a whole campaign in this so that experiments — which
    construct their machines and engines internally — are perturbed
    without any per-experiment plumbing.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = scenario
    try:
        yield scenario
    finally:
        _ACTIVE = previous
