"""Named fault-scenario presets and the ``--faults`` resolver.

Each preset is a plausible machine pathology profile, usable directly
(``syncperf all --faults noisy-amd``) or as the base of an intensity
sweep (:meth:`~repro.faults.scenario.FaultScenario.scaled`).  Arbitrary
compositions remain available through the DSL
(:func:`~repro.faults.scenario.parse_scenario`).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.faults.models import (
    ClockDrift,
    DroppedRun,
    MemoryStall,
    PreemptionBurst,
    ThermalThrottle,
    TimerQuantize,
)
from repro.faults.scenario import FaultScenario, parse_scenario

#: The built-in scenario catalogue (name -> scenario at intensity 1).
PRESETS: dict[str, FaultScenario] = {
    # A mostly-healthy machine: rare short preemptions, fine timer.
    "calm": FaultScenario(
        "calm",
        (PreemptionBurst(prob=0.004, length=1, magnitude_ns=1500.0),
         TimerQuantize(granularity_ns=2.0))),
    # Fig. 4a's visibly noisier AMD part, exaggerated: stormier OS
    # jitter plus occasional memory-bus contention.
    "noisy-amd": FaultScenario(
        "noisy-amd",
        (PreemptionBurst(prob=0.02, length=2, magnitude_ns=3000.0),
         MemoryStall(prob=0.01, length=3, stall_rel=0.4)),
        jitter_storm=2.5),
    # A thermally limited part: costs ramp up as the campaign heats it.
    "thermal-laptop": FaultScenario(
        "thermal-laptop",
        (ThermalThrottle(onset=40, ramp=160, peak=1.35),
         PreemptionBurst(prob=0.01, length=1, magnitude_ns=2000.0))),
    # A coarse, drifting clock source.
    "flaky-timer": FaultScenario(
        "flaky-timer",
        (TimerQuantize(granularity_ns=25.0),
         ClockDrift(per_tick=5e-5, cap=0.03))),
    # A daemon-wakeup storm with casualties.
    "storm": FaultScenario(
        "storm",
        (PreemptionBurst(prob=0.08, length=3, magnitude_ns=8000.0,
                         rel=0.5),
         MemoryStall(prob=0.03, length=4, stall_rel=0.6),
         DroppedRun(drop_prob=0.02))),
    # Measurements that simply vanish (OOM kills, wedged driver calls).
    "lossy": FaultScenario(
        "lossy", (DroppedRun(drop_prob=0.12, hang_prob=0.04),)),
    # The validation profile swept by the ext-faults experiment: every
    # failure mode at once, at magnitudes where intensity 1 is survivable
    # and intensity >= 4 visibly degrades the protocol.
    "stress-lab": FaultScenario(
        "stress-lab",
        (PreemptionBurst(prob=0.05, length=1, magnitude_ns=6000.0),
         DroppedRun(drop_prob=0.16),
         ThermalThrottle(onset=20, ramp=120, peak=1.08),
         TimerQuantize(granularity_ns=2.0))),
}


def preset_scenario(name: str) -> FaultScenario:
    """Look up a preset by name.

    Raises:
        ConfigurationError: Unknown preset (message lists the catalogue).
    """
    try:
        return PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; available presets: "
            f"{sorted(PRESETS)} (or compose one, e.g. "
            f"'preempt(prob=0.05)+drop(drop_prob=0.01)')") from exc


def resolve_faults(text: str, seed: int = 0) -> FaultScenario:
    """Resolve a ``--faults`` argument: preset name, or DSL expression.

    An optional ``@intensity`` suffix scales the scenario, e.g.
    ``stress-lab@2`` or ``preempt(prob=0.1)@0.5``.

    Raises:
        ConfigurationError: Unknown preset / malformed DSL or intensity.
    """
    intensity = None
    if "@" in text:
        text, _, suffix = text.rpartition("@")
        try:
            intensity = float(suffix)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad fault intensity {suffix!r}; expected a number"
            ) from exc
    if text in PRESETS:
        scenario = PRESETS[text].with_seed(seed)
    elif "(" in text or "+" in text or text in _model_names():
        scenario = parse_scenario(text, seed=seed)
    else:
        scenario = preset_scenario(text)  # raises with the catalogue
    if intensity is not None:
        scenario = scenario.scaled(intensity)
    return scenario


def _model_names() -> frozenset[str]:
    from repro.faults.models import MODEL_KINDS
    return frozenset(MODEL_KINDS)
