"""The fault-injecting machine wrapper.

:class:`FaultyMachine` wraps any machine the measurement engine accepts
(:class:`repro.cpu.machine.CpuMachine`, :class:`repro.gpu.device.GpuDevice`,
or any duck-typed equivalent) and perturbs its *measured-time surface*:
every ``run_noise`` sample is reconstructed into a total sampled time,
passed through the scenario's fault models in order, and handed back to
the engine as noise.  The deterministic cost model underneath is left
untouched, so ``op_cost``-based ground truths remain the clean machine's
— exactly what a fault-tolerance validation needs to compare against.

Faults draw from a dedicated stream seeded by (scenario name, seed,
machine name); the machine's own jitter stream is never touched, so
enabling faults perturbs measurements *on top of* the modelled jitter
rather than reshuffling it.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.faults.scenario import FaultScenario
from repro.obs.metrics import REGISTRY
from repro.obs.metrics import counter as _counter

# Observability counters (docs/observability.md): how often any fault
# actually perturbed a sample, and how many attempts a DroppedRun-style
# fault killed outright.  Per-fault-class breakdowns live under
# ``faults.activations.<ClassName>``.
_C_ACTIVATIONS = _counter("faults.activations")
_C_DROPPED = _counter("faults.dropped_attempts")


class FaultyMachine:
    """Wrap a machine, injecting a scenario's faults into its timings.

    Args:
        machine: Any engine-compatible machine (CPU or GPU).
        scenario: The fault composition to apply.  If it requests a
            jitter storm and the machine carries a
            :class:`~repro.cpu.jitter.JitterModel`, the wrapped machine
            is rebuilt with the stormed jitter model.
    """

    def __init__(self, machine: object, scenario: FaultScenario) -> None:
        if scenario.jitter_storm != 1.0 and _has_jitter(machine):
            machine = type(machine)(
                machine.topology, machine.params,
                machine.jitter.storm(scenario.jitter_storm))
        self.inner = machine
        self.scenario = scenario
        self._fault_rng = make_rng(
            f"faults/{scenario.name}/{machine.name}", scenario.seed)
        self._states: list[dict] = [{} for _ in scenario.faults]

    # ------------------------- machine interface ----------------------- #

    @property
    def name(self) -> str:
        """The wrapped machine's name (fault injection is transparent to
        jitter-stream labelling, keeping the clean-run streams intact)."""
        return self.inner.name

    @property
    def time_unit(self) -> str:
        """The wrapped machine's time unit."""
        return self.inner.time_unit

    @property
    def loop_overhead(self) -> float:
        """The wrapped machine's loop bookkeeping cost."""
        return self.inner.loop_overhead

    @property
    def cold_start_cost(self) -> float:
        """The wrapped machine's one-time cold-start cost."""
        return getattr(self.inner, "cold_start_cost", 0.0)

    def context(self, *args: object, **kwargs: object) -> object:
        """Resolve an execution context on the wrapped machine."""
        return self.inner.context(*args, **kwargs)

    def op_cost(self, op: object, ctx: object) -> float:
        """The *clean* deterministic cost of one op (ground truth)."""
        return self.inner.op_cost(op, ctx)

    def body_cost(self, body: object, ctx: object) -> float:
        """The *clean* deterministic cost of one loop body."""
        return self.inner.body_cost(body, ctx)

    def run_noise(self, rng: np.random.Generator, ctx: object,
                  body: tuple = (), base_cost: float = 0.0) -> float:
        """Sample one run's noise, then push it through the fault chain.

        Raises:
            FaultInjectionError: When a :class:`~repro.faults.models.
                DroppedRun` fault kills the attempt.
        """
        noise = self.inner.run_noise(rng, ctx, body, base_cost)
        total = max(base_cost + noise, 0.0)
        for fault, state in zip(self.scenario.faults, self._states):
            try:
                perturbed = fault.apply(total, base_cost,
                                        self._fault_rng, state)
            except Exception:
                # A fault killed the attempt (DroppedRun raises
                # FaultInjectionError): that is an activation too.
                _C_ACTIVATIONS.add(1)
                _C_DROPPED.add(1)
                REGISTRY.counter(
                    f"faults.activations.{type(fault).__name__}").add(1)
                raise
            if perturbed != total:
                _C_ACTIVATIONS.add(1)
                REGISTRY.counter(
                    f"faults.activations.{type(fault).__name__}").add(1)
            total = perturbed
        return total - base_cost

    def throughput(self, per_op_time: float) -> float:
        """Per-thread ops/s in the wrapped machine's unit."""
        return self.inner.throughput(per_op_time)

    def describe(self) -> dict[str, object]:
        """The wrapped machine's Table I row, tagged with the scenario."""
        info = dict(self.inner.describe())
        info["faults"] = self.scenario.describe()
        return info


def _has_jitter(machine: object) -> bool:
    return all(hasattr(machine, attr)
               for attr in ("jitter", "topology", "params"))


def wrap_machine(machine: object,
                 scenario: FaultScenario | None) -> object:
    """Wrap ``machine`` in a :class:`FaultyMachine` unless redundant.

    Idempotent: an already-wrapped machine or a ``None`` scenario passes
    through unchanged, so engines can call this unconditionally.
    """
    if scenario is None or isinstance(machine, FaultyMachine):
        return machine
    return FaultyMachine(machine, scenario)
