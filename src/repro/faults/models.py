"""Composable, seeded fault models for the measurement-time surface.

Each model perturbs the *total sampled time* of one timed measurement
(one ``run_noise`` call made by the engine — two per protocol attempt:
baseline then test).  Models are frozen dataclasses; any per-campaign
state (burst countdowns, tick counters) lives in an external ``state``
dict owned by the :class:`~repro.faults.machine.FaultyMachine`, so the
same model instance can drive many independent, deterministic campaigns.

The catalogue mirrors real machine pathologies the paper's protocol must
survive (§IV cites Vicente & Matias' Linux OS-jitter study):

* :class:`ThermalThrottle` — sustained load drops the clock; costs ramp
  up over the campaign and hold at a peak slowdown.
* :class:`PreemptionBurst` — daemon-wakeup storms beyond the jitter
  model's spike term: several consecutive timed sections lose the core.
* :class:`TimerQuantize` — a coarse clock source truncates every reading
  to its granularity (the paper's "timer accuracy" caveat).
* :class:`ClockDrift` — an uncalibrated time source drifts slowly over
  the campaign, skewing late measurements against early ones.
* :class:`MemoryStall` — transient episodes (DRAM refresh storms, page
  migration) inflate memory-bound sections proportionally to their cost.
* :class:`DroppedRun` — a measurement process hangs or is killed: the
  attempt yields no data at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.common.errors import ConfigurationError, FaultInjectionError


def _capped_prob(p: float) -> float:
    """Clamp a scaled probability into [0, 0.97] (never certain)."""
    return min(max(p, 0.0), 0.97)


@dataclass(frozen=True)
class FaultModel:
    """Base class: one deterministic perturbation of sampled times.

    Subclasses override :meth:`apply` (and :meth:`scaled` when linear
    scaling of every field is not the right intensity notion).
    """

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Perturb one timed measurement.

        Args:
            total: The sampled time so far (cost + jitter, clamped >= 0),
                possibly already perturbed by earlier models in the
                scenario.
            base_cost: The deterministic per-op cost being measured
                (for proportional faults).
            rng: The scenario's dedicated fault stream (never the
                machine's jitter stream, so enabling faults does not
                reshuffle the underlying jitter).
            state: Mutable per-campaign scratch space for this model.

        Returns:
            The perturbed time.

        Raises:
            FaultInjectionError: When the fault makes the attempt yield
                no data at all (see :class:`DroppedRun`).
        """
        raise NotImplementedError

    def scaled(self, intensity: float) -> "FaultModel":
        """A copy with magnitudes/probabilities scaled by ``intensity``.

        Intensity 0 must always yield a no-op model; intensity 1 is the
        model as configured.  The default implementation scales every
        float field (probabilities are additionally capped below 1) and
        leaves int fields alone.
        """
        updates: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, bool) or not isinstance(value, float):
                continue
            scaled_value = value * intensity
            if f.name.endswith("prob"):
                scaled_value = _capped_prob(scaled_value)
            updates[f.name] = scaled_value
        return replace(self, **updates)

    def _tick(self, state: dict) -> int:
        """Advance and return this model's measurement counter."""
        tick = state.get("tick", 0)
        state["tick"] = tick + 1
        return tick


@dataclass(frozen=True)
class ThermalThrottle(FaultModel):
    """Clock throttling under sustained load.

    Hardware analogue: a laptop or passively-cooled part whose sustained
    benchmark load trips thermal limits; every measured section slows
    down by a ramping multiplicative factor.

    Attributes:
        onset: Timed measurement index at which throttling begins.
        ramp: Measurements over which the slowdown ramps to its peak.
        peak: Multiplicative slowdown at full throttle (1.0 = none).
    """

    onset: int = 60
    ramp: int = 240
    peak: float = 1.25

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Multiply the sample by the current ramp position's slowdown."""
        tick = self._tick(state)
        if self.ramp <= 0:
            progress = 1.0 if tick >= self.onset else 0.0
        else:
            progress = min(max((tick - self.onset) / self.ramp, 0.0), 1.0)
        return total * (1.0 + (self.peak - 1.0) * progress)

    def scaled(self, intensity: float) -> "ThermalThrottle":
        """Scale the *excess* slowdown, keeping onset/ramp geometry."""
        return replace(self, peak=1.0 + (self.peak - 1.0) * intensity)


@dataclass(frozen=True)
class PreemptionBurst(FaultModel):
    """Daemon-wakeup storms stealing consecutive timed sections.

    Hardware analogue: cron jobs, page-cache writeback, or an interrupt
    storm preempting the benchmark thread for several timer periods in a
    row — bigger and burstier than the jitter model's independent
    per-run spike term.

    Attributes:
        prob: Probability that a storm starts at any timed measurement.
        length: Consecutive measurements hit once a storm starts.
        magnitude_ns: Additive theft per affected measurement.
        rel: Additional theft as a fraction of the measured cost.
    """

    prob: float = 0.02
    length: int = 1
    magnitude_ns: float = 4000.0
    rel: float = 0.25

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Add the storm penalty while a burst is active."""
        remaining = state.get("remaining", 0)
        if remaining > 0:
            state["remaining"] = remaining - 1
            return total + self.magnitude_ns + self.rel * base_cost
        if self.prob > 0.0 and rng.random() < self.prob:
            state["remaining"] = self.length - 1
            return total + self.magnitude_ns + self.rel * base_cost
        return total


@dataclass(frozen=True)
class TimerQuantize(FaultModel):
    """A coarse clock source truncating every reading.

    Hardware analogue: a platform timer with tens-of-nanoseconds
    granularity (the paper leans on ``clock64()``/``omp_get_wtime()``
    precisely because coarse timers bury small primitives).

    Attributes:
        granularity_ns: Reading resolution; 0 disables the fault.
    """

    granularity_ns: float = 8.0

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Truncate the sample to the timer granularity."""
        if self.granularity_ns <= 0.0:
            return total
        return math.floor(total / self.granularity_ns) * self.granularity_ns


@dataclass(frozen=True)
class ClockDrift(FaultModel):
    """A slowly drifting time source.

    Hardware analogue: an uncalibrated TSC or a VM clock losing time
    against wall time, so measurements late in a campaign read
    systematically longer than early ones.

    Attributes:
        per_tick: Fractional drift added per timed measurement.
        cap: Maximum total drift fraction.
    """

    per_tick: float = 2e-5
    cap: float = 0.02

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Stretch the sample by the accumulated drift."""
        tick = self._tick(state)
        return total * (1.0 + min(self.cap, self.per_tick * tick))


@dataclass(frozen=True)
class MemoryStall(FaultModel):
    """Transient memory-subsystem stall episodes.

    Hardware analogue: DRAM refresh storms, NUMA page migration, or a
    co-tenant saturating the memory bus for a stretch; memory-bound
    sections inflate proportionally while the episode lasts.

    Attributes:
        prob: Probability an episode starts at any timed measurement.
        length: Consecutive measurements covered by one episode.
        stall_rel: Inflation as a fraction of the measured cost.
        stall_abs_ns: Additive inflation floor.
    """

    prob: float = 0.01
    length: int = 3
    stall_rel: float = 0.5
    stall_abs_ns: float = 30.0

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Inflate the sample while an episode is active."""
        remaining = state.get("remaining", 0)
        if remaining > 0:
            state["remaining"] = remaining - 1
            return total * (1.0 + self.stall_rel) + self.stall_abs_ns
        if self.prob > 0.0 and rng.random() < self.prob:
            state["remaining"] = self.length - 1
            return total * (1.0 + self.stall_rel) + self.stall_abs_ns
        return total


@dataclass(frozen=True)
class DroppedRun(FaultModel):
    """A measurement that hangs or dies, producing no data.

    Hardware analogue: the benchmark process OOM-killed, wedged on a
    driver call, or preempted past its watchdog.  The engine treats the
    attempt like the paper treats a faulty measurement — discard and
    retry — until its attempt/time budgets run out.

    Attributes:
        drop_prob: Probability one timed measurement is killed outright.
        hang_prob: Probability it hangs until the watchdog fires
            (same observable effect, distinct diagnostic).
    """

    drop_prob: float = 0.01
    hang_prob: float = 0.0

    def apply(self, total: float, base_cost: float,
              rng: np.random.Generator, state: dict) -> float:
        """Raise :class:`FaultInjectionError` when the fault fires."""
        if self.drop_prob <= 0.0 and self.hang_prob <= 0.0:
            return total
        draw = rng.random()
        if draw < self.drop_prob:
            raise FaultInjectionError(
                f"injected fault: measurement process killed "
                f"(drop_prob={self.drop_prob:g})")
        if draw < self.drop_prob + self.hang_prob:
            raise FaultInjectionError(
                f"injected fault: measurement hung past the watchdog "
                f"(hang_prob={self.hang_prob:g})")
        return total


#: DSL/registry names for each model (see ``repro.faults.scenario``).
MODEL_KINDS: dict[str, type[FaultModel]] = {
    "thermal": ThermalThrottle,
    "preempt": PreemptionBurst,
    "quantize": TimerQuantize,
    "drift": ClockDrift,
    "memstall": MemoryStall,
    "drop": DroppedRun,
}


def build_model(kind: str, **params: object) -> FaultModel:
    """Construct a fault model by DSL name with validated parameters.

    Raises:
        ConfigurationError: For an unknown model name or parameter, or a
            parameter value of the wrong type.
    """
    if kind not in MODEL_KINDS:
        raise ConfigurationError(
            f"unknown fault model {kind!r}; available: "
            f"{sorted(MODEL_KINDS)}")
    cls = MODEL_KINDS[kind]
    valid = {f.name: f for f in fields(cls)}
    coerced: dict[str, object] = {}
    for name, value in params.items():
        if name not in valid:
            raise ConfigurationError(
                f"fault model {kind!r} has no parameter {name!r}; "
                f"valid: {sorted(valid)}")
        want_int = valid[name].type == "int"
        try:
            coerced[name] = int(value) if want_int else float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"fault parameter {kind}.{name} must be a number, got "
                f"{value!r}") from exc
    return cls(**coerced)  # type: ignore[arg-type]
