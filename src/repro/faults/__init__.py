"""Deterministic fault injection for the measurement substrate.

This package stresses the paper's measurement protocol (§III/IV): it
wraps any machine — CPU or GPU — and perturbs its measured-time surface
with composable, seeded fault models (thermal throttling, preemption
storms, timer quantization, clock drift, memory-stall episodes, dropped
runs).  The engine's retry/subtraction protocol then either recovers the
true primitive costs or flags the degradation; the ``ext-faults``
experiment sweeps fault intensity to map exactly where recovery stops.

Entry points:

* :func:`resolve_faults` — turn a ``--faults`` argument (preset name or
  DSL string) into a :class:`FaultScenario`;
* :func:`use_faults` / :func:`active_scenario` — campaign-wide scenario
  activation consumed by :class:`repro.core.engine.MeasurementEngine`;
* :func:`wrap_machine` / :class:`FaultyMachine` — explicit wrapping for
  targeted experiments.
"""

from repro.faults.machine import FaultyMachine, wrap_machine
from repro.faults.models import (
    MODEL_KINDS,
    ClockDrift,
    DroppedRun,
    FaultModel,
    MemoryStall,
    PreemptionBurst,
    ThermalThrottle,
    TimerQuantize,
    build_model,
)
from repro.faults.presets import PRESETS, preset_scenario, resolve_faults
from repro.faults.process import ProcessFaultPlan
from repro.faults.scenario import (
    FaultScenario,
    active_scenario,
    parse_scenario,
    use_faults,
)

__all__ = [
    "MODEL_KINDS",
    "PRESETS",
    "ClockDrift",
    "DroppedRun",
    "FaultModel",
    "FaultScenario",
    "FaultyMachine",
    "MemoryStall",
    "PreemptionBurst",
    "ProcessFaultPlan",
    "ThermalThrottle",
    "TimerQuantize",
    "active_scenario",
    "build_model",
    "parse_scenario",
    "preset_scenario",
    "resolve_faults",
    "use_faults",
    "wrap_machine",
]
