"""Process-level fault models: worker crash, hang, and slowdown.

The measurement-time models (:mod:`repro.faults.models`) perturb what a
*timer* sees; this module perturbs what a *supervisor* sees.  A
:class:`ProcessFaultPlan` decides, deterministically per dispatch, the
fate of the worker process executing a measurement request:

* ``crash`` — the worker exits abruptly (``os._exit``), modelling an
  OOM kill or a segfaulting driver call;
* ``hang`` — the worker wedges: its heartbeat stops and it never
  returns, modelling a deadlocked or D-state process (the supervisor
  must detect the stale heartbeat and kill it);
* ``slow`` — the worker stalls for a bounded time before answering,
  modelling a page-cache storm or CPU contention (it keeps
  heartbeating; only the per-request deadline can catch it).

Determinism contract: the fate of dispatch ``seq`` is a pure function
of ``(plan, seq)``, so a chaos run with a fixed seed injects the same
fault sequence every time regardless of thread scheduling — the chaos
harness (:mod:`repro.service.chaos`) relies on this to be replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: The fates a plan can assign to one dispatch.
FATES = ("crash", "hang", "slow")


@dataclass(frozen=True)
class ProcessFaultPlan:
    """Seeded per-dispatch fate assignment for worker processes.

    Attributes:
        crash_prob: Probability a dispatch's worker crashes outright.
        hang_prob: Probability it hangs (heartbeat stops, no answer).
        slow_prob: Probability it stalls ``slow_seconds`` first.
        slow_seconds: Stall length of a ``slow`` fate.
        seed: Seed of the fate stream.
    """

    crash_prob: float = 0.0
    hang_prob: float = 0.0
    slow_prob: float = 0.0
    slow_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_prob", "hang_prob", "slow_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"process fault {name} must be in [0, 1], "
                    f"got {value}")
        total = self.crash_prob + self.hang_prob + self.slow_prob
        if total > 1.0:
            raise ConfigurationError(
                f"process fault probabilities sum to {total:g} > 1")
        if self.slow_seconds < 0:
            raise ConfigurationError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire."""
        return (self.crash_prob + self.hang_prob + self.slow_prob) > 0.0

    def decide(self, seq: int) -> str | None:
        """The fate of dispatch ``seq``: a :data:`FATES` entry or None.

        Pure in ``(plan, seq)``: the draw comes from a stream keyed by
        the plan seed and the dispatch sequence number, never from
        shared mutable state.
        """
        if not self.active:
            return None
        draw = random.Random(f"procfault/{self.seed}/{seq}").random()
        if draw < self.crash_prob:
            return "crash"
        if draw < self.crash_prob + self.hang_prob:
            return "hang"
        if draw < self.crash_prob + self.hang_prob + self.slow_prob:
            return "slow"
        return None

    def describe(self) -> str:
        """One-line human-readable summary (for fingerprints/logs)."""
        parts = [f"{name}={getattr(self, f'{name}_prob'):g}"
                 for name in FATES
                 if getattr(self, f"{name}_prob") > 0.0]
        inner = ", ".join(parts) if parts else "no process faults"
        return f"{inner} (seed {self.seed})"
