"""What-if estimation: put numbers on the advisor's advice.

The advisor (:mod:`repro.advisor`) says *what* to change; this module
predicts *how much* it buys, by evaluating the cost models on both sides
of a proposed change.  Each estimator returns a
:class:`SpeedupEstimate` with the predicted per-thread speedup factor and
the evidence experiment behind the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.datatypes import DataType, INT
from repro.common.errors import ConfigurationError
from repro.compiler.ops import PrimitiveKind, op_atomic
from repro.cpu.machine import CpuMachine
from repro.gpu.device import GpuDevice
from repro.gpu.spec import LaunchConfig
from repro.mem.layout import PrivateArrayElement, SharedScalar


@dataclass(frozen=True)
class SpeedupEstimate:
    """Predicted effect of one change.

    Attributes:
        change: Human-readable description of the change.
        before / after: Per-op costs in the machine's time unit.
        speedup: before/after (>1 means the change helps).
        evidence: Experiment id supporting the underlying mechanism.
    """

    change: str
    before: float
    after: float
    evidence: str

    @property
    def speedup(self) -> float:
        if self.after <= 0:
            return float("inf")
        return self.before / self.after

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.change}: {self.before:.4g} -> {self.after:.4g} "
                f"({self.speedup:.2f}x; see {self.evidence})")


def pad_array_stride(machine: CpuMachine, dtype: DataType,
                     from_stride: int, to_stride: int,
                     n_threads: int) -> SpeedupEstimate:
    """Effect of padding per-thread atomic targets (Fig. 3's mechanism)."""
    ctx = machine.context(n_threads)

    def cost(stride: int) -> float:
        op = op_atomic(PrimitiveKind.OMP_ATOMIC_UPDATE, dtype,
                       PrivateArrayElement(dtype, stride))
        return machine.op_cost(op, ctx)

    return SpeedupEstimate(
        change=f"pad {dtype.name} array stride {from_stride} -> "
               f"{to_stride} at {n_threads} threads",
        before=cost(from_stride), after=cost(to_stride), evidence="fig3")


def replace_critical_with_atomic(machine: CpuMachine, dtype: DataType,
                                 n_threads: int) -> SpeedupEstimate:
    """Effect of swapping a critical-section update for an atomic
    (Fig. 5's comparison)."""
    ctx = machine.context(n_threads)
    critical = machine.op_cost(
        op_atomic(PrimitiveKind.OMP_CRITICAL_UPDATE, dtype,
                  SharedScalar(dtype)), ctx)
    atomic = machine.op_cost(
        op_atomic(PrimitiveKind.OMP_ATOMIC_UPDATE, dtype,
                  SharedScalar(dtype)), ctx)
    return SpeedupEstimate(
        change=f"replace critical section with atomic update "
               f"({dtype.name}, {n_threads} threads)",
        before=critical, after=atomic, evidence="fig5")


def switch_atomic_dtype(device: GpuDevice, from_dtype: DataType,
                        blocks: int, threads: int,
                        to_dtype: DataType = INT) -> SpeedupEstimate:
    """Effect of switching a shared-scalar GPU atomicAdd's operand type
    (Fig. 9's int gap, including warp aggregation)."""
    ctx = device.context(LaunchConfig(blocks, threads))

    def cost(dtype: DataType) -> float:
        return device.op_cost(
            op_atomic(PrimitiveKind.ATOMIC_ADD, dtype,
                      SharedScalar(dtype)), ctx)

    return SpeedupEstimate(
        change=f"switch atomicAdd operand {from_dtype.name} -> "
               f"{to_dtype.name} at {blocks}x{threads}",
        before=cost(from_dtype), after=cost(to_dtype), evidence="fig9")


def shrink_block_for_barriers(device: GpuDevice, from_threads: int,
                              to_threads: int,
                              blocks: int = 1) -> SpeedupEstimate:
    """Effect of a smaller block on ``__syncthreads()`` cost (the V-B5
    (1) recommendation; Fig. 7's mechanism).

    Raises:
        ConfigurationError: if the change is not actually a shrink.
    """
    if to_threads >= from_threads:
        raise ConfigurationError(
            f"expected a shrink, got {from_threads} -> {to_threads}")
    from repro.compiler.ops import Op

    def cost(threads: int) -> float:
        ctx = device.context(LaunchConfig(blocks, threads))
        return device.op_cost(Op(kind=PrimitiveKind.SYNCTHREADS), ctx)

    return SpeedupEstimate(
        change=f"shrink block {from_threads} -> {to_threads} threads "
               "for barrier-heavy code",
        before=cost(from_threads), after=cost(to_threads),
        evidence="fig7")
