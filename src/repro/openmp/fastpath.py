"""Batched fast scheduler for the OpenMP interpreter.

The scalar reference scheduler in :mod:`repro.openmp.interpreter`
interleaves one send per thread per sweep and pays, for every request:
an ``isinstance`` chain, an :class:`~repro.compiler.ops.Op` construction
plus its dataclass hash, a dtype lookup over the type table, a cost
target allocation, and a trace/detector check.  This module keeps the
reference's exact scheduling semantics while removing that per-request
overhead:

* **Gather-then-execute rounds.**  Each round first *sends* into every
  runnable generator (thread bodies cannot observe shared memory between
  yield points, so hoisting the sends out of the interleaved sweep is
  invisible), then executes the collected requests in thread-id order —
  the reference's exact execution order.  A thread that finished is
  recorded as a sentinel and processed at its position in the walk so
  completion is observed exactly when the reference would observe it.
* **Uniform rounds.**  When every collected request is the same class of
  plain/atomic memory access (or flush) and no thread waits on a lock,
  the round is executed by one class-specialized handler: a single
  dispatch, memoized per-``(kind, dtype, contended)`` op costs, cached
  flat views and dtype lookups — instead of the per-request machinery.
* **Hoisted observability.**  The trace check is resolved once per
  region into the cost-charging closure, so ``trace=False`` costs
  nothing per request.  Race detection needs to observe every access, so
  :meth:`OpenMP.parallel` routes detector-enabled regions to the
  reference scheduler before this module is ever involved.

Mixed rounds, lock traffic, barriers/singles/criticals, and every error
case run through the same logic as the reference sweep (partly by
calling :meth:`OpenMP._execute` itself), so results — memory, clocks,
elapsed time, barrier/request counts, trace events, and error messages —
are identical.  ``tests/test_interpreter_fastpath.py`` pins that down.

The public ``interp.omp.uniform_rounds`` counter (:mod:`repro.obs`)
lets the bench suite and CI smoke checks assert the batched dispatcher
actually ran.  The module-level :data:`UNIFORM_ROUNDS` global is its
backward-compatible twin.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.common.budget import StepBudget
from repro.common.datatypes import DTYPES, INT
from repro.common.errors import SimulationError
from repro.compiler.ops import Op, PrimitiveKind
from repro.mem.layout import PrivateArrayElement, SharedScalar
from repro.openmp import requests as rq
from repro.openmp.interpreter import ParallelResult, ThreadContext
from repro.openmp.trace import CpuTrace
from repro.obs.metrics import _SUBSCRIBER as _metric_subscriber
from repro.obs.metrics import counter as _counter

#: Uniform rounds executed by the batched scheduler since import.
#: Monotonic; sample before/after a run to see whether it was used.
#: Kept for backward compatibility — new code should read the
#: ``interp.omp.uniform_rounds`` counter from :mod:`repro.obs` instead.
UNIFORM_ROUNDS = 0

# Observability counters (docs/observability.md).  Scheduler rounds are
# accumulated locally per region and flushed once at region end; the
# invariant ``uniform_rounds + fallback_rounds == rounds`` holds by
# construction.
_C_UNIFORM = _counter("interp.omp.uniform_rounds")
_C_FALLBACK = _counter("interp.omp.fallback_rounds")
_C_ROUNDS = _counter("interp.omp.rounds")
_C_REGIONS_FAST = _counter("interp.omp.regions_fast")

#: Sentinel: the thread's generator finished this round (recorded during
#: the gather, acted upon at the thread's position in the walk).
_STOP = object()

#: Sentinel: the thread was not sendable during the gather.
_NOTHING = object()


def make_cost_model(machine, ctx):
    """Memoized ``(mem_cost, plain_cost)`` closures for one region.

    ``mem_cost(kind, dtype, contended)`` prices a memory request against
    a contended :class:`SharedScalar` or a thread-private line-strided
    element — the exact target selection of the reference scheduler's
    ``_cost_target``.  ``plain_cost(kind)`` prices target-less ops
    (barriers, flushes, locks).  Shared by :func:`parallel_fast` and the
    lifted-tier capture (:func:`repro.compiler.lift.capture_region_plan`)
    so both charge bit-identical costs.
    """
    line = machine.topology.line_bytes
    mem_cost_cache: dict[tuple, float] = {}

    def mem_cost(kind: PrimitiveKind, dtype, contended: bool) -> float:
        key = (kind, dtype, contended)
        c = mem_cost_cache.get(key)
        if c is None:
            target = SharedScalar(dtype) if contended else \
                PrivateArrayElement(dtype,
                                    stride=line // dtype.size_bytes)
            c = machine.op_cost(Op(kind=kind, dtype=dtype, target=target),
                                ctx)
            mem_cost_cache[key] = c
        return c

    plain_cost_cache: dict[PrimitiveKind, float] = {}

    def plain_cost(kind: PrimitiveKind) -> float:
        c = plain_cost_cache.get(kind)
        if c is None:
            c = machine.op_cost(Op(kind=kind), ctx)
            plain_cost_cache[kind] = c
        return c

    return mem_cost, plain_cost


def parallel_fast(omp, body, shared: Mapping[str, np.ndarray] | None = None,
                  trace: bool = False) -> ParallelResult:
    """Run a parallel region with batched uniform-round dispatch.

    Mirrors :meth:`OpenMP._parallel_reference` exactly — same memory
    effects, clocks, counters, trace, and errors.  Only called with race
    detection off (the dispatcher in :meth:`OpenMP.parallel` guarantees
    it).
    """
    global UNIFORM_ROUNDS
    machine = omp.machine
    ctx = omp._ctx
    n = omp.n_threads
    relaxed = omp.relaxed_consistency

    memory: dict[str, np.ndarray] = dict(shared or {})
    trace_obj = CpuTrace() if trace else None
    contexts = [ThreadContext(tid, n) for tid in range(n)]
    gens = [body(tc) for tc in contexts]
    sends = [g.send for g in gens]
    clocks = [0.0] * n
    pending: list[object] = [None] * n
    arrival: list[tuple[str, str] | None] = [None] * n
    single_requests: list[rq.Single | None] = [None] * n
    done = [False] * n
    barriers = 0
    budget = StepBudget(omp.max_steps, hint="runaway thread body?")
    charge_step = budget.charge
    location_threads: dict[tuple[str, int], set[int]] = {}
    lock_holder: dict[str, int] = {}
    held_locks: list[set[str]] = [set() for _ in range(n)]
    lock_wait: dict[int, str] = {}
    store_buffers: list[dict[tuple[str, int], object]] = \
        [{} for _ in range(n)]

    def drain(tid: int) -> None:
        buf = store_buffers[tid]
        if buf:
            for (var, idx), value in buf.items():
                flat_of(var)[idx] = value
            buf.clear()

    # ------------------------- memoized lookups ------------------------ #

    flats: dict[str, np.ndarray] = {}

    def flat_of(var):
        flat = flats.get(var)
        if flat is None:
            flat = memory[var].reshape(-1)
            flats[var] = flat
        return flat

    dtype_by_var: dict[str, object] = {}

    def var_dtype(var):
        dt = dtype_by_var.get(var)
        if dt is None:
            dt = INT
            arr = memory.get(var)
            if arr is not None:
                for d in DTYPES:
                    if d.np_dtype == arr.dtype:
                        dt = d
                        break
            dtype_by_var[var] = dt
        return dt

    mem_cost, plain_cost = make_cost_model(machine, ctx)

    def classify(var: str, idx: int, tid: int) -> bool:
        """Contention classification, identical to ``_cost_target``."""
        touched = location_threads.setdefault((var, idx), set())
        touched.add(tid)
        return len(touched) > 1

    # Trace check hoisted out of the per-request path: the charging
    # closure is picked once per region.
    if trace_obj is None:
        def charge_cost(tid: int, cost: float, kind) -> None:
            clocks[tid] += cost
    else:
        labels: dict[PrimitiveKind, str] = {}

        def charge_cost(tid: int, cost: float, kind) -> None:
            if cost > 0:
                label = labels.get(kind)
                if label is None:
                    label = kind.value.removeprefix("omp_")
                    labels[kind] = label
                trace_obj.add(tid, label, clocks[tid], clocks[tid] + cost)
            clocks[tid] += cost

    def charge_op(tid: int, op: Op) -> None:
        """Reference-signature charge for the mixed/inline path."""
        cost = machine.op_cost(op, ctx)
        if trace_obj is not None and cost > 0:
            label = op.kind.value.removeprefix("omp_")
            trace_obj.add(tid, label, clocks[tid], clocks[tid] + cost)
        clocks[tid] += cost

    def validate(tid: int, var: str, idx: int):
        """Reference error contract for a memory access; returns flat."""
        if var not in memory:
            raise SimulationError(
                f"thread {tid} accessed undeclared shared variable {var!r}")
        flat = flat_of(var)
        if not 0 <= idx < flat.size:
            raise SimulationError(
                f"thread {tid} accessed {var}[{idx}] out of bounds "
                f"(size {flat.size})")
        return flat

    # ------------------------- uniform handlers ------------------------ #
    # One per simple request class; each executes the whole round's
    # requests in thread-id order (the reference's execution order),
    # with validation/cost/effect sequencing identical per entry.

    PLAIN_READ = PrimitiveKind.PLAIN_READ
    PLAIN_UPDATE = PrimitiveKind.PLAIN_UPDATE
    ATOMIC_READ = PrimitiveKind.OMP_ATOMIC_READ
    ATOMIC_WRITE = PrimitiveKind.OMP_ATOMIC_WRITE
    ATOMIC_UPDATE = PrimitiveKind.OMP_ATOMIC_UPDATE
    ATOMIC_CAPTURE = PrimitiveKind.OMP_ATOMIC_CAPTURE

    def u_read(tids, reqs):
        for tid, r in zip(tids, reqs):
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(PLAIN_READ, var_dtype(var),
                                      contended), PLAIN_READ)
            if relaxed:
                buf = store_buffers[tid]
                if buf and (var, idx) in buf:
                    pending[tid] = buf[(var, idx)]
                    continue
            pending[tid] = flat[idx].item()

    def u_write(tids, reqs):
        for tid, r in zip(tids, reqs):
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(PLAIN_UPDATE, var_dtype(var),
                                      contended), PLAIN_UPDATE)
            if relaxed:
                store_buffers[tid][(var, idx)] = r.value
            else:
                flat[idx] = r.value

    def u_atomic_read(tids, reqs):
        for tid, r in zip(tids, reqs):
            if relaxed:
                drain(tid)
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            dtype = r.dtype if r.dtype is not None else var_dtype(var)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(ATOMIC_READ, dtype, contended),
                        ATOMIC_READ)
            pending[tid] = flat[idx].item()

    def u_atomic_write(tids, reqs):
        for tid, r in zip(tids, reqs):
            if relaxed:
                drain(tid)
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            dtype = r.dtype if r.dtype is not None else var_dtype(var)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(ATOMIC_WRITE, dtype, contended),
                        ATOMIC_WRITE)
            flat[idx] = r.value

    def u_atomic_update(tids, reqs):
        for tid, r in zip(tids, reqs):
            if relaxed:
                drain(tid)
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            dtype = r.dtype if r.dtype is not None else var_dtype(var)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(ATOMIC_UPDATE, dtype, contended),
                        ATOMIC_UPDATE)
            flat[idx] = r.func(flat[idx].item())

    def u_atomic_capture(tids, reqs):
        for tid, r in zip(tids, reqs):
            if relaxed:
                drain(tid)
            var, idx = r.var, r.idx
            flat = validate(tid, var, idx)
            dtype = r.dtype if r.dtype is not None else var_dtype(var)
            contended = classify(var, idx, tid)
            charge_cost(tid, mem_cost(ATOMIC_CAPTURE, dtype, contended),
                        ATOMIC_CAPTURE)
            old = flat[idx].item()
            new = r.func(old)
            flat[idx] = new
            pending[tid] = old if r.capture_old else new

    def u_flush(tids, reqs):
        cost = plain_cost(PrimitiveKind.OMP_FLUSH)
        for tid in tids:
            if relaxed:
                drain(tid)
            charge_cost(tid, cost, PrimitiveKind.OMP_FLUSH)

    handlers = {
        rq.Read: u_read,
        rq.Write: u_write,
        rq.AtomicRead: u_atomic_read,
        rq.AtomicWrite: u_atomic_write,
        rq.AtomicUpdate: u_atomic_update,
        rq.AtomicCapture: u_atomic_capture,
        rq.Flush: u_flush,
    }
    handlers_get = handlers.get

    # --------------------------- region loop --------------------------- #

    def release_arrivals() -> None:
        """Verbatim reference semantics for a completed barrier/single."""
        nonlocal barriers
        barriers += 1
        keys = {arrival[t] for t in range(n) if not done[t]}
        assert len(keys) == 1
        key = keys.pop()
        assert key is not None
        for t in range(n):
            drain(t)
        if key[0] == "single":
            executor = min(t for t in range(n) if not done[t])
            request = single_requests[executor]
            assert request is not None
            pending[executor] = request.func(memory)
        barrier_cost = plain_cost(PrimitiveKind.OMP_BARRIER)
        arrive_time = max(clocks)
        sync_time = arrive_time + barrier_cost
        for t in range(n):
            if trace_obj is not None:
                if clocks[t] < arrive_time:
                    trace_obj.add(t, "wait", clocks[t], arrive_time)
                trace_obj.add(t, "barrier", arrive_time, sync_time)
            clocks[t] = sync_time
            arrival[t] = None
            single_requests[t] = None
        location_threads.clear()

    def handle_inline(tid: int, request) -> None:
        """One request through the reference sweep's control logic."""
        if isinstance(request, (rq.Barrier, rq.Single)):
            if isinstance(request, rq.Single):
                arrival[tid] = ("single", request.name)
                single_requests[tid] = request
            else:
                arrival[tid] = ("barrier", "")
            if any(done):
                raise SimulationError(
                    "barrier/single reached while some threads "
                    "already finished the region; every thread "
                    "must encounter the same constructs")
            keys = {arrival[t] for t in range(n) if not done[t]}
            if None not in keys:
                if len(keys) > 1:
                    raise SimulationError(
                        "threads blocked at different "
                        f"synchronization constructs: {sorted(keys)}")
                release_arrivals()
            return
        if isinstance(request, rq.LockAcquire):
            drain(tid)
            if request.name in lock_holder:
                lock_wait[tid] = request.name
            else:
                lock_holder[request.name] = tid
                held_locks[tid].add(request.name)
                charge_op(tid, Op(kind=PrimitiveKind.OMP_LOCK_ACQUIRE))
            return
        if isinstance(request, rq.LockRelease):
            if lock_holder.get(request.name) != tid:
                raise SimulationError(
                    f"thread {tid} released lock "
                    f"{request.name!r} it does not hold")
            drain(tid)
            del lock_holder[request.name]
            held_locks[tid].discard(request.name)
            charge_op(tid, Op(kind=PrimitiveKind.OMP_LOCK_RELEASE))
            return
        if relaxed and not isinstance(request, (rq.Read, rq.Write)):
            drain(tid)
        buffer = store_buffers[tid] if relaxed else None
        pending[tid] = omp._execute(
            request, tid, memory, None, location_threads, charge_op,
            locked=bool(held_locks[tid]), buffer=buffer)

    def finish(tid: int) -> None:
        """Reference handling of a generator that raised StopIteration."""
        if held_locks[tid]:
            raise SimulationError(
                f"thread {tid} finished while holding "
                f"lock(s) {sorted(held_locks[tid])}")
        done[tid] = True

    uniform_start = UNIFORM_ROUNDS
    n_fallback = 0
    while not all(done):
        # Gather: one send per runnable thread.  Bodies cannot observe
        # interpreter state between yields, so hoisting the sends out of
        # the interleaved sweep preserves the reference behavior; the
        # budget is still charged per send, before it, as the reference
        # does.
        items: list[object] = [_NOTHING] * n
        tids: list[int] = []
        reqs: list[object] = []
        n_stop = 0
        for tid in range(n):
            if done[tid] or arrival[tid] is not None or tid in lock_wait:
                continue
            charge_step()
            try:
                request = sends[tid](pending[tid])
            except StopIteration:
                items[tid] = _STOP
                n_stop += 1
                continue
            pending[tid] = None
            items[tid] = request
            tids.append(tid)
            reqs.append(request)

        # Uniform round: no completions, no lock traffic, one simple
        # request class — run the class-specialized batch handler.
        if reqs and not n_stop and not lock_wait:
            cls = reqs[0].__class__
            uniform = True
            for r in reqs:
                if r.__class__ is not cls:
                    uniform = False
                    break
            if uniform:
                handler = handlers_get(cls)
                if handler is not None:
                    handler(tids, reqs)
                    UNIFORM_ROUNDS += 1
                    continue

        # Mixed round: walk every thread slot in id order, replaying the
        # reference sweep (lock-wait turns, completion sentinels, and —
        # after a mid-walk barrier release — sends for threads that were
        # still blocked during the gather).
        n_fallback += 1
        progressed = False
        for tid in range(n):
            item = items[tid]
            if item is _NOTHING:
                if done[tid]:
                    continue
                if tid in lock_wait:
                    name = lock_wait[tid]
                    if name in lock_holder:
                        continue
                    del lock_wait[tid]
                    lock_holder[name] = tid
                    held_locks[tid].add(name)
                    charge_op(tid, Op(kind=PrimitiveKind.OMP_LOCK_ACQUIRE))
                    progressed = True
                    continue
                if arrival[tid] is not None:
                    continue
                # A release earlier in this walk unblocked the thread:
                # the reference sweep would reach and send it now.
                charge_step()
                try:
                    request = sends[tid](pending[tid])
                except StopIteration:
                    finish(tid)
                    progressed = True
                    continue
                pending[tid] = None
                progressed = True
                handle_inline(tid, request)
                continue
            if item is _STOP:
                finish(tid)
                progressed = True
                continue
            progressed = True
            handle_inline(tid, item)
        if not progressed:
            if lock_wait:
                raise SimulationError(
                    f"lock deadlock: threads {sorted(lock_wait)} wait "
                    f"on locks {sorted(set(lock_wait.values()))} whose "
                    "holders cannot progress")
            raise SimulationError(
                "deadlock: no thread can make progress")

    # Implicit barrier at region end: publish everything.
    n_uniform = UNIFORM_ROUNDS - uniform_start
    if _metric_subscriber[0] is None:
        # No recorder: direct increments keep the per-region flush
        # within the bench regression gate's noise floor.
        _C_REGIONS_FAST.value += 1
        _C_UNIFORM.value += n_uniform
        _C_FALLBACK.value += n_fallback
        _C_ROUNDS.value += n_uniform + n_fallback
    else:
        _C_REGIONS_FAST.add(1)
        if n_uniform:
            _C_UNIFORM.add(n_uniform)
        if n_fallback:
            _C_FALLBACK.add(n_fallback)
        if n_uniform or n_fallback:
            _C_ROUNDS.add(n_uniform + n_fallback)
    for t in range(n):
        drain(t)
    elapsed = max(clocks) if clocks else 0.0
    elapsed += plain_cost(PrimitiveKind.OMP_BARRIER)
    return ParallelResult(
        memory=memory,
        thread_times_ns=clocks,
        elapsed_ns=elapsed,
        races=[],
        barriers=barriers,
        requests=budget.used,
        trace=trace_obj,
    )
