"""Execution traces for the OpenMP interpreter.

When a region runs with ``trace=True``, each executed request is recorded
as a :class:`CpuTraceEvent` — thread, operation, and modeled time
interval — and barrier waits become visible as the gap each thread spends
blocked, which is exactly the "threads spend more time waiting for the
other threads" effect behind Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CpuTraceEvent:
    """One executed request.

    Attributes:
        tid: Thread id.
        label: Operation label ("AtomicUpdate", "Barrier", "wait", ...).
        start_ns / end_ns: Modeled interval on the thread's clock.
    """

    tid: int
    label: str
    start_ns: float
    end_ns: float

    @property
    def duration(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class CpuTrace:
    """Ordered event log for one parallel region."""

    events: list[CpuTraceEvent] = field(default_factory=list)

    def add(self, tid: int, label: str, start: float, end: float) -> None:
        """Record one executed request."""
        self.events.append(CpuTraceEvent(tid, label, start, end))

    def for_thread(self, tid: int) -> list[CpuTraceEvent]:
        """Events of one thread, in recording order."""
        return [e for e in self.events if e.tid == tid]

    def total_ns_by_label(self) -> dict[str, float]:
        """Aggregate durations per operation label (a cost profile)."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.label] = totals.get(event.label, 0.0) + \
                event.duration
        return totals

    def timeline_rows(self) -> list[tuple[str, str, float, float]]:
        """Normalized ``(track, label, start, end)`` rows for the
        shared export helpers (one track per thread)."""
        return [(f"thread {e.tid}", e.label, e.start_ns, e.end_ns)
                for e in self.events]

    def to_chrome_trace(self, pid: int = 0) -> list[dict]:
        """Serialize as Chrome ``trace_events`` records.

        One complete event per executed request, one tid row per
        thread, in the modeled nanosecond clock (1 trace-µs = 1 ns).
        Shares its serializer with :class:`repro.cuda.trace.Trace`
        (:func:`repro.obs.chrome.rows_to_chrome`), so a CPU region and
        a GPU launch export into one file under distinct ``pid``
        tracks.
        """
        from repro.obs.chrome import rows_to_chrome
        return rows_to_chrome(self.timeline_rows(), pid=pid,
                              unit="ns", source="openmp")

    def wait_fraction(self, tid: int) -> float:
        """Fraction of a thread's time spent waiting at barriers."""
        events = self.for_thread(tid)
        if not events:
            return 0.0
        total = max(e.end_ns for e in events)
        if total <= 0:
            return 0.0
        waited = sum(e.duration for e in events if e.label == "wait")
        return waited / total

    def render(self, width: int = 64) -> str:
        """Render all threads as an ASCII timeline (waits shown as '.')."""
        if not self.events:
            return "<no events>"
        end = max(e.end_ns for e in self.events)
        if end <= 0:
            return "<zero-length trace>"
        tids = sorted({e.tid for e in self.events})
        lines = [f"region timeline (0 .. {end:.0f} ns)"]
        for tid in tids:
            row = [" "] * width
            for e in self.for_thread(tid):
                lo = int(e.start_ns / end * (width - 1))
                hi = max(lo + 1, int(e.end_ns / end * (width - 1)) + 1)
                glyph = "." if e.label == "wait" else e.label[0].upper()
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"  t{tid:<2}: |{''.join(row)}|")
        labels = sorted({e.label for e in self.events
                         if e.label != "wait"})
        lines.append("  key: .=wait, " + ", ".join(
            f"{label[0].upper()}={label}" for label in labels))
        return "\n".join(lines)
