"""OpenMP API layer: parallel regions over the simulated CPU.

Thread bodies are written as Python generator functions that *yield*
synchronization/memory requests (:mod:`repro.openmp.requests`); the
cooperative interpreter (:mod:`repro.openmp.interpreter`) schedules the
threads, executes the requests against real numpy-backed shared memory,
charges each request's cost from the CPU cost model, and runs a data-race
detector (:mod:`repro.openmp.race`) over every access.

Example::

    omp = OpenMP(SYSTEM3_CPU, n_threads=8)

    def body(tc):
        for _ in range(100):
            yield tc.atomic_update("counter", 0, lambda v: v + 1)
        yield tc.barrier()

    result = omp.parallel(body, shared={"counter": np.zeros(1, np.int64)})
    assert result.memory["counter"][0] == 800
"""

from repro.openmp.requests import (
    AtomicCapture,
    AtomicRead,
    AtomicUpdate,
    AtomicWrite,
    Barrier,
    Critical,
    Flush,
    LockAcquire,
    LockRelease,
    Read,
    Write,
)
from repro.openmp.interpreter import OpenMP, ParallelResult, ThreadContext
from repro.openmp.race import RaceDetector, RaceReport
from repro.openmp.worksharing import (
    ReduceOutcome,
    Schedule,
    parallel_for,
    parallel_for_ordered,
    parallel_reduce,
    parallel_sections,
)

__all__ = [
    "OpenMP",
    "ParallelResult",
    "ThreadContext",
    "Barrier",
    "Flush",
    "Critical",
    "LockAcquire",
    "LockRelease",
    "AtomicUpdate",
    "AtomicCapture",
    "AtomicRead",
    "AtomicWrite",
    "Read",
    "Write",
    "RaceDetector",
    "RaceReport",
    "Schedule",
    "parallel_for",
    "parallel_for_ordered",
    "parallel_reduce",
    "parallel_sections",
    "ReduceOutcome",
]
