"""Worksharing on top of the parallel-region interpreter.

``parallel_for`` distributes loop iterations over the team with the
OpenMP schedules (static block, static cyclic, dynamic); the dynamic
schedule is implemented — as real runtimes implement it — with an atomic
capture on a shared chunk counter, so its scheduling overhead comes from
the same atomic cost model the paper measures.

``parallel_reduce`` offers the three reduction strategies whose tradeoffs
the paper's recommendations describe: ``atomic`` (every update hits one
shared location — the V-A5 (2) anti-pattern), ``critical`` (the V-A5 (5)
anti-pattern), and ``privatized`` (per-thread accumulators on separate
cache lines, merged after a barrier — the recommended layout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.openmp.interpreter import OpenMP, ParallelResult, ThreadContext

#: An iteration body: generator over (thread context, iteration index).
LoopBody = Callable[[ThreadContext, int], Generator]


class Schedule(enum.Enum):
    """OpenMP loop schedules."""

    STATIC = "static"
    STATIC_CYCLIC = "static_cyclic"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class ReduceOutcome:
    """Result of a parallel reduction.

    Attributes:
        value: The combined value.
        strategy: Which strategy produced it.
        result: The underlying region result (timing, memory, races).
    """

    value: float
    strategy: str
    result: ParallelResult


def parallel_for(omp: OpenMP, n: int, body: LoopBody,
                 shared: dict[str, np.ndarray] | None = None,
                 schedule: Schedule = Schedule.STATIC,
                 chunk: int = 1) -> ParallelResult:
    """Run ``body(tc, i)`` for every ``i in range(n)`` across the team.

    Args:
        omp: The OpenMP runtime to run on.
        n: Iteration count.
        body: Per-iteration generator body.
        shared: Shared arrays available to the body.
        schedule: Iteration-to-thread mapping policy.
        chunk: Chunk size for the dynamic schedule.

    Raises:
        ConfigurationError: for a negative iteration count or chunk < 1.
    """
    if n < 0:
        raise ConfigurationError(f"iteration count must be >= 0, got {n}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")

    memory = dict(shared or {})
    if schedule is Schedule.DYNAMIC:
        if "__omp_chunk_counter" in memory:
            raise ConfigurationError(
                "__omp_chunk_counter is reserved by the dynamic schedule")
        memory["__omp_chunk_counter"] = np.zeros(1, np.int64)

    def thread_body(tc: ThreadContext):
        if schedule is Schedule.STATIC:
            per_thread = -(-n // tc.n_threads)
            start = tc.tid * per_thread
            indices = range(start, min(start + per_thread, n))
            for i in indices:
                yield from body(tc, i)
        elif schedule is Schedule.STATIC_CYCLIC:
            for i in range(tc.tid, n, tc.n_threads):
                yield from body(tc, i)
        else:  # DYNAMIC: grab chunks off a shared atomic counter.
            while True:
                start = yield tc.atomic_capture(
                    "__omp_chunk_counter", 0, lambda v: v + chunk)
                if start >= n:
                    break
                for i in range(start, min(start + chunk, n)):
                    yield from body(tc, i)

    return omp.parallel(thread_body, shared=memory)


def parallel_for_ordered(omp: OpenMP, n: int, body: LoopBody,
                         ordered_section: LoopBody,
                         shared: dict[str, np.ndarray] | None = None
                         ) -> ParallelResult:
    """``#pragma omp for ordered``: the parallel part of each iteration
    runs concurrently, but ``ordered_section(tc, i)`` executes in strict
    iteration order (a shared turn counter enforced with atomics — the
    textbook implementation).

    Iterations are distributed cyclically so the ordered turn passes
    between threads rather than draining one thread's whole chunk first.

    Raises:
        ConfigurationError: for a negative iteration count or a reserved
            shared-variable name.
    """
    if n < 0:
        raise ConfigurationError(f"iteration count must be >= 0, got {n}")
    memory = dict(shared or {})
    if "__omp_ordered_turn" in memory:
        raise ConfigurationError(
            "__omp_ordered_turn is reserved by the ordered construct")
    memory["__omp_ordered_turn"] = np.zeros(1, np.int64)

    def thread_body(tc: ThreadContext):
        for i in range(tc.tid, n, tc.n_threads):
            yield from body(tc, i)
            while (yield tc.atomic_read("__omp_ordered_turn", 0)) != i:
                pass
            yield from ordered_section(tc, i)
            yield tc.atomic_write("__omp_ordered_turn", 0, i + 1)
        yield tc.barrier()

    return omp.parallel(thread_body, shared=memory)


def parallel_sections(omp: OpenMP,
                      sections: list[LoopBody],
                      shared: dict[str, np.ndarray] | None = None
                      ) -> ParallelResult:
    """``#pragma omp sections``: each section body runs on one thread.

    Sections are dealt round-robin to the team (section ``i`` runs on
    thread ``i % n_threads``); an implicit barrier closes the construct.
    Each section body is called as ``body(tc, section_index)``.
    """
    def thread_body(tc: ThreadContext):
        for index, section in enumerate(sections):
            if index % tc.n_threads == tc.tid:
                yield from section(tc, index)
        yield tc.barrier()

    return omp.parallel(thread_body, shared=shared)


def parallel_reduce(omp: OpenMP, n: int,
                    value_of: Callable[[int], float],
                    strategy: str = "privatized",
                    initial: float = 0.0) -> ReduceOutcome:
    """Sum ``value_of(i)`` over ``i in range(n)`` with a chosen strategy.

    Args:
        omp: The OpenMP runtime.
        n: Number of terms.
        value_of: Pure function from index to term.
        strategy: "atomic", "critical", or "privatized".
        initial: Identity/initial value of the accumulator.

    Raises:
        ConfigurationError: for unknown strategies.
    """
    if strategy not in ("atomic", "critical", "privatized"):
        raise ConfigurationError(
            f"unknown reduction strategy {strategy!r}; expected atomic, "
            "critical, or privatized")

    shared: dict[str, np.ndarray] = {
        "acc": np.full(1, initial, np.float64),
    }
    # Privatized accumulators padded to one per cache line (8 doubles).
    line_elems = 8
    shared["private"] = np.zeros(omp.n_threads * line_elems, np.float64)

    def thread_body(tc: ThreadContext):
        per_thread = -(-n // tc.n_threads)
        start = tc.tid * per_thread
        indices = range(start, min(start + per_thread, n))
        if strategy == "atomic":
            for i in indices:
                term = value_of(i)
                yield tc.atomic_update("acc", 0, lambda v, t=term: v + t)
        elif strategy == "critical":
            for i in indices:
                term = value_of(i)
                yield tc.critical(
                    lambda mem, t=term: mem["acc"].__setitem__(
                        0, mem["acc"][0] + t),
                    touches=(("acc", 0, True),))
        else:
            local = 0.0
            slot = tc.tid * line_elems
            for i in indices:
                local += value_of(i)
                yield tc.write("private", slot, local)
            yield tc.barrier()
            if tc.tid == 0:
                total = 0.0
                for t in range(tc.n_threads):
                    total += yield tc.read("private", t * line_elems)
                yield tc.atomic_update("acc", 0,
                                       lambda v, t=total: v + t)

    result = omp.parallel(thread_body, shared=shared)
    return ReduceOutcome(value=float(result.memory["acc"][0]),
                         strategy=strategy, result=result)
