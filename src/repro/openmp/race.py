"""Data-race detection for the OpenMP interpreter.

A lightweight epoch-based detector: an *epoch* is the interval between
consecutive barriers.  Within one epoch, two accesses to the same location
from different threads conflict when at least one is a write and the pair
is not properly synchronized — both atomic, or both under the critical
lock.  This catches exactly the bugs the paper's primitives exist to
prevent (e.g. dropping the atomic from the shared-counter example makes the
detector fire).

A flush alone does **not** make conflicting accesses safe — it only orders
one thread's own accesses — so flushes do not reset the detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import DataRaceError


class AccessKind(enum.Enum):
    """How a location was touched."""

    PLAIN_READ = "plain_read"
    PLAIN_WRITE = "plain_write"
    ATOMIC_READ = "atomic_read"
    ATOMIC_WRITE = "atomic_write"
    LOCKED_READ = "locked_read"
    LOCKED_WRITE = "locked_write"

    @property
    def is_write(self) -> bool:
        return self in (AccessKind.PLAIN_WRITE, AccessKind.ATOMIC_WRITE,
                        AccessKind.LOCKED_WRITE)

    @property
    def is_atomic(self) -> bool:
        return self in (AccessKind.ATOMIC_READ, AccessKind.ATOMIC_WRITE)

    @property
    def is_locked(self) -> bool:
        return self in (AccessKind.LOCKED_READ, AccessKind.LOCKED_WRITE)


@dataclass(frozen=True)
class RaceReport:
    """One detected data race.

    Attributes:
        var: Shared-variable name.
        idx: Element index.
        first: (thread id, access kind) of the earlier access.
        second: (thread id, access kind) of the conflicting access.
        epoch: Barrier epoch in which both accesses occurred.
    """

    var: str
    idx: int
    first: tuple[int, AccessKind]
    second: tuple[int, AccessKind]
    epoch: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"data race on {self.var}[{self.idx}] in epoch {self.epoch}: "
                f"thread {self.first[0]} {self.first[1].value} vs "
                f"thread {self.second[0]} {self.second[1].value}")


def _conflicts(a: AccessKind, b: AccessKind) -> bool:
    """Whether an (a, b) access pair from different threads is a race."""
    if not (a.is_write or b.is_write):
        return False
    if a.is_atomic and b.is_atomic:
        return False
    if a.is_locked and b.is_locked:
        return False
    return True


@dataclass
class RaceDetector:
    """Epoch-based race detector.

    Attributes:
        raise_on_race: Raise :class:`DataRaceError` at the first race when
            True; otherwise collect reports in :attr:`races`.
    """

    raise_on_race: bool = True
    races: list[RaceReport] = field(default_factory=list)
    _epoch: int = 0
    _accesses: dict[tuple[str, int], list[tuple[int, AccessKind]]] = \
        field(default_factory=dict)

    def record(self, tid: int, var: str, idx: int, kind: AccessKind) -> None:
        """Record one access and check it against this epoch's history."""
        key = (var, idx)
        history = self._accesses.setdefault(key, [])
        for prev_tid, prev_kind in history:
            if prev_tid != tid and _conflicts(prev_kind, kind):
                report = RaceReport(var=var, idx=idx,
                                    first=(prev_tid, prev_kind),
                                    second=(tid, kind), epoch=self._epoch)
                if self.raise_on_race:
                    raise DataRaceError(str(report))
                self.races.append(report)
                break
        # Deduplicate: one entry per (thread, kind) pair per location.
        if (tid, kind) not in history:
            history.append((tid, kind))

    def barrier(self) -> None:
        """A barrier happened: all prior accesses are ordered before all
        later ones, so the epoch's history is discarded."""
        self._epoch += 1
        self._accesses.clear()

    @property
    def epoch(self) -> int:
        return self._epoch
