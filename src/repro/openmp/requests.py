"""Request objects yielded by OpenMP thread bodies.

Each request corresponds to one OpenMP construct (or a plain memory
access).  The interpreter executes the request, charges its cost, feeds it
to the race detector, and sends any produced value back into the
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.datatypes import DataType


@dataclass(frozen=True)
class Request:
    """Base class for everything a thread body may yield."""


@dataclass(frozen=True)
class Barrier(Request):
    """``#pragma omp barrier`` — blocks until all threads arrive.

    Implies a flush, so it also closes the race detector's epoch.
    """


@dataclass(frozen=True)
class Flush(Request):
    """``#pragma omp flush`` — memory fence ordering this thread's accesses."""


@dataclass(frozen=True)
class MemoryRequest(Request):
    """A request that touches ``var[idx]``."""

    var: str
    idx: int


@dataclass(frozen=True)
class Read(MemoryRequest):
    """Plain (non-atomic) load; produces the value."""


@dataclass(frozen=True)
class Write(MemoryRequest):
    """Plain (non-atomic) store of ``value``."""

    value: object = 0


@dataclass(frozen=True)
class AtomicRead(MemoryRequest):
    """``#pragma omp atomic read`` — produces the value."""

    dtype: Optional[DataType] = None


@dataclass(frozen=True)
class AtomicWrite(MemoryRequest):
    """``#pragma omp atomic write`` of ``value``."""

    value: object = 0
    dtype: Optional[DataType] = None


@dataclass(frozen=True)
class AtomicUpdate(MemoryRequest):
    """``#pragma omp atomic update`` — applies ``func`` to the value."""

    func: Callable[[object], object] = field(default=lambda v: v)
    dtype: Optional[DataType] = None


@dataclass(frozen=True)
class AtomicCapture(AtomicUpdate):
    """``#pragma omp atomic capture`` — like update, but produces a value.

    Attributes:
        capture_old: Produce the pre-update value (``v = x++`` style) when
            True; the post-update value otherwise.
    """

    capture_old: bool = True


@dataclass(frozen=True)
class Single(Request):
    """``#pragma omp single`` — one thread executes ``func(memory)``, the
    rest skip it; an implicit barrier follows (the default, no ``nowait``).

    Attributes:
        name: Identifies the construct; every thread of the team must
            reach the same single (matching names) before anyone proceeds.
        func: Executed exactly once, by the lowest-numbered arriving
            thread; its return value is produced to that thread (others
            receive None — ``copyprivate`` is not modeled).
        touches: Access declarations for the race detector, as in
            :class:`Critical`.
    """

    name: str = "single"
    func: Callable[[dict], object] = field(default=lambda mem: None)
    touches: tuple[tuple[str, int, bool], ...] = ()


@dataclass(frozen=True)
class LockAcquire(Request):
    """``omp_set_lock()`` — blocks until the named lock is free.

    Accesses performed while holding any lock are recorded as locked for
    the race detector (lockset-lite: lock identity is not distinguished).
    """

    name: str = "lock"


@dataclass(frozen=True)
class LockRelease(Request):
    """``omp_unset_lock()`` — releases the named lock.

    Releasing a lock the thread does not hold is a simulation error.
    """

    name: str = "lock"


@dataclass(frozen=True)
class Critical(Request):
    """``#pragma omp critical`` — runs ``func(memory)`` holding the lock.

    ``func`` receives the shared-memory mapping (name -> numpy array) and
    may read and write freely; the whole callable executes atomically.
    Its return value, if any, is produced to the yielding thread.

    Attributes:
        touches: Optional declarations of the locations ``func`` accesses,
            as ``(var, idx, is_write)`` triples, so the race detector can
            check them against accesses outside the critical section.
    """

    func: Callable[[dict], object] = field(default=lambda mem: None)
    dtype: Optional[DataType] = None
    touches: tuple[tuple[str, int, bool], ...] = ()
