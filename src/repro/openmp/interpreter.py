"""Cooperative interpreter for OpenMP parallel regions.

Thread bodies are generator functions taking a :class:`ThreadContext` and
yielding :mod:`repro.openmp.requests` objects.  The interpreter schedules
the team round-robin (deterministically), executes each request against
numpy-backed shared memory, charges its cost from the machine's cost
model, and feeds every access to the race detector.

Timing semantics: each thread carries a local clock (ns).  A request
advances the issuing thread's clock by the op's modeled cost.  A barrier
aligns all clocks to the team maximum plus the barrier cost — the paper's
"threads spend, on average, more time waiting for the other threads".

Memory semantics: plain stores land in a per-thread *store buffer* and
become visible to other threads only at a flush point (an explicit
``flush``, any atomic operation, a critical section, a lock operation, or
a barrier) — the relaxed consistency that makes ``#pragma omp flush``
meaningful (§II-A4: "the compiler and the hardware may reorder the
accesses ... memory fences prevent such reorderings").  A thread always
sees its own buffered stores.  Pass ``relaxed_consistency=False`` for a
sequentially consistent toy memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Mapping

import numpy as np

from repro.common.budget import StepBudget
from repro.common.errors import ConfigurationError, SimulationError
from repro.compiler.ops import Op, PrimitiveKind
from repro.core.engine import fast_path_default
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine, CpuRunContext
from repro.mem.layout import PrivateArrayElement, SharedScalar
from repro.openmp import requests as rq
from repro.openmp.race import AccessKind, RaceDetector, RaceReport
from repro.openmp.trace import CpuTrace
from repro.obs import attach_timeline
from repro.obs import span as obs_span
from repro.obs.metrics import counter as _counter

#: Regions executed by the scalar reference scheduler (observability;
#: the fast scheduler's counterpart is ``interp.omp.regions_fast``).
_C_REGIONS_REFERENCE = _counter("interp.omp.regions_reference")

#: A thread body: generator function yielding requests.
ThreadBody = Callable[["ThreadContext"], Generator]


class ThreadContext:
    """Per-thread handle passed to a thread body.

    Provides the thread's identity and sugar constructors for requests, so
    bodies read like OpenMP code::

        def body(tc):
            yield tc.atomic_update("hist", tc.tid % 4, lambda v: v + 1)
            yield tc.barrier()
            total = yield tc.atomic_read("hist", 0)
    """

    def __init__(self, tid: int, n_threads: int) -> None:
        self.tid = tid
        self.n_threads = n_threads

    # ----------------------------- sugar ------------------------------ #

    def barrier(self) -> rq.Barrier:
        """``#pragma omp barrier``."""
        return rq.Barrier()

    def flush(self) -> rq.Flush:
        """``#pragma omp flush``."""
        return rq.Flush()

    def read(self, var: str, idx: int) -> rq.Read:
        """Plain load of ``var[idx]``."""
        return rq.Read(var, idx)

    def write(self, var: str, idx: int, value: object) -> rq.Write:
        """Plain store to ``var[idx]``."""
        return rq.Write(var, idx, value)

    def atomic_read(self, var: str, idx: int) -> rq.AtomicRead:
        """``#pragma omp atomic read``."""
        return rq.AtomicRead(var, idx)

    def atomic_write(self, var: str, idx: int,
                     value: object) -> rq.AtomicWrite:
        """``#pragma omp atomic write``."""
        return rq.AtomicWrite(var, idx, value)

    def atomic_update(self, var: str, idx: int,
                      func: Callable[[object], object]) -> rq.AtomicUpdate:
        """``#pragma omp atomic update`` applying ``func``."""
        return rq.AtomicUpdate(var, idx, func)

    def atomic_capture(self, var: str, idx: int,
                       func: Callable[[object], object],
                       capture_old: bool = True) -> rq.AtomicCapture:
        """``#pragma omp atomic capture`` (old or new value)."""
        return rq.AtomicCapture(var, idx, func, capture_old=capture_old)

    def critical(self, func: Callable[[dict], object],
                 touches: tuple[tuple[str, int, bool], ...] = ()
                 ) -> rq.Critical:
        """``#pragma omp critical`` executing ``func(memory)``."""
        return rq.Critical(func, touches=touches)

    def lock_acquire(self, name: str = "lock") -> rq.LockAcquire:
        """``omp_set_lock(name)``."""
        return rq.LockAcquire(name)

    def lock_release(self, name: str = "lock") -> rq.LockRelease:
        """``omp_unset_lock(name)``."""
        return rq.LockRelease(name)

    def single(self, func: Callable[[dict], object],
               name: str = "single",
               touches: tuple[tuple[str, int, bool], ...] = ()
               ) -> rq.Single:
        """``#pragma omp single`` executing ``func`` once."""
        return rq.Single(name, func, touches)

    @property
    def is_master(self) -> bool:
        """``#pragma omp master``: true only on thread 0 (no implied
        barrier — pair with an explicit one when ordering matters)."""
        return self.tid == 0


@dataclass
class ParallelResult:
    """Outcome of one parallel region.

    Attributes:
        memory: The shared-memory mapping after the region (the same numpy
            arrays that were passed in, mutated in place).
        thread_times_ns: Final per-thread clocks.
        elapsed_ns: Region runtime (max thread clock, plus the implicit
            closing barrier).
        races: Data races found (empty unless ``raise_on_race=False``).
        barriers: Explicit barriers executed.
        requests: Total requests executed.
    """

    memory: dict[str, np.ndarray]
    thread_times_ns: list[float]
    elapsed_ns: float
    races: list[RaceReport] = field(default_factory=list)
    barriers: int = 0
    requests: int = 0
    trace: CpuTrace | None = None


class OpenMP:
    """An OpenMP runtime bound to a simulated CPU.

    Args:
        machine: The CPU to run on.
        n_threads: Team size (2 .. machine.max_threads).
        affinity: Thread placement policy.
        detect_races: Run the race detector (raises
            :class:`repro.common.errors.DataRaceError` on the first race).
        collect_races: Collect races into the result instead of raising.
        max_steps: Interpreter step budget (guards against runaway bodies).
        fast: Force the batched fast scheduler on/off; ``None`` follows
            the process default (fast unless ``SYNCPERF_ENGINE=reference``
            or inside :func:`repro.core.engine.reference_engine`).  Race
            detection always runs on the reference scheduler.
        lint: Opt-in static sanitizer check before each region.
            ``True`` or ``"error"`` raises
            :class:`~repro.common.errors.SanitizerError` when
            :mod:`repro.sanitize` reports an ERROR or WARNING for the
            thread body; ``"warn"`` emits a Python warning instead.
    """

    def __init__(self, machine: CpuMachine, n_threads: int,
                 affinity: Affinity = Affinity.DEFAULT,
                 detect_races: bool = True,
                 collect_races: bool = False,
                 relaxed_consistency: bool = True,
                 max_steps: int = 10_000_000,
                 fast: bool | None = None,
                 lint: bool | str = False) -> None:
        if n_threads < 1:
            raise ConfigurationError(
                f"need at least 1 thread, got {n_threads}")
        self.machine = machine
        self.n_threads = n_threads
        self.affinity = affinity
        self.detect_races = detect_races or collect_races
        self.collect_races = collect_races
        self.relaxed_consistency = relaxed_consistency
        self.max_steps = max_steps
        self.fast = fast_path_default() if fast is None else fast
        self.lint = lint
        # A 1-thread region is legal in the interpreter (unlike the
        # measurement sweeps, which start at 2): fall back to a 2-thread
        # placement context for costing, since costs are placement-based.
        self._ctx: CpuRunContext = machine.context(max(n_threads, 2),
                                                   affinity)

    # ------------------------------------------------------------------ #

    def parallel(self, body: ThreadBody,
                 shared: Mapping[str, np.ndarray] | None = None,
                 trace: bool = False) -> ParallelResult:
        """Run ``body`` on every thread of the team to completion.

        Dispatches to the batched fast scheduler
        (:func:`repro.openmp.fastpath.parallel_fast`) when ``fast`` is
        enabled and no race detector is active; the scalar reference
        scheduler below is authoritative and produces identical results.

        Args:
            body: Generator function over a :class:`ThreadContext`.
            shared: Shared arrays by name (mutated in place).
            trace: Record a per-request execution timeline in
                ``result.trace``.

        Raises:
            SanitizerError: when the runtime was built with
                ``lint=True``/``"error"`` and the static sanitizer
                reports a defect in ``body``.
        """
        if self.lint:
            from repro.sanitize import lint_kernel
            lint_kernel(body, "openmp", self.lint)
        with obs_span("omp.parallel", n_threads=self.n_threads,
                      path="fast" if self.fast and not self.detect_races
                      else "reference"):
            if self.fast and not self.detect_races:
                # The dispatcher memoizes whole regions per (body,
                # machine, config, memory-contents) signature; replay
                # hits skip the scheduler entirely.  Identical replay
                # requires identical inputs, so a trace request opts
                # out (the timeline object cannot be replayed).
                ticket = None
                if not trace:
                    from repro.compiler.dispatcher import DISPATCHER
                    ticket = DISPATCHER.begin_omp(self, body, shared)
                result = ticket.replay() if ticket is not None else None
                if result is None and ticket is not None:
                    # Lifted tier: replay a shape-keyed compiled region
                    # plan against the fresh contents (tier 0 misses on
                    # any new input; the plan only needs the structure).
                    result = ticket.run_lifted()
                if result is None:
                    from repro.openmp.fastpath import parallel_fast
                    result = parallel_fast(self, body, shared, trace)
                if ticket is not None:
                    ticket.record(result)
            else:
                result = self._parallel_reference(body, shared, trace)
        if result.trace is not None:
            attach_timeline("openmp", result.trace, "ns")
        return result

    def _parallel_reference(self, body: ThreadBody,
                            shared: Mapping[str, np.ndarray] | None = None,
                            trace: bool = False) -> ParallelResult:
        """The scalar reference scheduler (authoritative semantics)."""
        _C_REGIONS_REFERENCE.add(1)
        memory: dict[str, np.ndarray] = dict(shared or {})
        trace_obj = CpuTrace() if trace else None
        detector = RaceDetector(raise_on_race=not self.collect_races) \
            if self.detect_races else None
        contexts = [ThreadContext(tid, self.n_threads)
                    for tid in range(self.n_threads)]
        gens = [body(tc) for tc in contexts]
        clocks = [0.0] * self.n_threads
        pending_value: list[object] = [None] * self.n_threads
        # Arrival key at a blocking construct: ("barrier", "") or
        # ("single", name); None while running.
        arrival: list[tuple[str, str] | None] = [None] * self.n_threads
        single_requests: list[rq.Single | None] = [None] * self.n_threads
        done = [False] * self.n_threads
        barriers = 0
        budget = StepBudget(self.max_steps, hint="runaway thread body?")
        # Which threads touched each location (for contention costing).
        location_threads: dict[tuple[str, int], set[int]] = {}
        # Lock runtime state.
        lock_holder: dict[str, int] = {}
        held_locks: list[set[str]] = [set() for _ in range(self.n_threads)]
        lock_wait: dict[int, str] = {}
        # Per-thread store buffers (relaxed consistency): plain stores sit
        # here until the thread reaches a flush point.
        store_buffers: list[dict[tuple[str, int], object]] = \
            [{} for _ in range(self.n_threads)]

        def drain(tid: int) -> None:
            """Publish a thread's buffered stores to shared memory."""
            for (var, idx), value in store_buffers[tid].items():
                memory[var].reshape(-1)[idx] = value
            store_buffers[tid].clear()

        def charge(tid: int, op: Op) -> None:
            cost = self.machine.op_cost(op, self._ctx)
            if trace_obj is not None and cost > 0:
                label = op.kind.value.removeprefix("omp_")
                trace_obj.add(tid, label, clocks[tid],
                              clocks[tid] + cost)
            clocks[tid] += cost

        def release_arrivals() -> None:
            """All active threads arrived at the same construct: run a
            single's body if applicable, then synchronize clocks."""
            nonlocal barriers
            barriers += 1
            keys = {arrival[t] for t in range(self.n_threads)
                    if not done[t]}
            assert len(keys) == 1
            key = keys.pop()
            assert key is not None
            for t in range(self.n_threads):
                drain(t)
            if key[0] == "single":
                executor = min(t for t in range(self.n_threads)
                               if not done[t])
                request = single_requests[executor]
                assert request is not None
                for var, idx, is_write in request.touches:
                    self._record(detector, executor, var, idx,
                                 AccessKind.LOCKED_WRITE if is_write
                                 else AccessKind.LOCKED_READ)
                pending_value[executor] = request.func(memory)
            barrier_cost = self.machine.op_cost(
                Op(kind=PrimitiveKind.OMP_BARRIER), self._ctx)
            arrive_time = max(clocks)
            sync_time = arrive_time + barrier_cost
            for t in range(self.n_threads):
                if trace_obj is not None:
                    if clocks[t] < arrive_time:
                        trace_obj.add(t, "wait", clocks[t], arrive_time)
                    trace_obj.add(t, "barrier", arrive_time, sync_time)
                clocks[t] = sync_time
                arrival[t] = None
                single_requests[t] = None
            if detector is not None:
                detector.barrier()
            location_threads.clear()

        while not all(done):
            progressed = False
            for tid in range(self.n_threads):
                if done[tid] or arrival[tid] is not None:
                    continue
                if tid in lock_wait:
                    name = lock_wait[tid]
                    if name in lock_holder:
                        continue  # still held by someone else
                    # The lock freed up: acquire and resume the thread.
                    del lock_wait[tid]
                    lock_holder[name] = tid
                    held_locks[tid].add(name)
                    charge(tid, Op(kind=PrimitiveKind.OMP_LOCK_ACQUIRE))
                    progressed = True
                    continue
                budget.charge()
                try:
                    request = gens[tid].send(pending_value[tid])
                except StopIteration:
                    if held_locks[tid]:
                        raise SimulationError(
                            f"thread {tid} finished while holding "
                            f"lock(s) {sorted(held_locks[tid])}")
                    done[tid] = True
                    progressed = True
                    continue
                pending_value[tid] = None
                progressed = True
                if isinstance(request, (rq.Barrier, rq.Single)):
                    if isinstance(request, rq.Single):
                        arrival[tid] = ("single", request.name)
                        single_requests[tid] = request
                    else:
                        arrival[tid] = ("barrier", "")
                    if any(done):
                        raise SimulationError(
                            "barrier/single reached while some threads "
                            "already finished the region; every thread "
                            "must encounter the same constructs")
                    keys = {arrival[t] for t in range(self.n_threads)
                            if not done[t]}
                    if None not in keys:
                        if len(keys) > 1:
                            raise SimulationError(
                                "threads blocked at different "
                                f"synchronization constructs: "
                                f"{sorted(keys)}")
                        release_arrivals()
                    continue
                if isinstance(request, rq.LockAcquire):
                    drain(tid)  # a lock operation is a flush point
                    if request.name in lock_holder:
                        lock_wait[tid] = request.name
                    else:
                        lock_holder[request.name] = tid
                        held_locks[tid].add(request.name)
                        charge(tid, Op(kind=PrimitiveKind.OMP_LOCK_ACQUIRE))
                    continue
                if isinstance(request, rq.LockRelease):
                    if lock_holder.get(request.name) != tid:
                        raise SimulationError(
                            f"thread {tid} released lock "
                            f"{request.name!r} it does not hold")
                    drain(tid)  # publish the critical section's stores
                    del lock_holder[request.name]
                    held_locks[tid].discard(request.name)
                    charge(tid, Op(kind=PrimitiveKind.OMP_LOCK_RELEASE))
                    continue
                if self.relaxed_consistency and not isinstance(
                        request, (rq.Read, rq.Write)):
                    # Flushes, atomics, and critical sections are flush
                    # points; plain accesses are not.
                    drain(tid)
                buffer = store_buffers[tid] if self.relaxed_consistency \
                    else None
                pending_value[tid] = self._execute(
                    request, tid, memory, detector, location_threads,
                    charge, locked=bool(held_locks[tid]), buffer=buffer)
            if not progressed:
                if lock_wait:
                    raise SimulationError(
                        f"lock deadlock: threads {sorted(lock_wait)} wait "
                        f"on locks {sorted(set(lock_wait.values()))} whose "
                        "holders cannot progress")
                raise SimulationError(
                    "deadlock: no thread can make progress")

        # Implicit barrier at region end: publish everything.
        for t in range(self.n_threads):
            drain(t)
        elapsed = max(clocks) if clocks else 0.0
        elapsed += self.machine.op_cost(
            Op(kind=PrimitiveKind.OMP_BARRIER), self._ctx)
        return ParallelResult(
            memory=memory,
            thread_times_ns=clocks,
            elapsed_ns=elapsed,
            races=list(detector.races) if detector is not None else [],
            barriers=barriers,
            requests=budget.used,
            trace=trace_obj,
        )

    # ------------------------------------------------------------------ #

    def _cost_target(self, var: str, idx: int, dtype,
                     location_threads: dict[tuple[str, int], set[int]],
                     tid: int):
        """Classify a location for costing: contended scalar if several
        threads have touched it this epoch, otherwise a private element on
        its own line."""
        touched = location_threads.setdefault((var, idx), set())
        touched.add(tid)
        if len(touched) > 1:
            return SharedScalar(dtype)
        line = self.machine.topology.line_bytes
        return PrivateArrayElement(dtype, stride=line // dtype.size_bytes)

    @staticmethod
    def _dtype_of(request, memory: dict[str, np.ndarray], var: str):
        if getattr(request, "dtype", None) is not None:
            return request.dtype
        from repro.common.datatypes import DTYPES, INT
        arr = memory.get(var)
        if arr is not None:
            for dt in DTYPES:
                if dt.np_dtype == arr.dtype:
                    return dt
        return INT

    def _execute(self, request, tid: int, memory: dict[str, np.ndarray],
                 detector: RaceDetector | None,
                 location_threads: dict[tuple[str, int], set[int]],
                 charge, locked: bool = False,
                 buffer: dict[tuple[str, int], object] | None = None
                 ) -> object:
        """Execute one non-barrier request; returns the produced value.

        Args:
            locked: The thread holds at least one lock, so its plain
                accesses are lock-protected for the race detector.
            buffer: The thread's store buffer under relaxed consistency
                (plain writes land here; plain reads see it first).
        """
        if isinstance(request, rq.Flush):
            charge(tid, Op(kind=PrimitiveKind.OMP_FLUSH))
            return None
        if isinstance(request, rq.Critical):
            return self._execute_critical(request, tid, memory, detector,
                                          charge)
        if not isinstance(request, rq.MemoryRequest):
            raise SimulationError(
                f"thread {tid} yielded a non-request: {request!r}")

        var, idx = request.var, request.idx
        if var not in memory:
            raise SimulationError(
                f"thread {tid} accessed undeclared shared variable {var!r}")
        arr = memory[var]
        if not 0 <= idx < arr.size:
            raise SimulationError(
                f"thread {tid} accessed {var}[{idx}] out of bounds "
                f"(size {arr.size})")
        dtype = self._dtype_of(request, memory, var)
        target = self._cost_target(var, idx, dtype, location_threads, tid)
        flat = arr.reshape(-1)

        # AtomicCapture extends AtomicUpdate; check the subclass first.
        if isinstance(request, rq.AtomicCapture):
            self._record(detector, tid, var, idx, AccessKind.ATOMIC_WRITE)
            charge(tid, Op(kind=PrimitiveKind.OMP_ATOMIC_CAPTURE,
                           dtype=dtype, target=target))
            old = flat[idx].item()
            new = request.func(old)
            flat[idx] = new
            return old if request.capture_old else new
        if isinstance(request, rq.AtomicUpdate):
            self._record(detector, tid, var, idx, AccessKind.ATOMIC_WRITE)
            charge(tid, Op(kind=PrimitiveKind.OMP_ATOMIC_UPDATE,
                           dtype=dtype, target=target))
            flat[idx] = request.func(flat[idx].item())
            return None
        if isinstance(request, rq.AtomicWrite):
            self._record(detector, tid, var, idx, AccessKind.ATOMIC_WRITE)
            charge(tid, Op(kind=PrimitiveKind.OMP_ATOMIC_WRITE,
                           dtype=dtype, target=target))
            flat[idx] = request.value
            return None
        if isinstance(request, rq.AtomicRead):
            self._record(detector, tid, var, idx, AccessKind.ATOMIC_READ)
            charge(tid, Op(kind=PrimitiveKind.OMP_ATOMIC_READ,
                           dtype=dtype, target=target))
            return flat[idx].item()
        if isinstance(request, rq.Write):
            self._record(detector, tid, var, idx,
                         AccessKind.LOCKED_WRITE if locked
                         else AccessKind.PLAIN_WRITE)
            charge(tid, Op(kind=PrimitiveKind.PLAIN_UPDATE,
                           dtype=dtype, target=target))
            if buffer is not None:
                buffer[(var, idx)] = request.value
            else:
                flat[idx] = request.value
            return None
        if isinstance(request, rq.Read):
            self._record(detector, tid, var, idx,
                         AccessKind.LOCKED_READ if locked
                         else AccessKind.PLAIN_READ)
            charge(tid, Op(kind=PrimitiveKind.PLAIN_READ,
                           dtype=dtype, target=target))
            if buffer is not None and (var, idx) in buffer:
                return buffer[(var, idx)]
            return flat[idx].item()
        raise SimulationError(f"unknown request {request!r}")

    def _execute_critical(self, request: rq.Critical, tid: int,
                          memory: dict[str, np.ndarray],
                          detector: RaceDetector | None, charge) -> object:
        from repro.common.datatypes import INT
        dtype = request.dtype or INT
        charge(tid, Op(kind=PrimitiveKind.OMP_CRITICAL_UPDATE, dtype=dtype,
                       target=SharedScalar(dtype)))
        for var, idx, is_write in request.touches:
            self._record(detector, tid, var, idx,
                         AccessKind.LOCKED_WRITE if is_write
                         else AccessKind.LOCKED_READ)
        return request.func(memory)

    @staticmethod
    def _record(detector: RaceDetector | None, tid: int, var: str, idx: int,
                kind: AccessKind) -> None:
        if detector is not None:
            detector.record(tid, var, idx, kind)
