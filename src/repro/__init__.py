"""repro — reproduction of *Characterizing CUDA and OpenMP Synchronization
Primitives* (Burtchell & Burtscher, IISWC 2024) on simulated substrates.

Layers, bottom to top:

* :mod:`repro.common`, :mod:`repro.mem` — data types, cache-line geometry,
  coherence cost accounting.
* :mod:`repro.cpu`, :mod:`repro.gpu` — the simulated machines of Table I.
* :mod:`repro.compiler` — op IR and the dead-code-elimination model.
* :mod:`repro.core` — the paper's measurement framework (baseline/test
  subtraction, 9-run/7-attempt median protocol, throughput conversion).
* :mod:`repro.openmp`, :mod:`repro.cuda` — API layers with functional
  interpreters (real programs over numpy memory, race detection on CPU,
  warp-synchronous execution on GPU).
* :mod:`repro.reductions` — the five Listing 1 reductions.
* :mod:`repro.experiments` — one module per paper figure/table, with
  claim checks; ``syncperf`` CLI.
* :mod:`repro.analysis` — trend predicates and ASCII charts.
* :mod:`repro.advisor` — the paper's recommendations as a queryable API.

Quickstart::

    from repro import (MeasurementEngine, MeasurementSpec, SYSTEM3_CPU,
                       Affinity)
    from repro.compiler.ops import op_barrier

    engine = MeasurementEngine(SYSTEM3_CPU)
    spec = MeasurementSpec.single("barrier", op_barrier())
    ctx = SYSTEM3_CPU.context(8, Affinity.SPREAD)
    result = engine.measure(spec, ctx)
    print(result.throughput, "barriers/s per thread")
"""

from repro.common.datatypes import DOUBLE, DTYPES, FLOAT, INT, ULL, DataType
from repro.common.errors import (
    ConfigurationError,
    DataRaceError,
    MeasurementError,
    ReproError,
    SimulationError,
)
from repro.core.engine import MeasurementEngine
from repro.core.protocol import MeasurementProtocol
from repro.core.results import MeasurementResult, Series, SweepResult
from repro.core.spec import MeasurementSpec
from repro.cpu.affinity import Affinity
from repro.cpu.machine import CpuMachine
from repro.cpu.presets import SYSTEM1_CPU, SYSTEM2_CPU, SYSTEM3_CPU, \
    cpu_preset
from repro.cpu.topology import CpuTopology
from repro.cuda.interpreter import Cuda
from repro.gpu.device import GpuDevice
from repro.gpu.presets import SYSTEM1_GPU, SYSTEM2_GPU, SYSTEM3_GPU, \
    gpu_preset
from repro.gpu.spec import LaunchConfig, GpuSpec
from repro.openmp.interpreter import OpenMP

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data types
    "DataType", "DTYPES", "INT", "ULL", "FLOAT", "DOUBLE",
    # errors
    "ReproError", "ConfigurationError", "MeasurementError",
    "SimulationError", "DataRaceError",
    # measurement framework
    "MeasurementEngine", "MeasurementProtocol", "MeasurementSpec",
    "MeasurementResult", "Series", "SweepResult",
    # machines
    "CpuMachine", "CpuTopology", "Affinity",
    "SYSTEM1_CPU", "SYSTEM2_CPU", "SYSTEM3_CPU", "cpu_preset",
    "GpuDevice", "GpuSpec", "LaunchConfig",
    "SYSTEM1_GPU", "SYSTEM2_GPU", "SYSTEM3_GPU", "gpu_preset",
    # runtimes
    "OpenMP", "Cuda",
]
