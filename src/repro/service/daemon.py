"""Asyncio HTTP/JSON front-end of the measurement service.

A deliberately small, dependency-free HTTP/1.1 server (``asyncio``
streams; no frameworks) exposing three endpoints:

``POST /measure``
    Body: a JSON measure request (:class:`repro.service.catalog.
    MeasureRequest` wire format).  Responds 200 with the terminal
    response dict for ``served`` *and* ``degraded`` (a degraded answer
    is a success with an explicit staleness label, not an error), 400
    for invalid requests, 503 when the service is unavailable (circuit
    open / workers lost / deadline) with no cache to fall back on, and
    500 for anything else.  Measurements block worker processes, so
    submissions run on an executor thread — the event loop itself only
    ever parses and serializes.

``GET /metrics``
    Prometheus text exposition of the service's counters (service,
    dispatch, and cache families) — as deltas against the daemon's
    start so one process can host sequential daemons without leaking
    counts across them — plus latency gauges and the full
    ``syncperf_service_latency_ms`` histogram triple.

``GET /healthz``
    JSON liveness: version, worker restarts and per-worker heartbeat
    detail, per-stream breaker states, latency percentiles, and the
    primitive catalogue.

``GET /trace/<id>``
    The stitched cross-process trace for one ``trace_id`` previously
    returned by ``/measure`` — daemon, worker, and engine span records
    sharing that id — or 404 when unknown/evicted.

``GET /dashboard``
    A self-contained SVG/HTML ops page (latency histogram, dispatch
    tier mix, serving mix, breaker/worker tables) rendered through
    :mod:`repro.obs.dashboard`.

Connections are one-shot (``Connection: close``): the client mix is
benchmarks and smoke tests, where per-request sockets keep failure
attribution trivial.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs.dashboard import render_dashboard
from repro.obs.export import prometheus_text
from repro.obs.metrics import REGISTRY
from repro.service.catalog import CATALOG
from repro.service.core import MeasurementService
from repro.service.policy import EXIT_CONFIG, EXIT_UNAVAILABLE

#: Largest accepted request body; a measure request is ~100 bytes.
MAX_BODY_BYTES = 64 * 1024

#: Counter families exposed (and baselined) by ``GET /metrics``.
METRIC_PREFIXES = ("service.", "dispatch.", "cache.")

#: Series name of the served-latency histogram exposition.
LATENCY_SERIES = "syncperf_service_latency_ms"


class _Html(str):
    """Marker subclass: respond as ``text/html``, not ``text/plain``."""

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable"}


def _http_status(response: dict) -> int:
    """Map a terminal service response onto an HTTP status."""
    if response.get("status") in ("served", "degraded"):
        return 200
    exit_code = response.get("exit_code")
    if exit_code == EXIT_CONFIG:
        return 400
    if exit_code == EXIT_UNAVAILABLE:
        return 503
    return 500


class ServiceDaemon:
    """One HTTP daemon wrapping a :class:`MeasurementService`.

    Args:
        service: The service to expose.
        host: Bind address (loopback by default; this is a lab tool).
        port: Bind port (0 = ephemeral; read :attr:`port` after start).
        max_concurrency: Executor threads for in-flight submissions.
    """

    def __init__(self, service: MeasurementService,
                 host: str = "127.0.0.1", port: int = 0,
                 max_concurrency: int = 8) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency,
            thread_name_prefix="service-submit")
        self._server: asyncio.AbstractServer | None = None
        self._counter_baseline: dict[str, int] = {}
        self._started = threading.Event()

    # --------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind and start serving (resolves :attr:`port`)."""
        self._counter_baseline = {
            name: value for name, value in REGISTRY.counters().items()
            if name.startswith(METRIC_PREFIXES)}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def run_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread; returns once the port is bound.

        The embedding entry for tests and the smoke harness: the caller
        keeps the main thread (e.g. to drive a load generator) and the
        daemon dies with the process.
        """
        def main() -> None:
            asyncio.run(self.serve_forever())

        thread = threading.Thread(target=main, daemon=True,
                                  name="service-daemon")
        thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("service daemon failed to bind in 10s")
        return thread

    # ---------------------------------------------------------- protocol

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._handle_request(reader)
        except Exception as exc:  # noqa: BLE001 - protocol catch-all
            status = 500
            body = {"status": "failed", "error": type(exc).__name__,
                    "message": str(exc)}
        try:
            await self._respond(writer, status, body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, dict | str]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line "
                                  f"{request_line!r}"}
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        if path == "/measure":
            if method != "POST":
                return 405, {"error": "POST /measure"}
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                return 400, {"error": "bad Content-Length"}
            if length > MAX_BODY_BYTES:
                return 413, {"error": f"body over {MAX_BODY_BYTES}B"}
            raw = await reader.readexactly(length) if length else b""
            try:
                payload = json.loads(raw.decode() or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"status": "failed", "error": "BadRequest",
                             "message": f"body is not JSON: {exc}"}
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                self._executor, self.service.submit, payload)
            return _http_status(response), response
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET /metrics"}
            return 200, self._metrics_text()
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET /healthz"}
            health = self.service.health()
            health["catalog"] = {name: entry.description
                                 for name, entry in sorted(
                                     CATALOG.items())}
            return 200, health
        if path.startswith("/trace/"):
            if method != "GET":
                return 405, {"error": "GET /trace/<id>"}
            trace_id = path[len("/trace/"):]
            spans = self.service.traces.get(trace_id)
            if spans is None:
                return 404, {"error": f"unknown trace {trace_id!r}"}
            return 200, {"trace_id": trace_id, "spans": spans}
        if path == "/dashboard":
            if method != "GET":
                return 405, {"error": "GET /dashboard"}
            return 200, _Html(self._dashboard_html())
        return 404, {"error": f"no route for {path}"}

    def _dashboard_html(self) -> str:
        """The ops dashboard rendered from the live service."""
        counters = {
            name: value - self._counter_baseline.get(name, 0)
            for name, value in REGISTRY.counters().items()
            if name.startswith(METRIC_PREFIXES)}
        return render_dashboard(self.service.health(), counters,
                                self.service.latency)

    def _metrics_text(self) -> str:
        """Counter deltas since daemon start, gauges, and the latency
        histogram exposition."""
        counters = {
            name: value - self._counter_baseline.get(name, 0)
            for name, value in REGISTRY.counters().items()
            if name.startswith(METRIC_PREFIXES)}
        gauges = {name: value
                  for name, value in REGISTRY.gauges().items()
                  if name.startswith("service.")}
        text = prometheus_text(counters, gauges)
        hist_lines = self.service.latency.prometheus_lines(
            LATENCY_SERIES)
        return text + "\n".join(hist_lines) + "\n"

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: dict | str) -> None:
        if isinstance(body, _Html):
            payload = body.encode()
            content_type = "text/html; charset=utf-8"
        elif isinstance(body, str):
            payload = body.encode()
            content_type = "text/plain; version=0.0.4"
        else:
            payload = (json.dumps(body, indent=1, default=str)
                       + "\n").encode()
            content_type = "application/json"
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}"
                f"\r\nContent-Type: {content_type}"
                f"\r\nContent-Length: {len(payload)}"
                f"\r\nConnection: close\r\n\r\n")
        writer.write(head.encode() + payload)
        await writer.drain()
