"""Measurement requests: the catalogue, validation, and execution.

A request names a synchronization primitive from a fixed catalogue
("cost of ``omp_atomic`` at 16 threads on the AMD preset"), a paper
system preset, a parallelism level, and a data type.  This module owns:

* :data:`CATALOG` — primitive name -> spec builder + substrate kind,
  built on the same spec builders the figure experiments use
  (:mod:`repro.experiments.base`), so a service answer and a campaign
  sweep point are the *same measurement*;
* :class:`MeasureRequest` — the validated, canonical request object
  (validation errors are :class:`~repro.common.errors.
  ConfigurationError`, i.e. permanent in the retry taxonomy);
* :func:`execute_request` — the pure measurement: deterministic in
  (request, fault scenario, protocol seed), which is what makes the
  content-addressed cache statistically honest — a cached answer is
  byte-identical to remeasuring.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from repro.common.datatypes import DTYPES, DataType
from repro.common.errors import ConfigurationError
from repro.compiler.ops import PrimitiveKind, Scope
from repro.core.engine import MeasurementEngine
from repro.core.protocol import MeasurementProtocol
from repro.core.results import MeasurementResult
from repro.experiments import base as specs
from repro.gpu.spec import LaunchConfig

#: Data types by DSL name (``int``, ``ull``, ``float``, ``double``).
DTYPE_BY_NAME: dict[str, DataType] = {dt.name: dt for dt in DTYPES}


@dataclass(frozen=True)
class PrimitiveDef:
    """One measurable primitive of the service catalogue.

    Attributes:
        name: Catalogue key (the request's ``primitive`` field).
        substrate: ``"cpu"`` (OpenMP) or ``"gpu"`` (CUDA).
        builder: ``dtype -> MeasurementSpec``.
        description: Human-readable summary (``/healthz`` lists these).
    """

    name: str
    substrate: str
    builder: object
    description: str


def _catalog() -> dict[str, PrimitiveDef]:
    entries = [
        PrimitiveDef("omp_barrier", "cpu",
                     lambda dt: specs.omp_barrier_spec(),
                     "explicit OpenMP barrier (Fig. 1)"),
        PrimitiveDef("omp_atomic", "cpu",
                     specs.omp_atomic_update_scalar_spec,
                     "OpenMP atomic update on a shared scalar (Fig. 2)"),
        PrimitiveDef("omp_atomic_write", "cpu",
                     specs.omp_atomic_write_spec,
                     "OpenMP atomic write (Fig. 4)"),
        PrimitiveDef("omp_critical", "cpu",
                     specs.omp_critical_spec,
                     "addition under omp critical (Fig. 5)"),
        PrimitiveDef("cuda_syncthreads", "gpu",
                     lambda dt: specs.cuda_syncthreads_spec(),
                     "CUDA __syncthreads() (Fig. 7)"),
        PrimitiveDef("cuda_syncwarp", "gpu",
                     lambda dt: specs.cuda_syncwarp_spec(),
                     "CUDA __syncwarp() (Fig. 8)"),
        PrimitiveDef("cuda_atomicadd", "gpu",
                     lambda dt: specs.cuda_atomic_scalar_spec(
                         PrimitiveKind.ATOMIC_ADD, dt),
                     "CUDA atomicAdd() on a shared scalar (Fig. 9)"),
        PrimitiveDef("cuda_threadfence", "gpu",
                     lambda dt: specs.cuda_fence_spec(Scope.DEVICE, dt,
                                                      stride=8),
                     "CUDA __threadfence() (Fig. 14)"),
    ]
    return {entry.name: entry for entry in entries}


#: The service's primitive catalogue, by request name.
CATALOG: dict[str, PrimitiveDef] = _catalog()

#: Request fields accepted over the wire (anything else is rejected —
#: a typo'd field must not silently produce a different measurement).
REQUEST_FIELDS = ("primitive", "system", "threads", "blocks", "dtype",
                  "n_runs")

_VALID_SYSTEMS = (1, 2, 3)
_MAX_RUNS = 64


@dataclass(frozen=True)
class MeasureRequest:
    """One validated measurement request.

    Attributes:
        primitive: Catalogue key (see :data:`CATALOG`).
        system: Paper system preset (1-3; 3 is the AMD part).
        threads: OpenMP thread count, or CUDA threads per block.
        blocks: CUDA grid blocks (ignored on the CPU substrate).
        dtype: Data type name (``int``/``ull``/``float``/``double``).
        n_runs: Protocol runs override (None = the paper's 9).
    """

    primitive: str
    system: int = 3
    threads: int = 16
    blocks: int = 2
    dtype: str = "int"
    n_runs: int | None = None

    @classmethod
    def from_json(cls, payload: object) -> "MeasureRequest":
        """Validate a wire-format dict into a request.

        Raises:
            ConfigurationError: Unknown fields, unknown primitive or
                dtype, out-of-range system/threads/blocks/n_runs.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"measure request must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = sorted(set(payload) - set(REQUEST_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown request field(s) {unknown}; valid fields: "
                f"{list(REQUEST_FIELDS)}")
        if "primitive" not in payload:
            raise ConfigurationError(
                "measure request is missing 'primitive'; available: "
                f"{sorted(CATALOG)}")
        values = {name: payload[name] for name in REQUEST_FIELDS
                  if name in payload}
        for name in ("system", "threads", "blocks", "n_runs"):
            if name in values and values[name] is not None and \
                    not isinstance(values[name], int):
                raise ConfigurationError(
                    f"request field {name!r} must be an integer, got "
                    f"{values[name]!r}")
        request = cls(**values)
        request.resolve()  # validate eagerly, before any dispatch
        return request

    def resolve(self) -> tuple[PrimitiveDef, DataType]:
        """Look up and validate the catalogue entry and data type.

        Raises:
            ConfigurationError: Anything out of catalogue or range.
        """
        entry = CATALOG.get(self.primitive)
        if entry is None:
            raise ConfigurationError(
                f"unknown primitive {self.primitive!r}; available: "
                f"{sorted(CATALOG)}")
        dtype = DTYPE_BY_NAME.get(self.dtype)
        if dtype is None:
            raise ConfigurationError(
                f"unknown dtype {self.dtype!r}; available: "
                f"{sorted(DTYPE_BY_NAME)}")
        if self.system not in _VALID_SYSTEMS:
            raise ConfigurationError(
                f"unknown system {self.system}; the paper tests "
                f"systems {list(_VALID_SYSTEMS)}")
        if entry.substrate == "cpu":
            from repro.cpu.presets import cpu_preset
            machine = cpu_preset(self.system)
            if not 2 <= self.threads <= machine.max_threads:
                raise ConfigurationError(
                    f"threads must be in [2, {machine.max_threads}] on "
                    f"system {self.system}, got {self.threads}")
        else:
            if not 1 <= self.threads <= 1024:
                raise ConfigurationError(
                    f"CUDA threads per block must be in [1, 1024], "
                    f"got {self.threads}")
            if self.blocks < 1:
                raise ConfigurationError(
                    f"CUDA grid blocks must be >= 1, got {self.blocks}")
        if self.n_runs is not None and \
                not 1 <= self.n_runs <= _MAX_RUNS:
            raise ConfigurationError(
                f"n_runs must be in [1, {_MAX_RUNS}], got {self.n_runs}")
        return entry, dtype

    def canonical(self) -> dict:
        """The request as a canonical JSON-ready dict (cache identity)."""
        return asdict(self)

    def label(self) -> str:
        """The jitter-stream label of this request's sweep point."""
        entry = CATALOG[self.primitive]
        if entry.substrate == "cpu":
            return f"t={self.threads}"
        return f"b={self.blocks}/t={self.threads}"

    def describe(self) -> str:
        """Compact one-line id (checkpoint keys, log lines)."""
        return (f"{self.primitive}/s{self.system}/b{self.blocks}"
                f"/t{self.threads}/{self.dtype}"
                + (f"/r{self.n_runs}" if self.n_runs else ""))


def execute_request(request: MeasureRequest,
                    protocol: MeasurementProtocol | None = None) -> dict:
    """Run the measurement protocol for one request.

    Builds the machine preset, resolves the spec from the catalogue,
    and executes the engine's full baseline/test protocol.  An ambient
    fault scenario (:func:`repro.faults.scenario.use_faults`) is picked
    up by the engine exactly as in a CLI campaign.

    Returns:
        The JSON-ready measurement payload (:func:`result_to_json`).

    Raises:
        ConfigurationError: Invalid request.
        MeasurementError: Protocol exhausted by injected faults.
    """
    entry, dtype = request.resolve()
    if request.n_runs is not None:
        base = protocol or MeasurementProtocol()
        from dataclasses import replace
        protocol = replace(base, n_runs=request.n_runs)
    spec = entry.builder(dtype)
    if entry.substrate == "cpu":
        from repro.cpu.presets import cpu_preset
        machine = cpu_preset(request.system)
        ctx = machine.context(request.threads)
    else:
        from repro.gpu.presets import gpu_preset
        machine = gpu_preset(request.system)
        ctx = machine.context(
            LaunchConfig(request.blocks, request.threads))
    engine = MeasurementEngine(machine, protocol=protocol)
    result = engine.measure(spec, ctx, label=request.label())
    return result_to_json(result)


def _finite(value: float | None) -> float | None:
    """JSON-safe float: non-finite values become None."""
    if value is None or not math.isfinite(value):
        return None
    return value


def result_to_json(result: MeasurementResult) -> dict:
    """Serialize a measurement result for the wire and the cache."""
    return {
        "spec_name": result.spec_name,
        "unit": result.unit,
        "baseline_median": _finite(result.baseline_median),
        "test_median": _finite(result.test_median),
        "per_op_time": _finite(result.per_op_time),
        "throughput": _finite(result.throughput),
        "naive_per_op_time": _finite(result.naive_per_op_time),
        "valid_fraction": _finite(result.valid_fraction),
        "unrecordable": result.unrecordable,
        "eliminated": list(result.eliminated),
        "dropped_runs": result.dropped_runs,
        "escalations": result.escalations,
        "within_timer_accuracy": result.within_timer_accuracy,
    }
