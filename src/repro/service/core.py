"""The measurement service: request orchestration and degradation.

:class:`MeasurementService` turns a wire-format request into exactly one
of three terminal responses — the invariant the chaos harness audits:

* ``served`` — a fresh measurement (or a fresh-enough cache hit);
* ``degraded`` — the live path is unhealthy (circuit open, retries
  exhausted) and a *stale* cache entry answered instead, explicitly
  labeled with its age and the failure that forced the fallback;
* ``failed`` — no measurement and no fallback; carries the taxonomy
  error name and exit code.

Every submission increments ``service.requests`` and exactly one of
``service.served`` / ``service.degraded`` / ``service.failed``, so
``requests == served + degraded + failed`` holds at every quiescent
point — that reconciliation is checked in CI.

The failure policy is the shared layer (:mod:`repro.service.policy`):
transient faults (measurement exhaustion, worker loss, deadlines) are
retried with seeded exponential backoff; permanent ones (configuration
errors) fail immediately; repeated failures of one (primitive, system)
stream trip that stream's circuit breaker so a known-bad configuration
stops burning workers and falls back to the cache at the door.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    WorkerLost,
)
from repro.core.protocol import MeasurementProtocol
from repro.experiments.campaign import (
    CampaignCheckpoint,
    ExperimentOutcome,
    campaign_fingerprint,
)
from repro.faults.process import ProcessFaultPlan
from repro.faults.scenario import FaultScenario, use_faults
from repro.obs import event as obs_event
from repro.obs import span as obs_span
from repro.obs.context import (
    TraceContext,
    TraceStore,
    current_context,
    maybe_context,
    traced_execution,
)
from repro.obs.flight import FLIGHT
from repro.obs.hist import LatencyHistogram
from repro.obs.metrics import counter as _counter
from repro.obs.metrics import counters_delta, counters_snapshot
from repro.obs.metrics import gauge as _gauge
from repro.obs.recorder import get_recorder
from repro.service.cache import ResultCache, cache_key
from repro.service.catalog import MeasureRequest, execute_request
from repro.service.policy import (
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    error_exit_code,
    error_name_exit_code,
    rebuild_exception,
    retryable_error_name,
)
from repro.service.workers import ATTRIBUTION_PREFIXES, WorkerPool

_C_REQUESTS = _counter("service.requests")
_C_SERVED = _counter("service.served")
_C_DEGRADED = _counter("service.degraded")
_C_FAILED = _counter("service.failed")
_C_RETRIES = _counter("service.retries")
_C_COALESCED = _counter("service.coalesced")
_C_BREAKER_OPEN = _counter("service.breaker_open")
_C_CACHE_HIT = _counter("service.cache_hit")
_C_CACHE_STALE = _counter("service.cache_stale_served")
_G_LAT_P50 = _gauge("service.latency_p50_ms")
_G_LAT_P99 = _gauge("service.latency_p99_ms")

#: Worker-pool verdicts that mean the *infrastructure* failed, not the
#: measurement: each maps to its taxonomy exception class.
_INFRA_ERRORS = {
    "worker_crash": WorkerLost,
    "worker_hang": WorkerLost,
    "deadline": DeadlineExceeded,
}

#: Dispatch-tier evidence counters, in precedence order: the tier a
#: request was served by is the one whose counter moved during its
#: execution (ties broken cheapest-first).
_TIER_COUNTERS = (
    ("replay", "dispatch.hit"),
    ("shape", "dispatch.shape_hit"),
    ("disk", "dispatch.disk_hit"),
    ("lift", "dispatch.compile"),
)

#: Counter families surfaced in per-response attribution (the ones a
#: client can reconcile against ``/metrics``); the rest of the shipped
#: prefixes still fold into the parent registry.
_ATTR_COUNTER_PREFIXES = ("dispatch.", "cache.")


def dispatch_tier(counters: dict[str, int]) -> str:
    """Name the dispatch tier a request's counter deltas evidence.

    ``replay`` (content-keyed replay hit), ``shape`` (shape-keyed
    in-memory plan), ``disk`` (on-disk plan store), ``lift`` (plans
    compiled this request), else ``interpret`` — nothing moved, the
    launch ran on the plain interpreter (or fell back).
    """
    best_tier, best_delta = "interpret", 0
    for tier, name in _TIER_COUNTERS:
        delta = counters.get(name, 0)
        if delta > best_delta:
            best_tier, best_delta = tier, delta
    return best_tier


class _Attribution:
    """Per-request attribution accumulator.

    One instance rides through a submission and absorbs each attempt's
    outcome — worker pid, shipped counter deltas, remote spans — so the
    terminal response can say *how* it was served: the serving path,
    the dispatch tier evidenced by ``dispatch.*`` deltas, retries, and
    the breaker state at termination.
    """

    __slots__ = ("trace_id", "serving", "worker_pid", "attempts",
                 "breaker", "counters", "spans")

    def __init__(self, ctx: TraceContext | None) -> None:
        self.trace_id = ctx.trace_id if ctx is not None else None
        self.serving: str | None = None
        self.worker_pid: int | None = None
        self.attempts = 0
        self.breaker: str | None = None
        self.counters: dict[str, int] = {}
        self.spans: list[dict] = []

    def absorb(self, outcome: dict) -> None:
        """Fold one attempt's shipped pid/deltas/spans in."""
        pid = outcome.get("pid")
        if pid is not None:
            self.worker_pid = pid
        for name, delta in (outcome.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + delta
        spans = outcome.get("spans")
        if spans:
            self.spans.extend(spans)

    def as_dict(self) -> dict:
        """The response's ``attribution`` field."""
        counters = {name: value
                    for name, value in sorted(self.counters.items())
                    if name.startswith(_ATTR_COUNTER_PREFIXES)}
        record = {
            "serving": self.serving or "none",
            "tier": dispatch_tier(self.counters)
            if self.serving == "measured" else None,
            "worker_pid": self.worker_pid,
            "attempts": self.attempts,
            "retries": max(0, self.attempts - 1),
            "breaker": self.breaker,
            "counters": counters,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        return record


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance.

    Attributes:
        workers: Worker processes.  ``0`` executes inline in the
            calling thread — no isolation, no process faults, no
            deadline enforcement — for benchmarks and fast unit tests.
        deadline_s: Per-dispatch wall-clock budget.
        retry: Backoff policy for transient failures.
        breaker_failures: Consecutive failures that open a stream's
            circuit breaker.
        breaker_reset_s: Open-state cooldown before a half-open probe.
        heartbeat_timeout_s: Worker heartbeat staleness = hang.
        cache_dir: Result-cache root (None disables caching *and*
            graceful degradation).
        cache_ttl_s: Entry age at which a hit stops being fresh; stale
            entries only answer degraded requests.
        cache_max_entries: Result-cache entry ceiling (oldest-mtime
            eviction on put; ``cache.evictions``); None = unbounded.
        plan_cache_dir: Root for the dispatcher's on-disk lifted-plan
            store (:class:`repro.compiler.store.PlanStore`).  Configured
            process-wide *before* the worker pool forks, so cold
            service workers warm their dispatch tier from disk instead
            of re-capturing per process; None leaves the dispatcher
            memory-only (or on whatever ``SYNCPERF_PLAN_CACHE`` set).
        checkpoint_path: Optional request-ledger manifest
            (:class:`CampaignCheckpoint`), durable across kills.
        scenario: Measurement-time fault scenario active in workers.
        fault_plan: Process-level fault plan (crash/hang/slow).
        attribution: Attach per-request attribution (serving path,
            dispatch tier, worker pid, retries, breaker state) to
            every terminal response.  Default on; the bench baseline
            turns it off to price the machinery.
        flight_dir: When set, worker retirements dump the flight
            recorder here for post-mortems (chaos-audited).
        trace_max: Distinct traces the in-memory store retains for
            ``GET /trace/<id>`` (oldest evicted).
    """

    workers: int = 2
    deadline_s: float = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failures: int = 5
    breaker_reset_s: float = 30.0
    heartbeat_timeout_s: float = 1.0
    cache_dir: str | Path | None = None
    cache_ttl_s: float = 3600.0
    cache_max_entries: int | None = None
    plan_cache_dir: str | Path | None = None
    checkpoint_path: str | Path | None = None
    scenario: FaultScenario | None = None
    fault_plan: ProcessFaultPlan | None = None
    attribution: bool = True
    flight_dir: str | Path | None = None
    trace_max: int = 512


class _Flight:
    """One in-flight request digest other threads can wait on."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None


class MeasurementService:
    """Supervised, cached, circuit-broken measurement front-end.

    Thread-safe: the daemon calls :meth:`submit` from a thread pool.

    Args:
        config: Service tunables.
        sleep: Backoff sleep (injectable so tests run instantly).
        clock: Monotonic clock for breakers and latency (injectable).
    """

    def __init__(self, config: ServiceConfig | None = None,
                 sleep=time.sleep, clock=time.monotonic) -> None:
        self.config = config or ServiceConfig()
        self._sleep = sleep
        self._clock = clock
        self.fingerprint = dict(
            campaign_fingerprint(self.config.scenario,
                                 MeasurementProtocol()),
            service=repro.__version__)
        self.cache: ResultCache | None = None
        if self.config.cache_dir is not None:
            self.cache = ResultCache(
                self.config.cache_dir,
                max_entries=self.config.cache_max_entries)
        if self.config.plan_cache_dir is not None:
            # Before the pool forks, so workers inherit the store and a
            # cold process warms its dispatch tier from disk.
            from repro.compiler.dispatcher import DISPATCHER
            from repro.compiler.store import PlanStore
            DISPATCHER.plan_store = PlanStore(
                str(self.config.plan_cache_dir))
        self.pool: WorkerPool | None = None
        if self.config.workers > 0:
            self.pool = WorkerPool(
                self.config.workers,
                heartbeat_timeout_s=self.config.heartbeat_timeout_s,
                scenario=self.config.scenario,
                fault_plan=self.config.fault_plan,
                plan_cache_dir=self.config.plan_cache_dir,
                flight_dir=self.config.flight_dir)
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._checkpoint: CampaignCheckpoint | None = None
        self._checkpoint_lock = threading.Lock()
        if self.config.checkpoint_path is not None:
            self._checkpoint = CampaignCheckpoint.open(
                self.config.checkpoint_path,
                fingerprint=self.fingerprint, resume=True)
        #: Served-latency distribution (O(1) observe; percentiles only
        #: at snapshot time — ``/healthz``, ``/metrics``, dashboard).
        self.latency = LatencyHistogram()
        #: Stitched cross-process traces for ``GET /trace/<id>``.
        self.traces = TraceStore(max_traces=self.config.trace_max)
        self._flights: dict[str, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._request_index = len(
            self._checkpoint.state["experiments"]) \
            if self._checkpoint else 0
        self._inline_seq = 0
        self._inline_lock = threading.Lock()
        # The in-flight submission's attribution accumulator, keyed by
        # handling thread so the orchestration chain keeps its public
        # method signatures (each daemon executor thread handles one
        # submission at a time).
        self._attr_local = threading.local()

    # ------------------------------------------------------------ API

    def submit(self, payload: object) -> dict:
        """Process one wire-format request to a terminal response.

        Never raises: every exception, including unforeseen internal
        ones, terminates as a counted ``failed`` response.

        A dict payload may carry a ``"trace"`` field (wire-format
        :class:`TraceContext`); it is stripped before request
        validation — trace identity must never reach the cache key —
        and becomes the thread's current context for the submission.
        Traced responses gain a top-level ``trace_id`` and the stitched
        spans land in :attr:`traces`.
        """
        _C_REQUESTS.add()
        payload, ctx = self._extract_trace(payload)
        attribution = _Attribution(ctx)
        self._attr_local.value = attribution
        start = self._clock()
        try:
            with maybe_context(ctx), obs_span("service.request"):
                response = self._handle(payload)
        except BaseException as exc:  # noqa: BLE001 - terminal catch-all
            response = {
                "status": "failed",
                "error": type(exc).__name__,
                "message": str(exc),
                "exit_code": error_exit_code(exc),
            }
            if self.config.attribution and "attribution" not in response:
                attribution.serving = attribution.serving or "none"
                response["attribution"] = attribution.as_dict()
        finally:
            self._attr_local.value = None
        end = self._clock()
        latency_ms = (end - start) * 1e3
        response["latency_ms"] = round(latency_ms, 3)
        self._count(response)
        self._observe_latency(latency_ms)
        self._record_trace(ctx, attribution, response, start, end)
        FLIGHT.record("service.response",
                      status=response.get("status"),
                      serving=attribution.serving,
                      latency_ms=response["latency_ms"],
                      trace_id=attribution.trace_id)
        self._ledger(payload, response)
        return response

    def health(self) -> dict:
        """Liveness snapshot for ``/healthz``."""
        with self._breaker_lock:
            breakers = {f"{prim}/s{system}": breaker.state
                        for (prim, system), breaker
                        in sorted(self._breakers.items())}
        p50, p99 = self.latency_snapshot()
        return {
            "status": "ok",
            "version": repro.__version__,
            "workers": self.config.workers,
            "worker_restarts": self.pool.restarts if self.pool else 0,
            "restart_reasons": dict(sorted(
                self.pool.restart_reasons.items())) if self.pool else {},
            "workers_detail": self.pool.worker_stats()
            if self.pool else [],
            "breakers": breakers,
            "latency_p50_ms": p50,
            "latency_p99_ms": p99,
            "latency_count": self.latency.count,
        }

    def latency_snapshot(self) -> tuple[float, float]:
        """Current (p50, p99) from the histogram; refreshes the gauges.

        The only place percentiles are computed — the per-request path
        just buckets (the old implementation sorted the whole latency
        window on every request).
        """
        p50, p99 = self.latency.percentiles(0.50, 0.99)
        _G_LAT_P50.set(p50)
        _G_LAT_P99.set(p99)
        return p50, p99

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "MeasurementService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------- orchestration

    def _attribution(self) -> _Attribution:
        """This thread's in-flight attribution accumulator."""
        attribution = getattr(self._attr_local, "value", None)
        if attribution is None:  # pragma: no cover - direct method use
            attribution = _Attribution(None)
            self._attr_local.value = attribution
        return attribution

    def _handle(self, payload: object) -> dict:
        attribution = self._attribution()
        request = MeasureRequest.from_json(payload)
        # The request digest keys both the result cache and in-flight
        # coalescing, so it is computed even when caching is off.
        key = cache_key(request.canonical(),
                        json.dumps(self.fingerprint, sort_keys=True),
                        repro.__version__)
        if self.cache is not None:
            entry = self.cache.get(key)
            if entry is not None and \
                    entry.age_seconds <= self.config.cache_ttl_s:
                _C_CACHE_HIT.add()
                attribution.serving = "cache_hit"
                response = {"status": "served", "cache": "hit",
                            "request": request.canonical(),
                            "result": entry.result,
                            "age_seconds": round(entry.age_seconds, 3)}
                if self.config.attribution:
                    response["attribution"] = attribution.as_dict()
                return response

        # Single-flight: identical cache-miss requests arriving while
        # one is already executing share that execution's terminal
        # response instead of burning workers on duplicate work.  Each
        # follower still counts as its own request/served/degraded/
        # failed, so the reconciliation invariant is untouched.
        while True:
            with self._flight_lock:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    break  # this thread is the leader
            flight.event.wait()
            if flight.response is not None:
                _C_COALESCED.add()
                # A follower's attribution is the leader's (the work
                # was the leader's); ``coalesced`` marks it so counter
                # reconciliation can skip the duplicate deltas.
                attribution.serving = "coalesced"
                return dict(flight.response, coalesced=True)
            # The leader terminated without a response (an internal
            # error surfaced through submit's catch-all): contend for
            # leadership and execute normally.
        try:
            response = self._measure_miss(request, key)
            flight.response = response
            return response
        finally:
            with self._flight_lock:
                if self._flights.get(key) is flight:
                    del self._flights[key]
            flight.event.set()

    def _measure_miss(self, request: MeasureRequest, key: str) -> dict:
        """Breaker -> retry loop -> degrade for one cache-missed request."""
        attribution = self._attribution()
        breaker = self._breaker(request)
        if not breaker.allow():
            exc = CircuitOpenError(
                f"circuit open for {request.primitive}/s{request.system}"
                f" after repeated failures")
            return self._degrade_or_fail(request, key, exc)

        failure = None
        delays = self.config.retry.delays(key=request.describe())
        for attempt in range(self.config.retry.max_attempts):
            attribution.attempts += 1
            outcome = self._execute(request)
            self._fold_outcome(outcome, attribution)
            if outcome["status"] == "ok":
                breaker.record_success()
                if self.cache is not None and key is not None:
                    self.cache.put(key, outcome["result"],
                                   request.canonical())
                attribution.serving = "measured"
                attribution.breaker = breaker.state
                response = {"status": "served", "cache": "miss",
                            "request": request.canonical(),
                            "result": outcome["result"],
                            "attempts": attempt + 1}
                if self.config.attribution:
                    response["attribution"] = attribution.as_dict()
                return response
            failure = outcome
            breaker.record_failure()
            error_name = outcome.get("error", "")
            retryable = retryable_error_name(error_name) \
                if error_name else True
            obs_event("service.attempt_failed",
                      request=request.describe(),
                      status=outcome["status"], error=error_name,
                      retryable=retryable)
            if not retryable or attempt >= len(delays):
                break
            _C_RETRIES.add()
            self._sleep(delays[attempt])

        exc = self._failure_exception(failure)
        return self._degrade_or_fail(request, key, exc)

    def _execute(self, request: MeasureRequest) -> dict:
        """One measurement attempt: pooled dispatch or inline call."""
        ctx = current_context()
        if self.pool is not None:
            return self.pool.execute(
                request, self.config.deadline_s,
                trace=ctx.child().to_wire() if ctx is not None else None)
        # Inline mode: same fate stream as a pool would draw, but
        # crash/hang collapse to WorkerLost without killing anything —
        # there is no process to kill.
        fate = None
        if self.config.fault_plan is not None:
            with self._inline_lock:
                seq = self._inline_seq
                self._inline_seq += 1
            fate = self.config.fault_plan.decide(seq)
        if fate in ("crash", "hang"):
            return {"status": f"worker_{fate}",
                    "message": f"injected {fate} (inline mode)"}
        return self._execute_inline(request, ctx)

    def _execute_inline(self, request: MeasureRequest,
                        ctx: TraceContext | None) -> dict:
        """Inline execution with the same reply shape a worker ships.

        Attribution needs per-request counter deltas; with no process
        boundary to isolate them, inline executions serialize under
        ``_inline_lock`` so concurrent submissions (the daemon's
        executor threads) cannot interleave their counter windows.
        """
        if not self.config.attribution and ctx is None:
            try:
                with use_faults(self.config.scenario):
                    result = execute_request(request)
            except Exception as exc:  # noqa: BLE001 - mirrors worker reply
                return {"status": "error", "error": type(exc).__name__,
                        "message": str(exc)}
            return {"status": "ok", "result": result}
        with self._inline_lock:
            before = counters_snapshot(ATTRIBUTION_PREFIXES)
            spans = None
            try:
                with use_faults(self.config.scenario):
                    result, spans = traced_execution(
                        ctx, "daemon-inline", "service.execute",
                        lambda: execute_request(request),
                        request=request.describe())
                outcome: dict = {"status": "ok", "result": result}
            except Exception as exc:  # noqa: BLE001 - mirrors worker reply
                outcome = {"status": "error",
                           "error": type(exc).__name__,
                           "message": str(exc)}
            outcome["pid"] = os.getpid()
            deltas = counters_delta(before, ATTRIBUTION_PREFIXES)
            if deltas:
                outcome["counters"] = deltas
                outcome["counters_folded"] = True
            if spans:
                outcome["spans"] = spans
            return outcome

    def _fold_outcome(self, outcome: dict,
                      attribution: _Attribution) -> None:
        """Absorb one attempt's shipped telemetry into the parent side.

        Pool-worker counter bumps died with the fork — fold the
        shipped deltas into this process's registry so ``/metrics``
        sees dispatcher/engine activity (inline outcomes mark
        ``counters_folded``: their bumps already happened here).
        Shipped spans also stitch into any installed recorder.
        """
        attribution.absorb(outcome)
        if not outcome.get("counters_folded"):
            for name, delta in (outcome.get("counters") or {}).items():
                _counter(name).add(delta)
        recorder = get_recorder()
        if recorder is not None and outcome.get("spans"):
            recorder.add_remote_spans(outcome["spans"])

    def _failure_exception(self, outcome: dict | None) -> ReproError:
        """The taxonomy exception a final failed outcome maps to."""
        if outcome is None:  # pragma: no cover - defensive
            return WorkerLost("no attempt completed")
        status = outcome["status"]
        if status in _INFRA_ERRORS:
            return _INFRA_ERRORS[status](outcome.get("message", status))
        return rebuild_exception(outcome.get("error", "CampaignError"),
                                 outcome.get("message", ""))

    def _degrade_or_fail(self, request: MeasureRequest,
                         key: str | None, exc: Exception) -> dict:
        """Answer from stale cache if possible, else fail with taxonomy."""
        attribution = self._attribution()
        attribution.breaker = self._breaker(request).state
        if self.cache is not None and key is not None:
            entry = self.cache.get(key)
            if entry is not None:
                _C_CACHE_STALE.add()
                obs_event("service.degraded",
                          request=request.describe(),
                          error=type(exc).__name__,
                          stale_seconds=round(entry.age_seconds, 3))
                attribution.serving = "stale_cache"
                response = {"status": "degraded", "cache": "stale",
                            "request": request.canonical(),
                            "result": entry.result,
                            "stale_seconds": round(entry.age_seconds, 3),
                            "error": type(exc).__name__,
                            "message": str(exc)}
                if self.config.attribution:
                    response["attribution"] = attribution.as_dict()
                return response
        attribution.serving = "none"
        response = {"status": "failed",
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "exit_code": error_exit_code(exc)}
        if self.config.attribution:
            response["attribution"] = attribution.as_dict()
        return response

    # ------------------------------------------------------- accounting

    def _breaker(self, request: MeasureRequest) -> CircuitBreaker:
        stream = (request.primitive, request.system)
        with self._breaker_lock:
            breaker = self._breakers.get(stream)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    reset_timeout_s=self.config.breaker_reset_s,
                    clock=self._clock,
                    on_transition=lambda old, new, s=stream:
                        self._breaker_moved(s, old, new))
                self._breakers[stream] = breaker
            return breaker

    def _breaker_moved(self, stream: tuple[str, int],
                       old: str, new: str) -> None:
        obs_event("service.breaker_transition",
                  stream=f"{stream[0]}/s{stream[1]}",
                  from_state=old, to_state=new)
        if new == OPEN:
            _C_BREAKER_OPEN.add()

    def _count(self, response: dict) -> None:
        status = response.get("status")
        if status == "served":
            _C_SERVED.add()
        elif status == "degraded":
            _C_DEGRADED.add()
        else:
            _C_FAILED.add()

    def _observe_latency(self, latency_ms: float) -> None:
        # O(1): one histogram bucket add.  Percentiles (and the
        # back-compat gauges) materialize in latency_snapshot() only
        # when a reader asks.
        self.latency.observe(latency_ms)

    def _extract_trace(self, payload: object
                       ) -> tuple[object, TraceContext | None]:
        """Split the optional ``"trace"`` field off a request payload.

        The field must come off before :class:`MeasureRequest`
        validation (unknown fields are rejected by design) and before
        the cache key is computed — trace identity can never change
        what is measured or where it is cached.
        """
        if isinstance(payload, dict) and "trace" in payload:
            payload = dict(payload)
            ctx = TraceContext.from_wire(payload.pop("trace"))
            return payload, ctx
        return payload, None

    def _record_trace(self, ctx: TraceContext | None,
                      attribution: _Attribution, response: dict,
                      start: float, end: float) -> None:
        """Stitch one traced submission into the trace store."""
        if ctx is None:
            return
        response["trace_id"] = ctx.trace_id
        records = [{
            "type": "span", "sid": 0, "parent": None,
            "name": "service.request",
            "t0": start, "t1": end,
            "trace_id": ctx.trace_id,
            "role": "daemon", "pid": os.getpid(),
            "attrs": {"status": response.get("status"),
                      "serving": attribution.serving or "none"},
        }]
        records.extend(attribution.spans)
        self.traces.add(ctx.trace_id, records)

    def _ledger(self, payload: object, response: dict) -> None:
        """Durably record one terminal response in the checkpoint."""
        if self._checkpoint is None:
            return
        status = response.get("status")
        described = payload.get("primitive", "?") \
            if isinstance(payload, dict) else "?"
        outcome_status = {"served": "done",
                          "degraded": "skipped"}.get(status, "failed")
        with self._checkpoint_lock:
            index = self._request_index
            self._request_index += 1
            outcome = ExperimentOutcome(
                exp_id=f"req-{index:06d}",
                status=outcome_status,
                error=response.get("error", ""),
                message=f"{described}: {status}"
                        + (f" ({response.get('message', '')})"
                           if status != "served" else ""))
            self._checkpoint.record(outcome)
