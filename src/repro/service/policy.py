"""Shared failure policy: exit-code taxonomy, retries, circuit breaker.

One implementation serves both front-ends: the CLI campaign runner
(:mod:`repro.experiments.campaign`) and the measurement daemon
(:mod:`repro.service.core`).  Three pieces:

* **Exit-code taxonomy** — every failure is classified by exception
  class into the ``syncperf`` CLI's per-category exit codes, and
  :func:`rebuild_exception` round-trips a ``(class name, message)``
  record from a worker process back into an exception of the *same
  name* (unknown names get a synthesized :class:`~repro.common.errors.
  CampaignError` subclass rather than collapsing lossily), so exit
  codes computed before and after a process boundary always agree.
* **Retry policy** — :class:`RetryPolicy` produces a deterministic
  exponential-backoff schedule with seeded, symmetric jitter: the same
  (policy, request key) always yields the same delays, so chaos runs
  and tests replay exactly.  :func:`retryable_error` separates
  transient faults (worth re-dispatching) from permanent errors
  (misconfiguration, simulation bugs) using the same taxonomy.
* **Circuit breaker** — :class:`CircuitBreaker` is the classic
  closed -> open -> half-open state machine with an injectable clock,
  used per (primitive, system preset) by the service to stop hammering
  a failing configuration and degrade to cached results instead.
"""

from __future__ import annotations

import builtins
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import (
    CampaignError,
    ConfigurationError,
    FaultInjectionError,
    MeasurementError,
    ReproError,
    ServiceUnavailable,
    SimulationError,
)

# ---------------------------- exit codes -------------------------------- #

#: Exit codes of the ``syncperf`` CLI, by failure category
#: (``docs/faults.md`` has the full table).
EXIT_OK = 0
EXIT_CLAIMS = 1
EXIT_CONFIG = 2
EXIT_MEASUREMENT = 3
EXIT_SIMULATION = 4
EXIT_OTHER = 5
EXIT_UNAVAILABLE = 6

#: Exception types ``keep_going`` campaigns shield (benchmark-level
#: errors); any other exception aborts even in keep-going mode.
BENIGN_EXCEPTIONS = (ReproError, KeyError, ValueError, ZeroDivisionError)

#: Transient failures worth re-dispatching: injected measurement faults,
#: protocol exhaustion under noise, and service-side infrastructure
#: losses (a crashed/hung worker, a missed deadline).  Everything else —
#: misconfiguration, simulation bugs, sanitizer findings — is permanent:
#: retrying cannot change the outcome.
RETRYABLE_EXCEPTIONS = (MeasurementError, FaultInjectionError,
                        ServiceUnavailable)


def error_exit_code(exc: BaseException) -> int:
    """Map an exception to the CLI's per-category exit code."""
    if isinstance(exc, ConfigurationError):
        return EXIT_CONFIG
    if isinstance(exc, MeasurementError):
        return EXIT_MEASUREMENT
    if isinstance(exc, SimulationError):
        return EXIT_SIMULATION
    if isinstance(exc, ServiceUnavailable):
        return EXIT_UNAVAILABLE
    return EXIT_OTHER


def error_name_exit_code(error_name: str) -> int:
    """Exit code for a recorded failure's exception class name.

    Resolves the name against the library's exception hierarchy first,
    so a name-based classification (a failure record that crossed a
    process boundary) always agrees with the instance-based
    :func:`error_exit_code` — including for subclasses like
    :class:`~repro.common.errors.DataRaceError`.
    """
    cls = _resolve_error_class(error_name)
    if cls is not None and issubclass(cls, ReproError):
        return error_exit_code(cls.__new__(cls))
    return EXIT_OTHER


def retryable_error(exc: BaseException) -> bool:
    """Whether a failure is transient (worth re-dispatching)."""
    return isinstance(exc, RETRYABLE_EXCEPTIONS)


def retryable_error_name(error_name: str) -> bool:
    """Name-based :func:`retryable_error`, for cross-process records."""
    cls = _resolve_error_class(error_name)
    return cls is not None and issubclass(cls, RETRYABLE_EXCEPTIONS)


def _resolve_error_class(error_name: str) -> type | None:
    """The exception class called ``error_name``, if the library (or
    builtins) defines one."""
    import repro.common.errors as errors_mod
    cls = getattr(errors_mod, error_name, None)
    if cls is None:
        cls = getattr(builtins, error_name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls
    return None


#: Synthesized classes for exception names the library does not define,
#: memoized so repeated rebuilds of the same name share one type.
_SYNTHESIZED: dict[str, type] = {}


def rebuild_exception(error_name: str, message: str) -> BaseException:
    """Reconstruct a worker-side exception from its ``(name, message)``.

    Every class of the exit-code taxonomy round-trips exactly: the
    rebuilt exception has the same class name and message, so
    :func:`error_exit_code` on the rebuilt instance equals
    :func:`error_name_exit_code` on the record.  Unknown names — a
    third-party exception raised inside a worker — get a synthesized
    :class:`~repro.common.errors.CampaignError` subclass *named after
    the original*, preserving the name through ``type(exc).__name__``
    instead of collapsing it into the message.
    """
    cls = _resolve_error_class(error_name)
    if cls is not None:
        try:
            return cls(message)
        except Exception:  # exotic constructor signature: synthesize
            pass
    if not error_name.isidentifier():
        return CampaignError(f"{error_name}: {message}")
    synthesized = _SYNTHESIZED.get(error_name)
    if synthesized is None:
        synthesized = type(error_name, (CampaignError,), {
            "__doc__": "Synthesized stand-in for a worker-side "
                       f"{error_name} (see rebuild_exception)."})
        _SYNTHESIZED[error_name] = synthesized
    return synthesized(message)


# ---------------------------- retry policy ------------------------------ #


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Attributes:
        max_attempts: Total dispatch attempts per request (>= 1).
        base_delay_s: Delay before the first retry.
        multiplier: Exponential growth factor per retry.
        max_delay_s: Cap on any single delay (before jitter).
        jitter: Symmetric jitter fraction in [0, 1]: each delay is
            scaled by a factor drawn uniformly from
            ``[1 - jitter, 1 + jitter]``.
        seed: Seed of the jitter stream.  The schedule is a pure
            function of (policy, request key): two services configured
            identically back off identically, which is what makes chaos
            runs replayable.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"retry jitter must be in [0, 1], got {self.jitter}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"retry multiplier must be >= 1, got {self.multiplier}")

    def delays(self, key: str = "") -> list[float]:
        """The backoff schedule for one request.

        Returns:
            ``max_attempts - 1`` delays (seconds): the wait before each
            retry.  Deterministic in (policy fields, ``key``).
        """
        rng = random.Random(f"{self.seed}/{key}")
        out: list[float] = []
        for attempt in range(self.max_attempts - 1):
            base = min(self.base_delay_s * self.multiplier ** attempt,
                       self.max_delay_s)
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(base * factor)
        return out


# --------------------------- circuit breaker ---------------------------- #

#: Breaker states (:attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed -> open -> half-open breaker over one failure domain.

    The service keeps one per (primitive, system preset): repeated
    transient failures trip it open, dispatch short-circuits to the
    degraded path while it is open, and after ``reset_timeout_s`` one
    half-open probe is allowed through — success closes the breaker,
    failure re-opens it (with the reset timer restarted).

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        reset_timeout_s: Open time before a half-open probe is allowed.
        clock: Monotonic time source (injectable for tests).
        on_transition: Optional callback ``(old_state, new_state)`` —
            the service uses it to bump ``service.breaker_open``.

    Thread-safe: the daemon's executor threads share breakers.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, str], None] | None = None
                 ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"breaker failure_threshold must be >= 1, "
                f"got {failure_threshold}")
        if reset_timeout_s < 0:
            raise ConfigurationError(
                f"breaker reset_timeout_s must be >= 0, "
                f"got {reset_timeout_s}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, with the open -> half-open timer applied."""
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """Whether a dispatch may proceed right now.

        Closed always allows; open allows nothing until the reset
        timeout elapses; half-open allows exactly one in-flight probe
        (concurrent callers are refused until the probe resolves).
        """
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A dispatch succeeded: close (and reset the failure count)."""
        with self._lock:
            self._probing = False
            self._failures = 0
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A transient dispatch failure: count it, trip when over the
        threshold; a failed half-open probe re-opens immediately."""
        with self._lock:
            self._tick()
            self._probing = False
            self._failures += 1
            if self._state == HALF_OPEN or \
                    self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)

    _probing = False

    def _tick(self) -> None:
        """Apply the open -> half-open timer (lock held)."""
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout_s:
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)
