"""Content-addressed result cache with staleness accounting.

The cache is the service's graceful-degradation store: when the live
measurement path is unhealthy (circuit open, retries exhausted), the
service answers from here — *labeled* as degraded — rather than failing
outright.  Three properties make that safe:

* **Content addressing.** The key is the SHA-256 of the canonical JSON
  of (request, campaign fingerprint, code version).  Any change to the
  request, the machine/fault configuration, or the reproduction itself
  yields a different key, so a cache answer can never silently mix
  configurations.
* **Torn-write immunity.** Entries are written with the same atomic
  temp-file + rename discipline as result artifacts; a kill mid-``put``
  leaves either the old entry or none.  A corrupt entry on disk (e.g.
  pre-atomic debris) reads as a *miss*, never as a crash.
* **Honest staleness.** Every entry records its store time; ``get``
  reports the entry's age so callers can distinguish a fresh hit from a
  stale fallback and label responses accordingly.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.results_io import atomic_write_text
from repro.obs.metrics import counter as _counter

#: Bump when the entry layout changes (old entries then read as misses).
ENTRY_VERSION = 1

#: Entries removed by any bounded cache's eviction policy (shared with
#: the dispatcher's on-disk plan store; docs/observability.md).
_C_EVICTIONS = _counter("cache.evictions")


def cache_key(request_canonical: dict, fingerprint: str,
              version: str) -> str:
    """SHA-256 content address of a (request, config, code) identity."""
    identity = {
        "request": request_canonical,
        "fingerprint": fingerprint,
        "version": version,
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One retrieved cache entry.

    Attributes:
        key: The content address it was stored under.
        result: The measurement payload (:func:`repro.service.catalog.
            result_to_json` shape).
        stored_at: ``time.time()`` at store time.
        age_seconds: Age at retrieval (>= 0).
    """

    key: str
    result: dict
    stored_at: float
    age_seconds: float


class ResultCache:
    """Directory-backed content-addressed measurement cache.

    Args:
        directory: Cache root; created on first ``put``.
        clock: Wall-clock source (injectable for staleness tests).
        max_entries: Entry-count ceiling; each ``put`` evicts the
            oldest-mtime entries beyond it (counted as
            ``cache.evictions``).  ``None`` = unbounded (the
            pre-existing behavior).
    """

    def __init__(self, directory: Path | str,
                 clock=time.time,
                 max_entries: int | None = None) -> None:
        self.directory = Path(directory)
        self._clock = clock
        self.max_entries = max_entries

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def put(self, key: str, result: dict, request: dict) -> Path:
        """Store a measurement result under its content address.

        The write is atomic: a concurrent reader (or a post-kill
        resume) sees the previous entry or the complete new one.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {
            "entry_version": ENTRY_VERSION,
            "key": key,
            "request": request,
            "result": result,
            "stored_at": self._clock(),
        }
        path = atomic_write_text(
            self._path(key), json.dumps(entry, indent=1) + "\n")
        self._evict()
        return path

    def _evict(self) -> None:
        """Drop the oldest entries beyond ``max_entries`` (by mtime).

        Atomic puts make mtime a faithful recency signal; a concurrent
        writer racing an unlink at worst re-creates the entry, never
        tears it.
        """
        if self.max_entries is None:
            return
        try:
            paths = list(self.directory.glob("*.json"))
        except OSError:
            return
        excess = len(paths) - self.max_entries
        if excess <= 0:
            return
        stamped = []
        for path in paths:
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        stamped.sort(key=lambda pair: (pair[0], pair[1].name))
        for _, path in stamped[:excess]:
            try:
                path.unlink()
                _C_EVICTIONS.add(1)
            except OSError:
                pass

    def get(self, key: str) -> CacheEntry | None:
        """Retrieve an entry, or None on miss.

        A missing file, unreadable file, corrupt JSON, or wrong entry
        version all read as a miss — the cache degrades availability,
        it must never add a failure mode of its own.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or \
                    entry.get("entry_version") != ENTRY_VERSION or \
                    entry.get("key") != key or \
                    not isinstance(entry.get("result"), dict):
                return None
            stored_at = float(entry["stored_at"])
        except (ValueError, TypeError, KeyError):
            return None
        return CacheEntry(
            key=key, result=entry["result"], stored_at=stored_at,
            age_seconds=max(0.0, self._clock() - stored_at))

    def entries(self) -> dict[str, dict]:
        """All *well-formed* entries on disk, by key.

        Used by the chaos harness's integrity sweep; raises on a
        malformed entry file (that is the torn-write bug it hunts)
        rather than skipping it.

        Raises:
            ValueError: An entry file exists but does not parse as a
                complete entry of the current version.
        """
        found: dict[str, dict] = {}
        if not self.directory.is_dir():
            return found
        for path in sorted(self.directory.glob("*.json")):
            entry = json.loads(path.read_text())
            if not isinstance(entry, dict) or \
                    entry.get("entry_version") != ENTRY_VERSION or \
                    "result" not in entry or "key" not in entry:
                raise ValueError(f"torn or foreign cache entry: {path}")
            if f"{entry['key']}.json" != path.name:
                raise ValueError(
                    f"cache entry {path} stored under wrong key")
            found[entry["key"]] = entry
        return found
