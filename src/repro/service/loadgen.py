"""Seeded load generator for the measurement service.

Drives a running daemon over real HTTP (``http.client``, one-shot
connections, a thread per lane) with a deterministic request mix, then
reconciles three views of the run:

* the client's own ledger — every request it sent and the terminal
  status it got back (anything unanswerable is counted ``lost``, which
  the smoke gate requires to be zero);
* client-side latency percentiles (p50/p99) over all requests;
* the daemon's ``/metrics`` counters, as deltas across the run — the
  counter identity ``requests == served + degraded + failed`` must
  hold exactly, and the server must have counted exactly as many new
  requests as the client sent.  Deltas, not absolutes, so a daemon
  that already served other traffic still reconciles — but the
  generator must be the only active client while it runs.

The mix is Zipf-flavoured on purpose: a small set of popular requests
recurs (exercising the cache-hit path) over a long tail of distinct
ones (exercising cold dispatch), all drawn from a seeded stream so two
runs with the same seed replay the same traffic.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time

from repro.service.catalog import CATALOG, MeasureRequest

#: Thread counts the CPU mix draws from (valid on every paper system).
_CPU_THREADS = (2, 4, 8, 16)
_GPU_THREADS = (32, 64, 128, 256)
_GPU_BLOCKS = (1, 2, 4)


def request_mix(n: int, seed: int = 0,
                popular_fraction: float = 0.6) -> list[dict]:
    """A deterministic traffic mix of ``n`` request payloads.

    ``popular_fraction`` of requests repeat one of four fixed popular
    requests (cache-hot); the rest are drawn across the catalogue
    (cache-cold at first sight).
    """
    rng = random.Random(f"loadgen/{seed}")
    popular = [
        {"primitive": "omp_atomic", "threads": 16},
        {"primitive": "omp_barrier", "threads": 8},
        {"primitive": "cuda_syncthreads", "threads": 128, "blocks": 2},
        {"primitive": "cuda_atomicadd", "threads": 64, "blocks": 2},
    ]
    names = sorted(CATALOG)
    payloads: list[dict] = []
    for _ in range(n):
        if rng.random() < popular_fraction:
            payloads.append(dict(rng.choice(popular)))
            continue
        name = rng.choice(names)
        if CATALOG[name].substrate == "cpu":
            payloads.append({"primitive": name,
                             "threads": rng.choice(_CPU_THREADS)})
        else:
            payloads.append({"primitive": name,
                             "threads": rng.choice(_GPU_THREADS),
                             "blocks": rng.choice(_GPU_BLOCKS)})
    for payload in payloads:
        MeasureRequest.from_json(dict(payload))  # the mix is always valid
    return payloads


def parse_metrics(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition into ``{metric: value}``."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:  # pragma: no cover - malformed exposition
            continue
    return values


def _percentile(sample: list[float], q: float) -> float:
    if not sample:
        return 0.0
    ordered = sorted(sample)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1)))
    return round(ordered[index], 3)


class LoadGenerator:
    """Threaded HTTP replay of a request mix against one daemon.

    Args:
        host: Daemon host.
        port: Daemon port.
        concurrency: Client lanes (threads).
        timeout_s: Per-request socket timeout; a timeout counts the
            request as ``lost`` (the one thing the smoke gate forbids).
    """

    def __init__(self, host: str, port: int, concurrency: int = 4,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.concurrency = max(1, concurrency)
        self.timeout_s = timeout_s

    def _post(self, payload: dict) -> dict | None:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("POST", "/measure", body=json.dumps(payload),
                         headers={"Content-Type": "application/json"})
            raw = conn.getresponse().read()
            return json.loads(raw.decode())
        except (OSError, ValueError):
            return None
        finally:
            conn.close()

    def _get(self, path: str) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("GET", path)
            return conn.getresponse().read().decode()
        finally:
            conn.close()

    def run(self, payloads: list[dict]) -> dict:
        """Replay the mix and reconcile client and server accounting.

        Returns:
            A report dict: ``sent``, per-status counts, ``lost``,
            client p50/p99 latencies, the ``/metrics`` counter deltas
            across the run, and ``reconciled`` — whether the
            server-side counter identity holds and matches ``sent``.
        """
        before = parse_metrics(self._get("/metrics"))
        lanes: list[list[dict]] = [[] for _ in range(self.concurrency)]
        for index, payload in enumerate(payloads):
            lanes[index % self.concurrency].append(payload)
        statuses: dict[str, int] = {}
        latencies: list[float] = []
        lost = 0
        lock = threading.Lock()

        def lane(work: list[dict]) -> None:
            nonlocal lost
            for payload in work:
                start = time.monotonic()
                response = self._post(payload)
                elapsed_ms = (time.monotonic() - start) * 1e3
                with lock:
                    if response is None or "status" not in response:
                        lost += 1
                        continue
                    latencies.append(elapsed_ms)
                    status = response["status"]
                    statuses[status] = statuses.get(status, 0) + 1

        threads = [threading.Thread(target=lane, args=(work,),
                                    daemon=True)
                   for work in lanes if work]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after = parse_metrics(self._get("/metrics"))

        def delta(name: str) -> float:
            return after.get(name, 0.0) - before.get(name, 0.0)

        requests = delta("syncperf_service_requests")
        served = delta("syncperf_service_served")
        degraded = delta("syncperf_service_degraded")
        failed = delta("syncperf_service_failed")
        reconciled = (lost == 0
                      and requests == served + degraded + failed
                      and requests == float(len(payloads)))
        return {
            "sent": len(payloads),
            "statuses": dict(sorted(statuses.items())),
            "lost": lost,
            "p50_ms": _percentile(latencies, 0.50),
            "p99_ms": _percentile(latencies, 0.99),
            "server": {"requests": requests, "served": served,
                       "degraded": degraded, "failed": failed},
            "reconciled": reconciled,
        }
