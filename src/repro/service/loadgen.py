"""Seeded load generator for the measurement service.

Drives a running daemon over real HTTP (``http.client``, one-shot
connections, a thread per lane) with a deterministic request mix, then
reconciles three views of the run:

* the client's own ledger — every request it sent and the terminal
  status it got back (anything unanswerable is counted ``lost``, which
  the smoke gate requires to be zero);
* client-side latency percentiles (p50/p99) over all requests;
* the daemon's ``/metrics`` counters, as deltas across the run — the
  counter identity ``requests == served + degraded + failed`` must
  hold exactly, and the server must have counted exactly as many new
  requests as the client sent.  Deltas, not absolutes, so a daemon
  that already served other traffic still reconciles — but the
  generator must be the only active client while it runs.

Three further audits ride on the same run:

* **attribution** — every non-coalesced response's ``attribution.
  counters`` (per-request ``dispatch.*``/``cache.*`` deltas) must sum
  to exactly the server-side ``/metrics`` movement of those counters;
* **histogram** — the daemon's ``syncperf_service_latency_ms``
  exposition, diffed across the run, must have counted exactly the
  requests the daemon reports serving (client and server observe
  different clocks, so only counts — not sums — reconcile);
* **tracing** (``trace=True``) — every request carries a fresh
  :class:`TraceContext`; the report then proves at least one response's
  ``trace_id`` resolves via ``GET /trace/<id>`` to a stitched
  cross-process trace whose spans cover both the daemon and an
  executor role (worker or inline).

The mix is Zipf-flavoured on purpose: a small set of popular requests
recurs (exercising the cache-hit path) over a long tail of distinct
ones (exercising cold dispatch), all drawn from a seeded stream so two
runs with the same seed replay the same traffic.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time

from repro.obs.context import TraceContext, trace_roles
from repro.obs.export import _metric_name
from repro.obs.hist import LatencyHistogram
from repro.service.catalog import CATALOG, MeasureRequest
from repro.service.daemon import LATENCY_SERIES

#: Thread counts the CPU mix draws from (valid on every paper system).
_CPU_THREADS = (2, 4, 8, 16)
_GPU_THREADS = (32, 64, 128, 256)
_GPU_BLOCKS = (1, 2, 4)

#: Every ``dispatch.*``/``cache.*`` counter the engine can move — the
#: attribution audit compares sums over the union of these and
#: whatever the responses actually reported, so a counter the server
#: moved but no response attributed still fails the audit.
KNOWN_ATTR_COUNTERS = (
    "dispatch.hit", "dispatch.miss", "dispatch.shape_hit",
    "dispatch.compile", "dispatch.fallback", "dispatch.lifted_blocks",
    "dispatch.lifted_regions", "dispatch.evictions",
    "dispatch.disk_hit", "dispatch.disk_miss", "dispatch.disk_write",
    "dispatch.disk_corrupt", "cache.evictions",
)


def request_mix(n: int, seed: int = 0,
                popular_fraction: float = 0.6) -> list[dict]:
    """A deterministic traffic mix of ``n`` request payloads.

    ``popular_fraction`` of requests repeat one of four fixed popular
    requests (cache-hot); the rest are drawn across the catalogue
    (cache-cold at first sight).
    """
    rng = random.Random(f"loadgen/{seed}")
    popular = [
        {"primitive": "omp_atomic", "threads": 16},
        {"primitive": "omp_barrier", "threads": 8},
        {"primitive": "cuda_syncthreads", "threads": 128, "blocks": 2},
        {"primitive": "cuda_atomicadd", "threads": 64, "blocks": 2},
    ]
    names = sorted(CATALOG)
    payloads: list[dict] = []
    for _ in range(n):
        if rng.random() < popular_fraction:
            payloads.append(dict(rng.choice(popular)))
            continue
        name = rng.choice(names)
        if CATALOG[name].substrate == "cpu":
            payloads.append({"primitive": name,
                             "threads": rng.choice(_CPU_THREADS)})
        else:
            payloads.append({"primitive": name,
                             "threads": rng.choice(_GPU_THREADS),
                             "blocks": rng.choice(_GPU_BLOCKS)})
    for payload in payloads:
        MeasureRequest.from_json(dict(payload))  # the mix is always valid
    return payloads


def parse_metrics(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition into ``{metric: value}``."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:  # pragma: no cover - malformed exposition
            continue
    return values


def _percentile(sample: list[float], q: float) -> float:
    if not sample:
        return 0.0
    ordered = sorted(sample)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1)))
    return round(ordered[index], 3)


class LoadGenerator:
    """Threaded HTTP replay of a request mix against one daemon.

    Args:
        host: Daemon host.
        port: Daemon port.
        concurrency: Client lanes (threads).
        timeout_s: Per-request socket timeout; a timeout counts the
            request as ``lost`` (the one thing the smoke gate forbids).
        trace: Stamp every request with a fresh trace context and
            audit stitched traces via ``GET /trace/<id>`` after the
            run.
    """

    def __init__(self, host: str, port: int, concurrency: int = 4,
                 timeout_s: float = 60.0, trace: bool = False) -> None:
        self.host = host
        self.port = port
        self.concurrency = max(1, concurrency)
        self.timeout_s = timeout_s
        self.trace = trace
        #: Spans of the last stitched trace the post-run audit fetched
        #: (for ``--trace-out`` export).
        self.last_trace: list[dict] = []

    def _post(self, payload: dict) -> dict | None:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("POST", "/measure", body=json.dumps(payload),
                         headers={"Content-Type": "application/json"})
            raw = conn.getresponse().read()
            return json.loads(raw.decode())
        except (OSError, ValueError):
            return None
        finally:
            conn.close()

    def _get(self, path: str) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("GET", path)
            return conn.getresponse().read().decode()
        finally:
            conn.close()

    def run(self, payloads: list[dict]) -> dict:
        """Replay the mix and reconcile client and server accounting.

        Returns:
            A report dict: ``sent``, per-status counts, ``lost``,
            client p50/p99 latencies, the ``/metrics`` counter deltas
            across the run, ``reconciled`` (the counter identity),
            ``attribution_reconciled`` (per-response counter sums ==
            server deltas), ``hist`` (client/server histogram counts +
            ``reconciled``), and — with ``trace=True`` — ``trace``
            (stitched-trace audit results).
        """
        before_text = self._get("/metrics")
        before = parse_metrics(before_text)
        lanes: list[list[dict]] = [[] for _ in range(self.concurrency)]
        for index, payload in enumerate(payloads):
            lanes[index % self.concurrency].append(payload)
        statuses: dict[str, int] = {}
        latencies: list[float] = []
        responses: list[dict] = []
        client_hist = LatencyHistogram()
        lost = 0
        lock = threading.Lock()

        def lane(work: list[dict]) -> None:
            nonlocal lost
            for payload in work:
                if self.trace:
                    payload = dict(payload,
                                   trace=TraceContext.new().to_wire())
                start = time.monotonic()
                response = self._post(payload)
                elapsed_ms = (time.monotonic() - start) * 1e3
                with lock:
                    if response is None or "status" not in response:
                        lost += 1
                        continue
                    latencies.append(elapsed_ms)
                    client_hist.observe(elapsed_ms)
                    responses.append(response)
                    status = response["status"]
                    statuses[status] = statuses.get(status, 0) + 1

        threads = [threading.Thread(target=lane, args=(work,),
                                    daemon=True)
                   for work in lanes if work]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after_text = self._get("/metrics")
        after = parse_metrics(after_text)

        def delta(name: str) -> float:
            return after.get(name, 0.0) - before.get(name, 0.0)

        requests = delta("syncperf_service_requests")
        served = delta("syncperf_service_served")
        degraded = delta("syncperf_service_degraded")
        failed = delta("syncperf_service_failed")
        reconciled = (lost == 0
                      and requests == served + degraded + failed
                      and requests == float(len(payloads)))
        report = {
            "sent": len(payloads),
            "statuses": dict(sorted(statuses.items())),
            "lost": lost,
            "p50_ms": _percentile(latencies, 0.50),
            "p99_ms": _percentile(latencies, 0.99),
            "server": {"requests": requests, "served": served,
                       "degraded": degraded, "failed": failed},
            "reconciled": reconciled,
        }
        report["attribution_reconciled"] = self._reconcile_attribution(
            responses, delta, lost)
        report["hist"] = self._reconcile_histograms(
            before_text, after_text, client_hist, requests)
        if self.trace:
            report["trace"] = self._audit_traces(responses)
        return report

    # ----------------------------------------------------------- audits

    def _reconcile_attribution(self, responses: list[dict], delta,
                               lost: int) -> bool:
        """Per-response counter sums must equal the server's deltas.

        Coalesced followers carry a *copy* of their leader's
        attribution — the work happened once — so they are skipped.
        A lost request may still have moved server counters the client
        never saw, so any loss fails the audit outright.
        """
        if lost:
            return False
        sums: dict[str, float] = {}
        for response in responses:
            if response.get("coalesced"):
                continue
            attribution = response.get("attribution") or {}
            for name, value in (attribution.get("counters")
                                or {}).items():
                sums[name] = sums.get(name, 0.0) + value
        names = set(sums) | set(KNOWN_ATTR_COUNTERS)
        return all(sums.get(name, 0.0) == delta(_metric_name(name))
                   for name in names)

    def _reconcile_histograms(self, before_text: str, after_text: str,
                              client_hist: LatencyHistogram,
                              requests: float) -> dict:
        """Server histogram window vs the daemon's request accounting.

        Client and server measure different clocks (socket round-trip
        vs submission wall time), so the distributions differ — but
        the *counts* must match exactly: the server bucketed one
        latency per request it reports having processed.
        """
        try:
            server_before = LatencyHistogram.from_prometheus(
                before_text, LATENCY_SERIES)
            server_after = LatencyHistogram.from_prometheus(
                after_text, LATENCY_SERIES)
            window = server_after.diff(server_before)
        except ValueError as exc:
            return {"reconciled": False, "error": str(exc)}
        return {
            "client_count": client_hist.count,
            "server_count": window.count,
            "server_p50_ms": window.percentile(0.50),
            "server_p99_ms": window.percentile(0.99),
            "reconciled": float(window.count) == requests,
        }

    def _audit_traces(self, responses: list[dict]) -> dict:
        """Fetch stitched traces for measured responses and check them.

        A trace counts as stitched when its spans span two roles — the
        daemon plus an executor (worker or inline) — under one id, and
        include a measurement-layer span (``engine.*``), proving the
        context crossed the process (or at least the dispatch)
        boundary and the worker's span buffer shipped back.
        """
        candidates = [
            response for response in responses
            if response.get("trace_id")
            and not response.get("coalesced")
            and (response.get("attribution") or {}).get("serving")
            == "measured"]
        stitched = 0
        checked = 0
        for response in candidates[:8]:
            trace_id = response["trace_id"]
            try:
                body = json.loads(self._get(f"/trace/{trace_id}"))
            except ValueError:
                continue
            spans = body.get("spans") or []
            checked += 1
            roles = set(trace_roles(spans))
            names = {record.get("name") for record in spans}
            if "daemon" in roles and \
                    (roles & {"worker", "daemon-inline", "pool"}) and \
                    any(str(name).startswith("engine.")
                        for name in names):
                stitched += 1
                self.last_trace = spans
        return {"traced": len(candidates), "checked": checked,
                "stitched": stitched,
                "ok": stitched > 0 or not candidates}
