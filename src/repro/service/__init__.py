"""The resilient measurement service.

Turns the campaign runner into a long-running daemon: an asyncio
HTTP/JSON front-end (:mod:`repro.service.daemon`) accepts measurement
requests ("cost of ``omp_atomic`` at 16 threads on the AMD preset"),
answers repeats from a content-addressed result cache
(:mod:`repro.service.cache`), and shards cache misses across a
*supervised* multi-process worker pool (:mod:`repro.service.workers`)
with heartbeat monitoring and automatic restart of hung or crashed
workers.

Failure behavior is the point (MPI Benchmarking Revisited, PAPERS.md:
repeated measurements must stay statistically honest when answered from
cache):

* :mod:`repro.service.policy` — the shared retry/deadline/circuit-
  breaker policy layer, including the exit-code taxonomy both the CLI
  campaign runner and the daemon classify failures with;
* :mod:`repro.service.core` — request orchestration: retry with
  exponential backoff + seeded jitter for transient failures, a
  per-(primitive, system) circuit breaker, and **graceful degradation**
  to the cache with an explicit staleness marker when live measurement
  is unavailable;
* :mod:`repro.service.chaos` — a seeded chaos harness driving the
  service under process-level faults (worker crash/hang/slowdown,
  :mod:`repro.faults.process`) and asserting that no request is lost,
  no cache entry is torn, and every degraded response is labeled;
* :mod:`repro.service.loadgen` — a load-generator client replaying
  mixed traffic and reporting p50/p99 latency from the service's
  Prometheus-style snapshot.

Run it: ``python -m repro.service serve`` / ``loadgen`` / ``chaos`` /
``smoke``.  See ``docs/service.md`` for the API and the
degraded-response contract.

Submodules are imported lazily by the consumers that need them (the
campaign runner imports only :mod:`repro.service.policy`), so this
``__init__`` deliberately imports nothing.
"""

__all__ = [
    "cache",
    "catalog",
    "chaos",
    "core",
    "daemon",
    "loadgen",
    "policy",
    "workers",
]
