"""Supervised measurement worker pool.

Measurements run in forked worker processes so that a crash, hang, or
runaway request can never take the service down — the failure domain of
one request is one worker.  The supervisor (:class:`WorkerPool`) owns
the lifecycle:

* **Heartbeats.** Each worker beats a shared ``multiprocessing.Value``
  from a daemon thread; a worker whose heartbeat goes stale while the
  supervisor is waiting on it is declared *hung*, killed, and replaced.
  The beat thread is deliberately separate from the measurement thread:
  a slow measurement keeps beating (alive, just slow — the deadline's
  job), while a wedged process stops (dead — the heartbeat's job).
* **Deadlines.** Every dispatch carries a wall-clock budget; exceeding
  it kills the worker (its late answer can never be told apart from the
  next request's answer once the pipe is desynchronized) and reports
  ``deadline``.
* **Restarts.** Any worker the supervisor kills — or that dies on its
  own — is replaced before the slot is reused, and the restart is
  counted on ``service.worker_restarts``.

Dispatch outcomes are plain dicts with a ``status`` of ``"ok"``,
``"error"`` (the measurement raised; carries the taxonomy error name),
``"worker_crash"``, ``"worker_hang"``, or ``"deadline"`` — the
supervisor never raises for a worker's misbehaviour.  Mapping infra
statuses onto the retry taxonomy is the caller's job
(:mod:`repro.service.core`).

Injected process faults (:class:`repro.faults.process.ProcessFaultPlan`)
are decided by the *supervisor* per dispatch and carried in the job
message, so a chaos run's fault sequence is deterministic in the plan
seed no matter how threads race.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import queue
import threading
import time
from pathlib import Path

from repro.faults.process import ProcessFaultPlan
from repro.faults.scenario import FaultScenario, use_faults
from repro.obs import event as obs_event
from repro.obs.context import TraceContext, traced_execution
from repro.obs.flight import FLIGHT
from repro.obs.metrics import counter as _counter
from repro.obs.metrics import counters_delta, counters_snapshot
from repro.service.catalog import MeasureRequest, execute_request

_C_RESTARTS = _counter("service.worker_restarts")
_C_DISPATCHES = _counter("service.dispatches")

#: Counter families a worker ships back (as per-job deltas) in its
#: reply frame, for per-request attribution and parent-side folding.
#: ``service.*`` is deliberately excluded — those counters are bumped
#: by the supervisor and would double-count if shipped.
ATTRIBUTION_PREFIXES = ("dispatch.", "cache.", "engine.", "interp.",
                        "faults.", "rng.")

#: Exit code a fault-injected crash uses (distinct from real tracebacks).
CRASH_EXIT_CODE = 70

#: How often a worker beats its heartbeat, seconds.
HEARTBEAT_INTERVAL_S = 0.02


def _worker_main(conn, heartbeat, scenario: FaultScenario | None,
                 plan_cache_dir: str | None = None) -> None:
    """Worker process entry: beat, then serve jobs off the pipe forever.

    Runs until the pipe closes or a poison pill (None) arrives.  All
    measurement exceptions are caught and reported as ``error`` replies;
    only injected fates (and genuine interpreter death) end the process.
    """
    if plan_cache_dir is not None:
        # Explicitly (re)point the dispatcher at the shared plan store:
        # fork inheritance already covers the common case, but a worker
        # must not depend on what the parent happened to configure
        # before forking.
        from repro.compiler.dispatcher import DISPATCHER
        from repro.compiler.store import PlanStore
        DISPATCHER.plan_store = PlanStore(plan_cache_dir)
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.is_set():
            heartbeat.value = time.monotonic()
            time.sleep(HEARTBEAT_INTERVAL_S)

    threading.Thread(target=beat, daemon=True).start()
    faults = use_faults(scenario) if scenario is not None \
        else contextlib.nullcontext()
    with faults:
        while True:
            try:
                job = conn.recv()
            except (EOFError, OSError):
                return
            if job is None:
                return
            fate = job.get("fate")
            if fate == "crash":
                os._exit(CRASH_EXIT_CODE)
            if fate == "hang":
                stop_beating.set()
                time.sleep(3600.0)  # supervisor kills us long before
            if fate == "slow":
                time.sleep(job.get("slow_seconds", 0.05))
            reply = serve_job(job)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return


def serve_job(job: dict) -> dict:
    """Execute one job dict to a reply dict (the worker-side core).

    Restores the shipped trace context (if any) for the duration of
    the measurement, runs it under a private recorder so the worker's
    spans — ``service.worker`` down through ``engine.measure`` and the
    dispatcher — ship back in the reply, and attaches the worker's
    per-job counter deltas (:data:`ATTRIBUTION_PREFIXES`) plus its
    pid.  The context is installed and torn down *inside* this call,
    so it can never leak into the next job on the same worker — torn
    or malformed ``"trace"`` fields degrade to an untraced execution.
    """
    ctx = TraceContext.from_wire(job.get("trace"))
    before = counters_snapshot(ATTRIBUTION_PREFIXES)
    spans = None
    try:
        request = MeasureRequest(**job["request"])
        result, spans = traced_execution(
            ctx, "worker", "service.worker",
            lambda: execute_request(request),
            request=request.describe())
        reply = {"status": "ok", "result": result}
    except BaseException as exc:  # noqa: BLE001 - report, don't die
        reply = {"status": "error",
                 "error": type(exc).__name__,
                 "message": str(exc)}
    reply["pid"] = os.getpid()
    deltas = counters_delta(before, ATTRIBUTION_PREFIXES)
    if deltas:
        reply["counters"] = deltas
    if spans:
        reply["spans"] = spans
    return reply


class _Worker:
    """One supervised worker process (pipe + heartbeat + handle)."""

    def __init__(self, ctx, scenario: FaultScenario | None,
                 plan_cache_dir: str | None = None) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.heartbeat = ctx.Value("d", time.monotonic())
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.heartbeat, scenario, plan_cache_dir),
            daemon=True)
        self.process.start()
        child_conn.close()

    def kill(self) -> None:
        """Tear the worker down unconditionally (idempotent)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        # Release the process bookkeeping eagerly; without this, killed
        # workers accumulate as zombies until pool shutdown.
        self.process.close()


class WorkerPool:
    """Fixed-size pool of supervised measurement workers.

    Thread-safe: any number of service threads may call
    :meth:`execute` concurrently; each dispatch exclusively owns one
    worker slot for its duration.

    Args:
        n_workers: Pool size (>= 1).
        heartbeat_timeout_s: Heartbeat staleness that declares a hang.
        scenario: Measurement-time fault scenario activated inside each
            worker (inherited semantics of a ``--faults`` campaign).
        fault_plan: Process-level fault plan applied per dispatch.
        poll_interval_s: Supervisor polling granularity.
        flight_dir: When set, every worker retirement dumps the
            process-wide flight recorder here (post-mortem context for
            the crash/hang/deadline that caused it).
    """

    def __init__(self, n_workers: int,
                 heartbeat_timeout_s: float = 1.0,
                 scenario: FaultScenario | None = None,
                 fault_plan: ProcessFaultPlan | None = None,
                 poll_interval_s: float = 0.01,
                 plan_cache_dir: str | Path | None = None,
                 flight_dir: str | Path | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._ctx = multiprocessing.get_context("fork")
        self._scenario = scenario
        self._fault_plan = fault_plan
        self._plan_cache_dir = \
            str(plan_cache_dir) if plan_cache_dir is not None else None
        self._flight_dir = Path(flight_dir) \
            if flight_dir is not None else None
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._poll_interval_s = poll_interval_s
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._free: queue.Queue[_Worker] = queue.Queue()
        self._all: list[_Worker] = []
        self._all_lock = threading.Lock()
        for _ in range(n_workers):
            self._add_worker()
        self.restarts = 0
        #: Retirement counts by reason (``worker_crash``, ``deadline``,
        #: ...), surfaced through ``/healthz``.
        self.restart_reasons: dict[str, int] = {}

    def _add_worker(self) -> None:
        worker = _Worker(self._ctx, self._scenario,
                         self._plan_cache_dir)
        with self._all_lock:
            self._all.append(worker)
        self._free.put(worker)

    def _retire(self, worker: _Worker, reason: str) -> None:
        """Kill a misbehaving worker and put a fresh one in its slot."""
        pid = worker.process.pid
        worker.kill()
        with self._all_lock:
            self._all.remove(worker)
        self.restarts += 1
        self.restart_reasons[reason] = \
            self.restart_reasons.get(reason, 0) + 1
        _C_RESTARTS.add()
        obs_event("service.worker_restart", reason=reason)
        FLIGHT.record("service.worker_retired", reason=reason, pid=pid)
        if self._flight_dir is not None:
            try:
                FLIGHT.dump(self._flight_dir, reason)
            except OSError:  # pragma: no cover - dump must never kill
                pass
        self._add_worker()

    def worker_stats(self) -> list[dict]:
        """Per-worker liveness for ``/healthz``: pid, heartbeat age,
        aliveness."""
        now = time.monotonic()
        with self._all_lock:
            workers = list(self._all)
        stats = []
        for worker in workers:
            try:
                alive = worker.process.is_alive()
                pid = worker.process.pid
            except ValueError:  # pragma: no cover - closed mid-snapshot
                alive, pid = False, None
            stats.append({
                "pid": pid,
                "alive": alive,
                "heartbeat_age_s": round(
                    max(0.0, now - worker.heartbeat.value), 3),
            })
        return stats

    def next_seq(self) -> int:
        """Allocate the next dispatch sequence number (fate stream key)."""
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
            return seq

    def execute(self, request: MeasureRequest, deadline_s: float,
                seq: int | None = None,
                trace: dict | None = None) -> dict:
        """Dispatch one request to a worker and supervise to an outcome.

        Args:
            request: The validated measurement request.
            deadline_s: Wall-clock budget for this dispatch.
            seq: Dispatch sequence number for the fault-plan fate
                stream; allocated automatically when omitted.  Callers
                that retry pass a fresh ``next_seq()`` per attempt so
                each attempt draws its own fate.
            trace: Optional wire-format trace context
                (:meth:`repro.obs.context.TraceContext.to_wire`)
                restored inside the worker for this job only.

        Returns:
            ``{"status": "ok", "result": ...}`` or ``{"status":
            "error", "error": <class name>, "message": ...}`` from the
            worker (both carrying the worker's ``pid`` and shipped
            ``counters``/``spans``), or a supervisor verdict
            ``{"status": "worker_crash" | "worker_hang" | "deadline",
            "message": ...}``.
        """
        if self._closed:
            return {"status": "worker_crash",
                    "message": "worker pool is closed"}
        if seq is None:
            seq = self.next_seq()
        _C_DISPATCHES.add()
        fate = self._fault_plan.decide(seq) if self._fault_plan else None
        job = {"request": request.canonical(), "seq": seq, "fate": fate}
        if trace is not None:
            job["trace"] = trace
        if fate == "slow":
            job["slow_seconds"] = self._fault_plan.slow_seconds
        FLIGHT.record("service.dispatch", seq=seq, fate=fate,
                      request=request.describe(),
                      trace_id=(trace or {}).get("trace_id"))
        worker = self._free.get()
        try:
            if not worker.process.is_alive():
                # Died idle (shouldn't happen, but never dispatch into
                # a corpse): replace and take the replacement.
                self._retire(worker, "dead_idle")
                worker = self._free.get()
            try:
                worker.conn.send(job)
            except (BrokenPipeError, OSError):
                self._retire(worker, "send_failed")
                return {"status": "worker_crash",
                        "message": "worker pipe closed at dispatch"}
            verdict = self._await_reply(worker, deadline_s)
            FLIGHT.record("service.verdict", seq=seq,
                          status=verdict.get("status"),
                          pid=verdict.get("pid"))
            if verdict["status"] in ("ok", "error"):
                self._free.put(worker)
            else:
                self._retire(worker, verdict["status"])
            return verdict
        except BaseException:
            # Supervisor itself interrupted (e.g. KeyboardInterrupt):
            # don't leak the slot.
            self._retire(worker, "supervisor_error")
            raise

    def _await_reply(self, worker: _Worker, deadline_s: float) -> dict:
        """Poll one in-flight dispatch to a verdict."""
        start = time.monotonic()
        while True:
            if worker.conn.poll(self._poll_interval_s):
                try:
                    return worker.conn.recv()
                except (EOFError, OSError):
                    return {"status": "worker_crash",
                            "message": "worker pipe closed mid-reply"}
            now = time.monotonic()
            if not worker.process.is_alive():
                code = worker.process.exitcode
                return {"status": "worker_crash",
                        "message": f"worker exited with code {code}"}
            stale = now - worker.heartbeat.value
            if stale > self._heartbeat_timeout_s:
                return {"status": "worker_hang",
                        "message": f"heartbeat stale for {stale:.2f}s"}
            if now - start > deadline_s:
                return {"status": "deadline",
                        "message": f"deadline of {deadline_s:g}s "
                                   f"exceeded"}

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        self._closed = True
        with self._all_lock:
            workers = list(self._all)
            self._all.clear()
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
