"""Seeded chaos harness: prove the service loses nothing under faults.

The harness boots a real service — real worker pool, real process
faults, optionally a measurement-time fault scenario — drives a seeded
request mix at it from concurrent client threads, and audits the
resilience contract:

1. **No request lost.** Every submission reaches a terminal status
   (``served`` / ``degraded`` / ``failed``); the response count equals
   the submission count.
2. **Exact reconciliation.** The counter deltas satisfy
   ``service.requests == served + degraded + failed`` with no slack.
3. **Degradation is labeled.** Every degraded response carries
   ``cache == "stale"``, a non-negative ``stale_seconds``, and the
   error that forced the fallback.
4. **Failures carry the taxonomy.** Every failed response names an
   error class and an exit code from the campaign taxonomy.
5. **No torn state.** Every cache entry on disk parses completely, and
   the request ledger (checkpoint manifest) parses and accounts for
   every request.
6. **Attribution is consistent.** Every terminal response carries an
   attribution whose serving path agrees with its status — a faulted
   run must not mislabel how an answer was produced.
7. **Traces stitch across kills.** Every chaos submission is traced;
   when any request was actually measured through the pool, at least
   one stored trace must contain daemon *and* worker spans under one
   trace id — worker kill/replace must not sever propagation.
8. **Crashes leave flight records.** When workers were restarted, the
   flight recorder must have dumped at least one post-mortem ring
   that parses back (:func:`repro.obs.flight.load_flight_dump`).

Two phases share one cache directory: a quiet phase primes the cache
with the popular mix, then the chaos phase reopens the service with a
zero TTL (so every entry is stale by definition) and faults enabled —
forcing the degradation path to do real work rather than idling
because the live path happens to succeed.

Everything is keyed by one seed: the request mix, the fault fates, and
the backoff jitter all derive from it, so a failing run is replayable.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.faults import resolve_faults
from repro.faults.process import ProcessFaultPlan
from repro.obs.context import TraceContext, trace_roles
from repro.obs.flight import load_flight_dump
from repro.obs.metrics import REGISTRY
from repro.service.cache import ResultCache
from repro.service.core import MeasurementService, ServiceConfig
from repro.service.loadgen import request_mix
from repro.service.policy import (
    EXIT_CLAIMS,
    EXIT_UNAVAILABLE,
    RetryPolicy,
    error_name_exit_code,
)

#: Terminal statuses the contract allows.
TERMINAL = ("served", "degraded", "failed")


def run_chaos(base_dir: str | Path, seed: int = 0,
              n_requests: int = 40, workers: int = 2,
              crash_prob: float = 0.15, hang_prob: float = 0.1,
              slow_prob: float = 0.1, faults: str | None = None,
              concurrency: int = 4, prime: int = 8) -> dict:
    """Run one seeded chaos campaign; returns the audit report.

    Args:
        base_dir: Scratch directory (cache + checkpoint live here).
        seed: Master seed for mix, fates, and backoff jitter.
        n_requests: Chaos-phase submissions.
        workers: Worker processes under fault injection.
        crash_prob: Per-dispatch worker crash probability.
        hang_prob: Per-dispatch worker hang probability.
        slow_prob: Per-dispatch worker slowdown probability.
        faults: Optional measurement-fault preset/DSL (``--faults``
            syntax) active inside workers.
        concurrency: Concurrent client threads.
        prime: Quiet-phase submissions that warm the cache.

    Returns:
        Report dict; ``report["ok"]`` is True iff ``violations`` is
        empty.  Keys include per-status counts, counter deltas, worker
        restarts, and the violations list (empty on a clean run).
    """
    base = Path(base_dir)
    cache_dir = base / "cache"
    checkpoint_path = base / "requests.ckpt.json"
    scenario = resolve_faults(faults) if faults else None

    mix = request_mix(n_requests, seed=seed)
    violations: list[str] = []

    # Quiet phase: populate the cache so degradation has substance.
    quiet = ServiceConfig(workers=0, cache_dir=cache_dir,
                          cache_ttl_s=1e9,
                          retry=RetryPolicy(max_attempts=1, seed=seed))
    with MeasurementService(quiet) as service:
        for payload in request_mix(prime, seed=seed):
            outcome = service.submit(payload)
            if outcome["status"] != "served":
                violations.append(
                    f"quiet-phase request failed: {outcome}")

    plan = ProcessFaultPlan(crash_prob=crash_prob, hang_prob=hang_prob,
                            slow_prob=slow_prob, slow_seconds=0.05,
                            seed=seed)
    config = ServiceConfig(
        workers=workers,
        deadline_s=5.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                          max_delay_s=0.05, seed=seed),
        breaker_failures=4,
        breaker_reset_s=0.2,
        heartbeat_timeout_s=0.25,
        cache_dir=cache_dir,
        cache_ttl_s=0.0,  # everything is stale: degradation must label
        checkpoint_path=checkpoint_path,
        scenario=scenario,
        fault_plan=plan,
        flight_dir=base / "flight")

    before = {name: value
              for name, value in REGISTRY.counters().items()
              if name.startswith("service.")}

    responses: list[dict] = []
    response_lock = threading.Lock()
    with MeasurementService(config) as service:
        lanes: list[list[dict]] = [[] for _ in range(max(1, concurrency))]
        for index, payload in enumerate(mix):
            lanes[index % len(lanes)].append(payload)

        def lane(work: list[dict]) -> None:
            for payload in work:
                traced = dict(payload,
                              trace=TraceContext.new().to_wire())
                outcome = service.submit(traced)
                with response_lock:
                    responses.append(outcome)

        threads = [threading.Thread(target=lane, args=(work,),
                                    daemon=True)
                   for work in lanes if work]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        restarts = service.pool.restarts if service.pool else 0

    after = {name: value
             for name, value in REGISTRY.counters().items()
             if name.startswith("service.")}
    delta = {name: after.get(name, 0) - before.get(name, 0)
             for name in after}

    # 1. No request lost.
    if len(responses) != n_requests:
        violations.append(
            f"lost requests: sent {n_requests}, "
            f"got {len(responses)} responses")
    # 2. Exact reconciliation.
    terminal_sum = (delta.get("service.served", 0)
                    + delta.get("service.degraded", 0)
                    + delta.get("service.failed", 0))
    if delta.get("service.requests", 0) != n_requests:
        violations.append(
            f"requests counter {delta.get('service.requests')} != "
            f"submissions {n_requests}")
    if delta.get("service.requests", 0) != terminal_sum:
        violations.append(
            f"requests {delta.get('service.requests')} != served + "
            f"degraded + failed = {terminal_sum}")
    # 3 + 4. Response contracts.
    statuses: dict[str, int] = {}
    for outcome in responses:
        status = outcome.get("status")
        statuses[status] = statuses.get(status, 0) + 1
        if status not in TERMINAL:
            violations.append(f"non-terminal status: {outcome}")
        elif status == "degraded":
            if outcome.get("cache") != "stale":
                violations.append(
                    f"degraded response not labeled stale: {outcome}")
            if not isinstance(outcome.get("stale_seconds"),
                              (int, float)) or \
                    outcome["stale_seconds"] < 0:
                violations.append(
                    f"degraded response without stale age: {outcome}")
            if not outcome.get("error"):
                violations.append(
                    f"degraded response hides its cause: {outcome}")
        elif status == "failed":
            name = outcome.get("error", "")
            code = outcome.get("exit_code")
            if not name or code != error_name_exit_code(name) or \
                    not EXIT_CLAIMS <= code <= EXIT_UNAVAILABLE:
                violations.append(
                    f"failed response outside taxonomy: {outcome}")
    # 6. Attribution agrees with the terminal status.
    consistent_serving = {"served": {"measured", "cache_hit",
                                     "coalesced"},
                          "degraded": {"stale_cache", "coalesced"},
                          "failed": {"none", "coalesced"}}
    for outcome in responses:
        status = outcome.get("status")
        attribution = outcome.get("attribution")
        if not isinstance(attribution, dict):
            violations.append(f"response without attribution: {outcome}")
            continue
        serving = attribution.get("serving")
        if status in consistent_serving and \
                serving not in consistent_serving[status]:
            violations.append(
                f"attribution serving {serving!r} inconsistent with "
                f"status {status!r}")
    # 7. Traces stitch across worker kill/replace.
    stitched_traces = 0
    measured = [outcome for outcome in responses
                if not outcome.get("coalesced")
                and isinstance(outcome.get("attribution"), dict)
                and outcome["attribution"].get("serving") == "measured"]
    for outcome in measured:
        spans = service.traces.get(outcome.get("trace_id") or "")
        if not spans:
            continue
        roles = set(trace_roles(spans))
        if "daemon" in roles and roles & {"worker", "daemon-inline"}:
            stitched_traces += 1
    if measured and workers > 0 and stitched_traces == 0:
        violations.append(
            f"{len(measured)} measured responses but no stitched "
            f"daemon+worker trace survived the chaos run")
    # 8. Worker restarts must leave parseable flight records.
    flight_dumps = sorted((base / "flight").glob("flight-*.json"))
    if restarts > 0:
        if not flight_dumps:
            violations.append(
                f"{restarts} worker restarts but no flight-recorder "
                f"dump on disk")
        for dump_path in flight_dumps:
            try:
                load_flight_dump(dump_path)
            except (OSError, ValueError) as exc:
                violations.append(
                    f"flight dump {dump_path.name} unreadable: {exc}")
    # 5a. No torn cache entries.
    try:
        entries = ResultCache(cache_dir).entries()
    except ValueError as exc:
        entries = {}
        violations.append(str(exc))
    # 5b. Ledger parses and accounts for everything (the quiet phase
    # runs without a ledger; only chaos-phase requests are recorded).
    try:
        ledger = json.loads(checkpoint_path.read_text())
        recorded = len(ledger.get("experiments", {}))
        if recorded != n_requests:
            violations.append(
                f"ledger records {recorded} requests, expected "
                f"{n_requests}")
    except (OSError, ValueError) as exc:
        violations.append(f"request ledger unreadable: {exc}")

    return {
        "ok": not violations,
        "seed": seed,
        "requests": n_requests,
        "statuses": dict(sorted(statuses.items())),
        "counters": {name: delta[name] for name in sorted(delta)
                     if delta[name]},
        "worker_restarts": restarts,
        "cache_entries": len(entries),
        "stitched_traces": stitched_traces,
        "flight_dumps": len(flight_dumps),
        "fault_plan": plan.describe(),
        "violations": violations,
    }
