"""CLI for the resilient measurement service.

Subcommands::

    python -m repro.service serve    # run the HTTP daemon
    python -m repro.service loadgen  # drive a running daemon
    python -m repro.service chaos    # seeded chaos audit (in-process)
    python -m repro.service smoke    # boot + load + reconcile (CI gate)

``smoke`` is the CI entry: it boots a daemon in-process with worker
crash/hang injection enabled, replays a seeded mix over real HTTP, and
exits non-zero unless zero requests were lost and the server-side
counters reconcile exactly (``requests == served + degraded +
failed``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.faults.process import ProcessFaultPlan
from repro.service.chaos import run_chaos
from repro.service.core import MeasurementService, ServiceConfig
from repro.service.daemon import ServiceDaemon
from repro.service.loadgen import LoadGenerator, request_mix
from repro.service.policy import RetryPolicy


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--crash-prob", type=float, default=0.0,
                        help="per-dispatch worker crash probability")
    parser.add_argument("--hang-prob", type=float, default=0.0,
                        help="per-dispatch worker hang probability")
    parser.add_argument("--slow-prob", type=float, default=0.0,
                        help="per-dispatch worker slowdown probability")
    parser.add_argument("--faults", default=None,
                        help="measurement fault preset/DSL active in "
                        "workers (e.g. noisy-amd)")


def _service(args, cache_dir: Path | None,
             checkpoint: Path | None = None) -> MeasurementService:
    from repro.faults import resolve_faults
    plan = None
    if args.crash_prob or args.hang_prob or args.slow_prob:
        plan = ProcessFaultPlan(
            crash_prob=args.crash_prob, hang_prob=args.hang_prob,
            slow_prob=args.slow_prob, seed=args.seed)
    scenario = resolve_faults(args.faults) if args.faults else None
    flight_dir = getattr(args, "flight_dir", None)
    return MeasurementService(ServiceConfig(
        workers=args.workers,
        deadline_s=args.deadline,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.02,
                          max_delay_s=0.5, seed=args.seed),
        heartbeat_timeout_s=0.5,
        cache_dir=cache_dir,
        checkpoint_path=checkpoint,
        scenario=scenario,
        fault_plan=plan,
        flight_dir=Path(flight_dir) if flight_dir else None))


def _cmd_serve(args) -> int:
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    service = _service(args, cache_dir,
                       Path(args.checkpoint) if args.checkpoint
                       else None)
    daemon = ServiceDaemon(service, host=args.host, port=args.port)

    async def run() -> None:
        await daemon.start()
        print(f"measurement service on "
              f"http://{daemon.host}:{daemon.port} "
              f"({args.workers} workers)", flush=True)
        await daemon.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_loadgen(args) -> int:
    generator = LoadGenerator(args.host, args.port,
                              concurrency=args.concurrency,
                              trace=args.trace)
    report = generator.run(request_mix(args.requests, seed=args.seed))
    print(json.dumps(report, indent=1))
    if args.trace_out and generator.last_trace:
        Path(args.trace_out).write_text(
            json.dumps(generator.last_trace, indent=1) + "\n")
        print(f"stitched trace written to {args.trace_out}")
    return 0 if report["reconciled"] else 1


def _cmd_chaos(args) -> int:
    base = args.dir or tempfile.mkdtemp(prefix="service-chaos-")
    report = run_chaos(
        base, seed=args.seed, n_requests=args.requests,
        workers=args.workers, crash_prob=args.crash_prob,
        hang_prob=args.hang_prob, slow_prob=args.slow_prob,
        faults=args.faults)
    print(json.dumps(report, indent=1))
    return 0 if report["ok"] else 1


def _cmd_smoke(args) -> int:
    base = Path(args.dir or tempfile.mkdtemp(prefix="service-smoke-"))
    if args.flight_dir is None:
        args.flight_dir = str(base / "flight")
    service = _service(args, base / "cache", base / "requests.ckpt.json")
    daemon = ServiceDaemon(service, host="127.0.0.1", port=0)
    daemon.run_in_thread()
    print(f"smoke daemon on 127.0.0.1:{daemon.port}", flush=True)
    try:
        generator = LoadGenerator("127.0.0.1", daemon.port,
                                  concurrency=args.concurrency,
                                  trace=args.trace)
        report = generator.run(
            request_mix(args.requests, seed=args.seed))
    finally:
        service.close()
    report["worker_restarts"] = service.pool.restarts \
        if service.pool else 0
    print(json.dumps(report, indent=1))
    if args.trace_out and generator.last_trace:
        Path(args.trace_out).write_text(
            json.dumps(generator.last_trace, indent=1) + "\n")
        print(f"stitched trace written to {args.trace_out}")
    if report["lost"]:
        print(f"SMOKE FAIL: {report['lost']} requests lost",
              file=sys.stderr)
        return 1
    if not report["reconciled"]:
        print("SMOKE FAIL: counters do not reconcile "
              "(requests != served + degraded + failed)",
              file=sys.stderr)
        return 1
    if not report["attribution_reconciled"]:
        print("SMOKE FAIL: per-response attribution counters do not "
              "sum to the server-side deltas", file=sys.stderr)
        return 1
    if not report["hist"].get("reconciled"):
        print("SMOKE FAIL: server latency-histogram window does not "
              "count every processed request", file=sys.stderr)
        return 1
    if args.trace and not report["trace"]["ok"]:
        print("SMOKE FAIL: no measured response produced a stitched "
              "cross-process trace", file=sys.stderr)
        return 1
    trace_note = ""
    if args.trace:
        trace_note = (f", {report['trace']['stitched']} stitched "
                      f"trace(s)")
    print(f"SMOKE OK: {report['sent']} requests, none lost, "
          f"counters + attribution + histogram reconcile, "
          f"{report['worker_restarts']} worker restart(s)"
          f"{trace_note}, "
          f"p50={report['p50_ms']}ms p99={report['p99_ms']}ms")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resilient measurement service (daemon, load "
        "generator, chaos audit).")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--deadline", type=float, default=30.0)
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--checkpoint", default=None)
    serve.add_argument("--flight-dir", default=None,
                       help="dump the flight recorder here on worker "
                       "retirement")
    serve.add_argument("--seed", type=int, default=0)
    _add_fault_args(serve)
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser("loadgen",
                          help="drive a running daemon and reconcile")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=8377)
    load.add_argument("--requests", type=int, default=50)
    load.add_argument("--concurrency", type=int, default=4)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--trace", action="store_true",
                      help="stamp every request with a trace context "
                      "and audit stitched traces")
    load.add_argument("--trace-out", default=None,
                      help="write the last stitched trace's spans "
                      "(JSON) here")
    load.set_defaults(func=_cmd_loadgen)

    chaos = sub.add_parser("chaos", help="seeded chaos audit")
    chaos.add_argument("--dir", default=None,
                       help="scratch directory (default: a tempdir)")
    chaos.add_argument("--requests", type=int, default=40)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--crash-prob", type=float, default=0.15)
    chaos.add_argument("--hang-prob", type=float, default=0.1)
    chaos.add_argument("--slow-prob", type=float, default=0.1)
    chaos.add_argument("--faults", default=None)
    chaos.set_defaults(func=_cmd_chaos)

    smoke = sub.add_parser("smoke",
                           help="boot + HTTP load + reconcile (CI)")
    smoke.add_argument("--dir", default=None)
    smoke.add_argument("--requests", type=int, default=40)
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--deadline", type=float, default=10.0)
    smoke.add_argument("--concurrency", type=int, default=4)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument("--trace", action="store_true",
                       help="trace every request and gate on stitched "
                       "cross-process traces")
    smoke.add_argument("--flight-dir", default=None,
                       help="flight-recorder dump directory (default: "
                       "<dir>/flight)")
    smoke.add_argument("--trace-out", default=None,
                       help="write the last stitched trace's spans "
                       "(JSON) here")
    _add_fault_args(smoke)
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
