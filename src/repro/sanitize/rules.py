"""The five syncsan rules, run over lifted :class:`KernelIR` trees.

Rule catalog (see ``docs/sanitizer.md`` for worked examples):

==================  ========  ==============================================
rule id             severity  fires when
==================  ========  ==============================================
barrier-divergence  ERROR     a block barrier is reachable under
                              thread-dependent control flow (or after a
                              thread-dependent early return); warp
                              collectives under divergence are WARNING
sync-scope          ERROR     a spin-wait on a plain global flag has no
                              device-scope fence anywhere in the kernel;
                              system-scope atomics paired with a
                              device-scope fence are WARNING
lock-order          ERROR     the lock-acquisition graph (OMP locks and
                              CAS spinlocks) has a cycle
static-race         WARNING   two plain accesses (at least one write) can
                              touch the same location in the same barrier
                              epoch with no ordering primitive
redundant-sync      ADVICE    back-to-back barriers, or a fence
                              immediately followed by one of equal or
                              narrower scope
==================  ========  ==============================================

Severities express confidence, mirroring the dynamic detectors: ERROR is
a defect on every schedule, WARNING is a defect on some schedule or
input, ADVICE costs cycles but not correctness.  ``Report.clean`` counts
ERROR and WARNING only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.compiler.ops import PrimitiveKind, Scope
from repro.sanitize.ir import (
    DYNAMIC_VAR,
    AccessStmt,
    BranchStmt,
    Dep,
    FenceStmt,
    KernelIR,
    LockStmt,
    LoopStmt,
    ReturnStmt,
    Space,
    Stmt,
    SyncStmt,
)


class Severity(enum.Enum):
    """How bad a finding is (ordered: ADVICE < WARNING < ERROR)."""

    ADVICE = "advice"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnostic.

    Attributes:
        rule: Rule identifier (``barrier-divergence``...).
        severity: Confidence class of the diagnostic.
        kernel: Name of the kernel the finding is in.
        message: Human-readable description.
        line: 1-based source line of the offending statement.
        source: Path (or ``<function>``) the kernel was lifted from.
    """

    rule: str
    severity: Severity
    kernel: str
    message: str
    line: int = 0
    source: str = "<function>"

    def render(self) -> str:
        """One-line ``path:line: severity: [rule] message`` rendering."""
        return (f"{self.source}:{self.line}: {self.severity.value}: "
                f"[{self.rule}] {self.kernel}: {self.message}")


@dataclass
class Report:
    """Aggregated findings from one or more sanitized artifacts."""

    findings: list[Finding] = field(default_factory=list)
    kernels: int = 0

    @property
    def errors(self) -> list[Finding]:
        """Findings at ERROR severity."""
        return [f for f in self.findings
                if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Findings at WARNING severity."""
        return [f for f in self.findings
                if f.severity is Severity.WARNING]

    @property
    def advice(self) -> list[Finding]:
        """Findings at ADVICE severity."""
        return [f for f in self.findings
                if f.severity is Severity.ADVICE]

    @property
    def clean(self) -> bool:
        """True when no ERROR or WARNING finding exists (ADVICE ok)."""
        return not self.errors and not self.warnings

    def merge(self, other: "Report") -> "Report":
        """Fold another report's findings into this one (in place)."""
        self.findings.extend(other.findings)
        self.kernels += other.kernels
        return self

    def by_rule(self) -> dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def render(self) -> str:
        """Multi-line rendering of every finding plus a summary line."""
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{self.kernels} kernel(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.advice)} advice")
        return "\n".join(lines)


#: Ordering of fence scopes: a fence covers every narrower scope.
_SCOPE_RANK = {Scope.BLOCK: 0, Scope.DEVICE: 1, Scope.SYSTEM: 2}

_BLOCK_BARRIERS = frozenset({
    PrimitiveKind.SYNCTHREADS, PrimitiveKind.SYNCTHREADS_COUNT,
    PrimitiveKind.SYNCTHREADS_AND, PrimitiveKind.SYNCTHREADS_OR,
    PrimitiveKind.OMP_BARRIER})


def _finding(kernel: KernelIR, rule: str, severity: Severity,
             message: str, line: int) -> Finding:
    return Finding(rule=rule, severity=severity, kernel=kernel.name,
                   message=message, line=line, source=kernel.source)


# ------------------------- rule 1: divergence -------------------------- #

def _contains_return(stmts: tuple[Stmt, ...]) -> bool:
    for s in stmts:
        if isinstance(s, ReturnStmt):
            return True
        if isinstance(s, BranchStmt):
            if _contains_return(s.body) or _contains_return(s.orelse):
                return True
        elif isinstance(s, LoopStmt):
            if _contains_return(s.body):
                return True
    return False


def rule_barrier_divergence(kernel: KernelIR) -> list[Finding]:
    """Block barriers that not all threads of the block/team reach."""
    findings: list[Finding] = []

    def scan(stmts: tuple[Stmt, ...], ctx: Dep,
             after_exit: bool) -> bool:
        for s in stmts:
            if isinstance(s, SyncStmt):
                if s.collective:
                    if ctx is Dep.THREAD:
                        findings.append(_finding(
                            kernel, "barrier-divergence",
                            Severity.WARNING,
                            f"warp collective {s.kind.name} under "
                            "thread-dependent control flow; lanes that "
                            "skip it change the convergence mask",
                            s.line))
                elif ctx is Dep.THREAD:
                    findings.append(_finding(
                        kernel, "barrier-divergence", Severity.ERROR,
                        f"block barrier {s.kind.name} under "
                        "thread-dependent control flow; threads that "
                        "skip it deadlock the block", s.line))
                elif after_exit:
                    findings.append(_finding(
                        kernel, "barrier-divergence", Severity.ERROR,
                        f"block barrier {s.kind.name} after a "
                        "thread-dependent early return; exited threads "
                        "never arrive", s.line))
            elif isinstance(s, BranchStmt):
                # Pins are NOT exempt here: ``if tid == 0: barrier()``
                # deadlocks just the same.  The pin exemption belongs to
                # the race rule only (AccessStmt.pinned).
                inner = ctx.join(s.dep)
                exit_body = scan(s.body, inner, after_exit)
                exit_else = scan(s.orelse, inner, after_exit)
                after_exit = exit_body or exit_else
                if s.dep is Dep.THREAD and (
                        _contains_return(s.body)
                        or _contains_return(s.orelse)):
                    after_exit = True
            elif isinstance(s, LoopStmt):
                after_exit = scan(s.body, ctx.join(s.dep), after_exit)
        return after_exit

    scan(kernel.body, Dep.UNIFORM, False)
    return findings


# ------------------------- rule 2: sync scope --------------------------- #

def _all_stmts(kernel: KernelIR):
    for stmt, _ctx in kernel.walk():
        yield stmt


def rule_sync_scope(kernel: KernelIR) -> list[Finding]:
    """Cross-thread signalling whose fences are missing or too narrow."""
    findings: list[Finding] = []
    fences = [s for s in _all_stmts(kernel) if isinstance(s, FenceStmt)]
    spins = [s for s in _all_stmts(kernel)
             if isinstance(s, LoopStmt) and s.spin is not None]
    if kernel.dialect == "cuda":
        wide = [f for f in fences
                if _SCOPE_RANK[f.scope] >= _SCOPE_RANK[Scope.DEVICE]]
        for loop in spins:
            spin = loop.spin
            assert spin is not None
            if spin.atomic or spin.space.value != "global":
                continue  # atomics carry their own coherence scope
            if not wide:
                detail = ("only __threadfence_block() present, which "
                          "does not reach other blocks"
                          if fences else "no __threadfence() present")
                findings.append(_finding(
                    kernel, "sync-scope", Severity.ERROR,
                    "spin-wait on plain global flag "
                    f"'{spin.var}' with {detail}; the store may never "
                    "become visible to the spinning block", spin.line))
        system_writes = [
            s for s in _all_stmts(kernel)
            if isinstance(s, AccessStmt) and s.is_write
            and not s.atomic and s.space is Space.SYSTEM]
        if system_writes and fences and not any(
                f.scope is Scope.SYSTEM for f in fences):
            findings.append(_finding(
                kernel, "sync-scope", Severity.ERROR,
                "cross-device handoff: plain system-memory writes to "
                f"'{system_writes[0].var}' published under a "
                "device-scope fence; peer devices keep reading stale "
                "data until __threadfence_system()",
                system_writes[0].line))
        system_atomics = [
            s for s in _all_stmts(kernel)
            if isinstance(s, AccessStmt) and s.atomic
            and s.scope is Scope.SYSTEM]
        if system_atomics and fences and not any(
                f.scope is Scope.SYSTEM for f in fences):
            findings.append(_finding(
                kernel, "sync-scope", Severity.WARNING,
                "system-scope atomics paired with a device-scope "
                "fence; host/peer visibility requires "
                "__threadfence_system()", system_atomics[0].line))
    else:
        for loop in spins:
            spin = loop.spin
            assert spin is not None
            if spin.atomic:
                continue
            if not fences:
                findings.append(_finding(
                    kernel, "sync-scope", Severity.ERROR,
                    f"spin-wait on shared variable '{spin.var}' with "
                    "plain reads and no flush; the compiler may hoist "
                    "the load out of the loop", spin.line))
    return findings


# ------------------------- rule 3: lock order --------------------------- #

def _lock_edges(stmts: tuple[Stmt, ...], held: list[str],
                edges: dict[str, set[str]]) -> None:
    for s in stmts:
        if isinstance(s, LockStmt):
            if s.acquire:
                for h in held:
                    if h != s.name:
                        edges.setdefault(h, set()).add(s.name)
                held.append(s.name)
            elif s.name in held:
                held.remove(s.name)
        elif isinstance(s, BranchStmt):
            # Arms are alternatives: give each a copy of the held set
            # so acquisitions in one arm do not order against the other.
            _lock_edges(s.body, list(held), edges)
            _lock_edges(s.orelse, list(held), edges)
        elif isinstance(s, LoopStmt):
            _lock_edges(s.body, held, edges)


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def dfs(node: str, path: list[str]) -> list[str] | None:
        state[node] = 0
        path.append(node)
        for nxt in sorted(edges.get(node, ())):
            if state.get(nxt) == 0:
                return path[path.index(nxt):] + [nxt]
            if nxt not in state:
                cycle = dfs(nxt, path)
                if cycle:
                    return cycle
        path.pop()
        state[node] = 1
        return None

    for start in sorted(edges):
        if start not in state:
            cycle = dfs(start, [])
            if cycle:
                return cycle
    return None


def rule_lock_order(kernel: KernelIR) -> list[Finding]:
    """Cycles in the lock-acquisition graph (potential deadlock)."""
    edges: dict[str, set[str]] = {}
    _lock_edges(kernel.body, [], edges)
    cycle = _find_cycle(edges)
    if cycle is None:
        return []
    line = next((s.line for s in _all_stmts(kernel)
                 if isinstance(s, LockStmt) and s.acquire
                 and s.name in cycle), kernel.line)
    return [_finding(
        kernel, "lock-order", Severity.ERROR,
        "lock-acquisition cycle " + " -> ".join(cycle)
        + "; two threads taking opposite orders deadlock", line)]


# ------------------------- rule 4: static races ------------------------- #

def _collect_epoch_accesses(
        stmts: tuple[Stmt, ...], epoch: int, held: int,
        out: list[tuple[AccessStmt, int, bool]]) -> int:
    """Walk statements tracking the barrier-epoch counter and the
    held-lock depth; returns the epoch after the block."""
    for s in stmts:
        if isinstance(s, SyncStmt) and s.kind in _BLOCK_BARRIERS:
            epoch += 1
        elif isinstance(s, LockStmt):
            held += 1 if s.acquire else (-1 if held else 0)
        elif isinstance(s, AccessStmt):
            out.append((s, epoch, held > 0))
        elif isinstance(s, BranchStmt):
            e1 = _collect_epoch_accesses(s.body, epoch, held, out)
            e2 = _collect_epoch_accesses(s.orelse, epoch, held, out)
            epoch = max(e1, e2)
        elif isinstance(s, LoopStmt):
            epoch = _collect_epoch_accesses(s.body, epoch, held, out)
    return epoch


def rule_static_race(kernel: KernelIR) -> list[Finding]:
    """Plain conflicting accesses inside one barrier epoch.

    Two heuristics, both deliberately conservative to stay
    false-positive-free on the shipped workloads:

    * a plain, unpinned, unlocked write whose index is uniform or a
      literal constant — every participating thread stores to the same
      cell, so the kernel self-races whenever more than one thread runs;
    * a plain thread-indexed write plus a plain uniform/constant-indexed
      access to the same variable in the same epoch — the uniform access
      overlaps some thread's slot with no ordering primitive between.

    Thread-indexed vs. thread-indexed pairs are *not* reported (the
    repo-wide idiom is disjoint per-thread slices), and accesses whose
    index is data-dependent or whose array name is dynamic are skipped —
    aliasing cannot be decided statically.
    """
    accesses: list[tuple[AccessStmt, int, bool]] = []
    _collect_epoch_accesses(kernel.body, 0, 0, accesses)
    findings: list[Finding] = []
    seen: set[tuple[str, int]] = set()
    by_key: dict[tuple[str, int], list[tuple[AccessStmt, bool]]] = {}
    for acc, epoch, locked in accesses:
        if acc.var == DYNAMIC_VAR:
            continue
        by_key.setdefault((acc.var, epoch), []).append((acc, locked))
    for (var, epoch), group in by_key.items():
        plain = [(a, locked) for a, locked in group if not a.atomic]
        fixed_writes = [
            a for a, locked in plain
            if a.is_write and not a.pinned and not locked
            and (a.index_dep is Dep.UNIFORM
                 or a.index_const is not None)]
        thread_writes = [
            a for a, locked in plain
            if a.is_write and not a.pinned and not locked
            and a.index_dep is Dep.THREAD]
        fixed_reads = [
            a for a, locked in plain
            if not a.is_write and not a.pinned and not locked
            and a.index_dep is Dep.UNIFORM]
        if (var, epoch) in seen:
            continue
        if fixed_writes:
            seen.add((var, epoch))
            findings.append(_finding(
                kernel, "static-race", Severity.WARNING,
                f"plain write to '{var}' at a uniform index in barrier "
                f"epoch {epoch}: every thread stores to the same cell "
                "with no atomic, pin, or lock", fixed_writes[0].line))
        elif thread_writes and fixed_reads:
            seen.add((var, epoch))
            findings.append(_finding(
                kernel, "static-race", Severity.WARNING,
                f"plain thread-indexed write to '{var}' and a plain "
                f"uniform-indexed read in barrier epoch {epoch} with "
                "no ordering primitive between them",
                thread_writes[0].line))
    findings.sort(key=lambda f: f.line)
    return findings


# ----------------------- rule 5: redundant sync ------------------------- #

def _adjacent_pairs(stmts: tuple[Stmt, ...]):
    for a, b in zip(stmts, stmts[1:]):
        yield a, b
    for s in stmts:
        if isinstance(s, BranchStmt):
            yield from _adjacent_pairs(s.body)
            yield from _adjacent_pairs(s.orelse)
        elif isinstance(s, LoopStmt):
            yield from _adjacent_pairs(s.body)


def rule_redundant_sync(kernel: KernelIR) -> list[Finding]:
    """Back-to-back synchronization with no observable effect between."""
    findings: list[Finding] = []
    for a, b in _adjacent_pairs(kernel.body):
        if isinstance(a, SyncStmt) and isinstance(b, SyncStmt) \
                and not a.collective and not b.collective \
                and a.kind is b.kind:
            findings.append(_finding(
                kernel, "redundant-sync", Severity.ADVICE,
                f"back-to-back {b.kind.name}: nothing is observed "
                "between the two, the second is dead", b.line))
        elif isinstance(a, FenceStmt) and isinstance(b, FenceStmt) \
                and _SCOPE_RANK[b.scope] <= _SCOPE_RANK[a.scope]:
            findings.append(_finding(
                kernel, "redundant-sync", Severity.ADVICE,
                f"{b.kind.name} immediately after {a.kind.name}: the "
                "first fence already orders a scope at least as wide",
                b.line))
        elif isinstance(a, SyncStmt) and not a.collective \
                and isinstance(b, FenceStmt) \
                and b.kind is PrimitiveKind.OMP_FLUSH:
            findings.append(_finding(
                kernel, "redundant-sync", Severity.ADVICE,
                "flush immediately after a barrier: the barrier "
                "already implies a flush of the shared view", b.line))
    return findings


#: Rule registry: id -> rule function.
ALL_RULES = {
    "barrier-divergence": rule_barrier_divergence,
    "sync-scope": rule_sync_scope,
    "lock-order": rule_lock_order,
    "static-race": rule_static_race,
    "redundant-sync": rule_redundant_sync,
}


def run_rules(kernel: KernelIR,
              rules: tuple[str, ...] | None = None) -> Report:
    """Run (a subset of) the rule catalog over one lifted kernel."""
    names = rules if rules is not None else tuple(ALL_RULES)
    findings: list[Finding] = []
    for name in names:
        findings.extend(ALL_RULES[name](kernel))
    return Report(findings=findings, kernels=1)
