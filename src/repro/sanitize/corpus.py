"""Seeded-defect corpus: one known-bad kernel per sanitizer rule.

The ``ext-sanitizer`` validation experiment (and the corpus test suite)
runs every rule against a matched pair of kernels: a *bad* kernel seeded
with exactly one instance of the rule's defect class, and a *clean* twin
that performs the same work correctly.  A healthy rule fires on the bad
kernel at the expected severity and stays silent on the twin — the same
shape as the fault-injection validation in :mod:`repro.faults`, but for
static defects.

Kernels are stored as source text (not live functions) so the corpus is
self-contained and line numbers in findings are stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sanitize import Report, sanitize_source
from repro.sanitize.rules import Severity


@dataclass(frozen=True)
class CorpusCase:
    """One rule's seeded defect and its clean twin.

    Attributes:
        rule: Rule id the bad kernel must trip.
        severity: Severity the rule must report.
        bad: Source of the defective kernel(s).
        clean: Source of the corrected twin.
    """

    rule: str
    severity: Severity
    bad: str
    clean: str


#: The corpus, keyed by case id.  Every sanitizer rule has at least one
#: entry; rules with several defect classes (``sync-scope``) have one
#: case per class.
CORPUS: dict[str, CorpusCase] = {
    "barrier-divergence": CorpusCase(
        rule="barrier-divergence",
        severity=Severity.ERROR,
        bad='''\
def divergent_reduce(t):
    """Tree reduction with the barrier inside the active-lane branch."""
    yield t.shared_write("partial", t.threadIdx, 1)
    if t.threadIdx < 16:
        v = yield t.shared_read("partial", t.threadIdx)
        yield t.shared_write("partial", t.threadIdx, v + 1)
        yield t.syncthreads()
''',
        clean='''\
def converged_reduce(t):
    """Same reduction with the barrier hoisted out of the branch."""
    yield t.shared_write("partial", t.threadIdx, 1)
    if t.threadIdx < 16:
        v = yield t.shared_read("partial", t.threadIdx)
        yield t.shared_write("partial", t.threadIdx, v + 1)
    yield t.syncthreads()
''',
    ),
    "sync-scope": CorpusCase(
        rule="sync-scope",
        severity=Severity.ERROR,
        bad='''\
def unfenced_spin(t):
    """Cross-block spin on a plain global flag with no fence at all."""
    if t.global_id == 0:
        yield t.global_write("flag", 0, 1)
    while (yield t.global_read("flag", 0)) != 1:
        yield t.alu(1)
''',
        clean='''\
def fenced_spin(t):
    """The producer fences the store; spinning is now well-scoped."""
    if t.global_id == 0:
        yield t.global_write("flag", 0, 1)
        yield t.threadfence()
    while (yield t.global_read("flag", 0)) != 1:
        yield t.alu(1)
''',
    ),
    "sync-scope-xdev": CorpusCase(
        rule="sync-scope",
        severity=Severity.ERROR,
        bad='''\
def xdev_publish_stale(t):
    """Hand a payload to a peer device behind a device-scope fence."""
    yield t.system_write("payload", t.global_id, 42)
    yield t.threadfence()
    yield t.atomic_exch("flag", 0, 1)
''',
        clean='''\
def xdev_publish_fenced(t):
    """Same handoff with the system-scope fence peers require."""
    yield t.system_write("payload", t.global_id, 42)
    yield t.threadfence(Scope.SYSTEM)
    yield t.atomic_exch("flag", 0, 1)
''',
    ),
    "lock-order": CorpusCase(
        rule="lock-order",
        severity=Severity.ERROR,
        bad='''\
def transfer_deadlock(tc):
    """Half the team takes a->b, the other half b->a: ABBA deadlock."""
    if tc.tid % 2 == 0:
        yield tc.lock_acquire("a")
        yield tc.lock_acquire("b")
        yield tc.lock_release("b")
        yield tc.lock_release("a")
    else:
        yield tc.lock_acquire("b")
        yield tc.lock_acquire("a")
        yield tc.lock_release("a")
        yield tc.lock_release("b")
''',
        clean='''\
def transfer_ordered(tc):
    """Both halves acquire in the same global order: no cycle."""
    if tc.tid % 2 == 0:
        yield tc.lock_acquire("a")
        yield tc.lock_acquire("b")
        yield tc.lock_release("b")
        yield tc.lock_release("a")
    else:
        yield tc.lock_acquire("a")
        yield tc.lock_acquire("b")
        yield tc.lock_release("b")
        yield tc.lock_release("a")
''',
    ),
    "static-race": CorpusCase(
        rule="static-race",
        severity=Severity.WARNING,
        bad='''\
def racy_total(tc):
    """Every thread plainly stores its id to the same cell."""
    yield tc.write("total", 0, tc.tid)
''',
        clean='''\
def atomic_total(tc):
    """The same accumulation through the atomic construct."""
    yield tc.atomic_update("total", 0, tc.tid)
''',
    ),
    "redundant-sync": CorpusCase(
        rule="redundant-sync",
        severity=Severity.ADVICE,
        bad='''\
def double_barrier(t):
    """Two barriers with nothing observed in between."""
    yield t.shared_write("buf", t.threadIdx, 1)
    yield t.syncthreads()
    yield t.syncthreads()
    v = yield t.shared_read("buf", 0)
''',
        clean='''\
def single_barrier(t):
    """One barrier is enough to order the write before the read."""
    yield t.shared_write("buf", t.threadIdx, 1)
    yield t.syncthreads()
    v = yield t.shared_read("buf", 0)
''',
    ),
}


def corpus_reports(case_id: str) -> tuple[Report, Report]:
    """Sanitize a corpus case; returns ``(bad_report, clean_report)``."""
    case = CORPUS[case_id]
    return (sanitize_source(case.bad, f"corpus:{case_id}:bad"),
            sanitize_source(case.clean, f"corpus:{case_id}:clean"))
