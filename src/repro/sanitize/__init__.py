"""syncsan — static sanitizer for synchronization primitives.

A static analysis pass over kernel programs (the Python generator
functions the interpreters execute) and over op-IR streams
(:mod:`repro.compiler.ops`).  It runs without executing a single
simulated cycle and reports five defect classes:

1. **barrier-divergence** — a block barrier reachable under
   thread-dependent control flow;
2. **sync-scope** — cross-block signalling with missing or too-narrow
   fences;
3. **lock-order** — cycles in the lock-acquisition graph (OMP locks and
   ``atomicCAS`` spinlock idioms);
4. **static-race** — plain conflicting accesses within one barrier
   epoch;
5. **redundant-sync** — back-to-back barriers/fences (advice only).

Entry points: :func:`sanitize_kernel` for live function objects (used by
the opt-in ``Cuda(lint=...)`` / ``OpenMP(lint=...)`` pre-launch check),
:func:`sanitize_source`/:func:`sanitize_paths` for files (the
``python -m repro.sanitize`` CLI), and :func:`sanitize_ops`/
:func:`sanitize_spec` for op-IR streams.  Finding counts flow through
the :mod:`repro.obs` metrics registry as ``sanitize.*`` counters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.compiler.dce import redundant_sync_ops
from repro.compiler.ops import Op, PrimitiveKind
from repro.obs import metrics
from repro.sanitize.extract import (
    kernel_ir_from_function,
    kernel_irs_from_source,
)
from repro.sanitize.ir import KernelIR
from repro.sanitize.rules import (
    ALL_RULES,
    Finding,
    Report,
    Severity,
    run_rules,
)

__all__ = [
    "ALL_RULES", "Finding", "Report", "Severity", "KernelIR",
    "sanitize_kernel", "sanitize_source", "sanitize_path",
    "sanitize_paths", "sanitize_ops", "sanitize_spec", "lint_kernel",
]

#: Memo cache for :func:`sanitize_kernel`, keyed by code object (kernels
#: are re-created per launch by closure factories, but share code).
_KERNEL_CACHE: dict[tuple[object, str | None, tuple[str, ...] | None],
                    Report] = {}


def _count(report: Report) -> Report:
    """Publish a report's finding counts to the obs metrics registry."""
    metrics.counter("sanitize.kernels").add(report.kernels)
    if report.findings:
        metrics.counter("sanitize.findings").add(len(report.findings))
        for rule, n in report.by_rule().items():
            metrics.counter(f"sanitize.findings.{rule}").add(n)
    return report


def sanitize_ir(kernel: KernelIR,
                rules: tuple[str, ...] | None = None) -> Report:
    """Run the rule catalog over an already-lifted kernel."""
    return _count(run_rules(kernel, rules))


def sanitize_kernel(fn: Callable, dialect: str | None = None,
                    rules: tuple[str, ...] | None = None) -> Report:
    """Lift and sanitize a live kernel function object.

    Results are memoized by code object: the pre-launch lint check calls
    this on every launch, and drivers recreate closure kernels with
    identical code each time.

    Args:
        fn: Kernel generator function.
        dialect: Force ``"cuda"``/``"openmp"``; inferred when None.
        rules: Restrict to a subset of rule ids (default: all).

    Raises:
        ValueError: when ``fn``'s source is unavailable or it is not a
            kernel (never raised for findings — inspect the report).
    """
    key = (getattr(fn, "__code__", fn), dialect, rules)
    cached = _KERNEL_CACHE.get(key)
    if cached is not None:
        return cached
    report = _count(run_rules(kernel_ir_from_function(fn, dialect),
                              rules))
    _KERNEL_CACHE[key] = report
    return report


def sanitize_source(text: str, source: str = "<string>",
                    rules: tuple[str, ...] | None = None) -> Report:
    """Sanitize every kernel found in one module's source text."""
    report = Report()
    for kernel in kernel_irs_from_source(text, source):
        report.merge(run_rules(kernel, rules))
    return _count(report)


def sanitize_path(path: str | Path,
                  rules: tuple[str, ...] | None = None) -> Report:
    """Sanitize one ``.py`` file."""
    p = Path(path)
    return sanitize_source(p.read_text(), str(p), rules)


def sanitize_paths(paths: Iterable[str | Path],
                   rules: tuple[str, ...] | None = None) -> Report:
    """Sanitize files and/or directories (searched recursively).

    Non-Python files are skipped; unreadable or syntactically invalid
    files surface as ERROR findings rather than exceptions so a CLI
    sweep never dies half way.
    """
    report = Report()
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    for f in files:
        try:
            report.merge(sanitize_path(f, rules))
        except (OSError, SyntaxError) as exc:
            report.findings.append(Finding(
                rule="parse", severity=Severity.ERROR,
                kernel="<module>", message=f"cannot analyze: {exc}",
                line=getattr(exc, "lineno", 0) or 0, source=str(f)))
    return report


def lint_kernel(fn: Callable, dialect: str,
                mode: bool | str = True) -> Report | None:
    """The pre-launch lint check behind ``Cuda(lint=...)``.

    Args:
        fn: Kernel/body about to be launched.
        dialect: ``"cuda"`` or ``"openmp"``.
        mode: ``True``/``"error"`` raises
            :class:`~repro.common.errors.SanitizerError` on a non-clean
            report; ``"warn"`` emits a :class:`UserWarning` instead.

    Returns:
        The report, or None when the kernel cannot be lifted (source
        unavailable) — an unliftable kernel is not a finding.
    """
    try:
        report = sanitize_kernel(fn, dialect)
    except ValueError:
        return None
    if not report.clean:
        rendered = "\n".join(
            f.render() for f in report.errors + report.warnings)
        if mode == "warn":
            import warnings
            warnings.warn(f"syncsan findings:\n{rendered}",
                          stacklevel=3)
        else:
            from repro.common.errors import SanitizerError
            raise SanitizerError(
                "static sync sanitizer found defects "
                f"(run python -m repro.sanitize for details):\n"
                f"{rendered}")
    return report


# ----------------------------- op streams ------------------------------ #

def _op_lock_findings(body: Sequence[Op], source: str) -> list[Finding]:
    """Lock imbalance and lock-order cycles over a linear op stream.

    Op streams have no control flow, so held/order tracking is exact:
    a release of an unheld lock is an ERROR, a lock still held at the
    end of the body is a WARNING (the next iteration re-acquires it —
    self-deadlock for non-recursive locks), and an acquisition cycle
    across the stream is an ERROR.
    """
    findings: list[Finding] = []
    held: list[str] = []
    edges: dict[str, set[str]] = {}
    for i, op in enumerate(body):
        name = op.label or "lock"
        if op.kind is PrimitiveKind.OMP_LOCK_ACQUIRE:
            if name in held:
                findings.append(Finding(
                    rule="lock-order", severity=Severity.ERROR,
                    kernel="<ops>", source=source, line=i,
                    message=f"re-acquisition of held lock '{name}' "
                    "(self-deadlock for non-recursive locks)"))
            for h in held:
                if h != name:
                    edges.setdefault(h, set()).add(name)
            held.append(name)
        elif op.kind is PrimitiveKind.OMP_LOCK_RELEASE:
            if name in held:
                held.remove(name)
            else:
                findings.append(Finding(
                    rule="lock-order", severity=Severity.ERROR,
                    kernel="<ops>", source=source, line=i,
                    message=f"release of lock '{name}' that is not "
                    "held at this point"))
    if held:
        findings.append(Finding(
            rule="lock-order", severity=Severity.WARNING,
            kernel="<ops>", source=source, line=len(body),
            message="locks still held at end of body: "
            + ", ".join(f"'{h}'" for h in held)))
    from repro.sanitize.rules import _find_cycle
    cycle = _find_cycle(edges)
    if cycle is not None:
        findings.append(Finding(
            rule="lock-order", severity=Severity.ERROR,
            kernel="<ops>", source=source, line=0,
            message="lock-acquisition cycle " + " -> ".join(cycle)))
    return findings


def sanitize_ops(body: Sequence[Op], source: str = "<ops>",
                 allow_duplicates: bool = False) -> Report:
    """Sanitize a linear op-IR stream (a measurement loop body).

    Covers the rules that are meaningful without control flow:
    redundant back-to-back synchronization (via
    :func:`repro.compiler.dce.redundant_sync_ops`) and lock
    imbalance/ordering.

    Args:
        body: Ops in program order.
        source: Label used in findings.
        allow_duplicates: Suppress the redundancy advice — measurement
            specs duplicate the measured op *on purpose* (that is the
            paper's baseline-vs-test contrast).
    """
    findings = _op_lock_findings(body, source)
    if not allow_duplicates:
        for i, op in redundant_sync_ops(body):
            findings.append(Finding(
                rule="redundant-sync", severity=Severity.ADVICE,
                kernel="<ops>", source=source, line=i,
                message=f"op {i} ({op.kind.name}) is made redundant by "
                "the preceding synchronization"))
    return _count(Report(findings=findings, kernels=1))


def sanitize_spec(spec) -> Report:
    """Sanitize a :class:`repro.core.spec.MeasurementSpec`.

    Runs the op-stream checks over both bodies with the duplicate-sync
    advice suppressed: ``MeasurementSpec.single`` duplicates the
    measured primitive by construction.
    """
    report = sanitize_ops(spec.baseline_body,
                          source=f"{spec.name}:baseline",
                          allow_duplicates=True)
    report.merge(sanitize_ops(spec.test_body,
                              source=f"{spec.name}:test",
                              allow_duplicates=True))
    return report
