"""CLI for the static sync sanitizer.

``python -m repro.sanitize [paths...]`` lifts every kernel found in the
given files/directories and prints the findings.  With no paths it scans
the shipped surface: the ``workloads``, ``reductions`` and
``experiments`` packages plus the repository's ``examples/`` directory
when present.  Exit status is 0 when no ERROR or WARNING fired (ADVICE
never fails the run unless ``--strict``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro
from repro.sanitize import ALL_RULES, sanitize_paths


def default_paths() -> list[Path]:
    """The shipped kernel surface scanned when no paths are given."""
    pkg = Path(repro.__file__).parent
    paths = [pkg / "workloads", pkg / "reductions", pkg / "experiments"]
    examples = pkg.parents[1] / "examples"
    if examples.is_dir():
        paths.append(examples)
    return [p for p in paths if p.exists()]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Static sanitizer for synchronization primitives.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: shipped "
        "workloads, reductions, experiments and examples)")
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated subset of rules to run "
        f"(available: {', '.join(ALL_RULES)})")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on ADVICE findings too")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    args = parser.parse_args(argv)

    rules: tuple[str, ...] | None = None
    if args.rules:
        rules = tuple(r.strip() for r in args.rules.split(",")
                      if r.strip())
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}")

    paths = [Path(p) for p in args.paths] or default_paths()
    report = sanitize_paths(paths, rules)

    if args.format == "json":
        print(json.dumps({
            "kernels": report.kernels,
            "counts": report.by_rule(),
            "findings": [
                {"rule": f.rule, "severity": f.severity.value,
                 "kernel": f.kernel, "message": f.message,
                 "line": f.line, "source": f.source}
                for f in report.findings],
        }, indent=2))
    else:
        print(report.render())

    failed = not report.clean or (args.strict and report.advice)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
