"""Statement IR for the static sync sanitizer.

The dynamic interpreters execute kernels as Python generators; a static
pass cannot run them, so :mod:`repro.sanitize.extract` lifts each kernel's
source AST into this small statement IR instead.  The IR keeps exactly
what the rules in :mod:`repro.sanitize.rules` need: which synchronization
primitives appear where, how control flow around them depends on the
thread's identity, and how memory is touched (which variable, how the
index depends on the thread id, atomically or plainly).

Everything else — arithmetic, host-side bookkeeping, helper calls — is
dropped or folded into the taint lattice of :class:`Dep`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.compiler.ops import PrimitiveKind, Scope


class Dep(enum.Enum):
    """How a value (or a branch condition) depends on the executing thread.

    The lattice is ``UNIFORM < DATA < THREAD``: a uniform value is
    identical on every thread of the team/block (literals, closure
    variables, ``blockDim``...); a data-dependent value came out of
    memory (a ``yield``ed load) and *may* differ per thread; a
    thread-dependent value is derived from the thread's identity
    (``threadIdx``, ``tid``, ``lane``...) and is *known* to differ.
    Only THREAD dependence triggers the divergence rules — flagging DATA
    would drown real defects in false positives on converged loads.
    """

    UNIFORM = 0
    DATA = 1
    THREAD = 2

    def join(self, other: "Dep") -> "Dep":
        """Least upper bound of two dependences."""
        return self if self.value >= other.value else other


class Space(enum.Enum):
    """Which memory space an access touches."""

    GLOBAL = "global"
    SHARED = "shared"
    #: Host/peer-visible system memory (multi-device kernels).
    SYSTEM = "system"


#: Sentinel variable name for accesses whose array name is not a string
#: literal (e.g. the double-buffer swap in the Jacobi stencil).  The
#: race rule skips such accesses: aliasing cannot be decided statically.
DYNAMIC_VAR = "<dynamic>"


@dataclass(frozen=True)
class SyncStmt:
    """A barrier-class primitive (``__syncthreads*``, ``omp barrier``,
    ``omp single``, ``__syncwarp``, or a warp collective).

    Attributes:
        kind: The op-IR primitive this lowers to.
        collective: True for warp-level constructs (collectives and
            ``__syncwarp``) whose convergence set is the warp, not the
            block; divergence around them is reported at WARNING
            severity instead of ERROR.
        line: 1-based source line.
    """

    kind: PrimitiveKind
    collective: bool = False
    line: int = 0


@dataclass(frozen=True)
class FenceStmt:
    """A memory fence (``__threadfence*`` or ``omp flush``)."""

    kind: PrimitiveKind
    line: int = 0

    @property
    def scope(self) -> Scope:
        """The visibility scope the fence orders."""
        if self.kind is PrimitiveKind.THREADFENCE_BLOCK:
            return Scope.BLOCK
        if self.kind is PrimitiveKind.THREADFENCE_SYSTEM:
            return Scope.SYSTEM
        return Scope.DEVICE


@dataclass(frozen=True)
class AccessStmt:
    """One memory access: ``var[index]`` read or written.

    Attributes:
        var: Array name (:data:`DYNAMIC_VAR` when not a literal).
        space: Memory space of the access.
        is_write: Store (or read-modify-write) vs. pure load.
        atomic: Performed with an atomic primitive.
        scope: Atomic scope (None for plain accesses).
        index_dep: How the index depends on the thread.
        index_const: The literal index when the index is a constant.
        pinned: Lexically inside a single-thread pin
            (``if tid == 0:`` / ``is_master``) — only one thread of the
            team executes it, so it cannot self-race.
        line: 1-based source line.
    """

    var: str
    space: Space
    is_write: bool
    atomic: bool = False
    scope: Scope | None = None
    index_dep: Dep = Dep.UNIFORM
    index_const: int | None = None
    pinned: bool = False
    line: int = 0


@dataclass(frozen=True)
class LockStmt:
    """``omp_set_lock``/``omp_unset_lock`` (or a CAS-spinlock idiom).

    Attributes:
        acquire: True for acquisition, False for release.
        name: Lock name (the literal argument, or :data:`DYNAMIC_VAR`).
        line: 1-based source line.
    """

    acquire: bool
    name: str
    line: int = 0


@dataclass(frozen=True)
class ReturnStmt:
    """An early ``return`` from the kernel body."""

    line: int = 0


@dataclass(frozen=True)
class OpaqueStmt:
    """A construct the lifter cannot see through (``yield from``,
    critical sections).  Treated as a no-op by every rule."""

    line: int = 0


@dataclass(frozen=True)
class BranchStmt:
    """An ``if``/``else`` with lifted arms.

    Attributes:
        dep: Dependence of the branch condition.
        pin: The condition is a single-thread pin (``tid == c`` or
            ``is_master``) — the then-arm runs on exactly one thread.
        body: Lifted then-arm.
        orelse: Lifted else-arm.
        line: 1-based source line.
    """

    dep: Dep
    pin: bool = False
    body: tuple["Stmt", ...] = ()
    orelse: tuple["Stmt", ...] = ()
    line: int = 0


@dataclass(frozen=True)
class LoopStmt:
    """A ``for``/``while`` loop with a lifted body.

    Attributes:
        dep: Dependence of the trip condition (iteration space).
        spin: The loop test itself yields a memory read — the
            spin-wait idiom (``while (yield read(flag)) != v``).  Holds
            that read's :class:`AccessStmt` when detected.
        body: Lifted loop body.
        line: 1-based source line.
    """

    dep: Dep
    spin: AccessStmt | None = None
    body: tuple["Stmt", ...] = ()
    line: int = 0


#: Any lifted statement.
Stmt = Union[SyncStmt, FenceStmt, AccessStmt, LockStmt, ReturnStmt,
             OpaqueStmt, BranchStmt, LoopStmt]


@dataclass(frozen=True)
class KernelIR:
    """One lifted kernel (or thread body).

    Attributes:
        name: Function name.
        dialect: ``"cuda"`` or ``"openmp"``.
        source: Where the kernel came from (path or ``<function>``).
        line: 1-based line of the ``def``.
        body: Lifted statements.
    """

    name: str
    dialect: str
    source: str = "<function>"
    line: int = 0
    body: tuple[Stmt, ...] = ()

    def walk(self):
        """Yield every statement, depth-first, with its enclosing
        control dependence (the join of all surrounding branch/loop
        dependences)."""
        yield from _walk(self.body, Dep.UNIFORM)


def _walk(stmts: tuple[Stmt, ...], ctx: Dep):
    for stmt in stmts:
        yield stmt, ctx
        if isinstance(stmt, BranchStmt):
            inner = ctx.join(stmt.dep)
            yield from _walk(stmt.body, inner)
            yield from _walk(stmt.orelse, inner)
        elif isinstance(stmt, LoopStmt):
            yield from _walk(stmt.body, ctx.join(stmt.dep))


@dataclass
class SourceUnit:
    """All kernels lifted from one source artifact (file or function)."""

    source: str
    kernels: list[KernelIR] = field(default_factory=list)
